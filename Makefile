# Developer entry points.  Everything runs from a clean checkout with
# only the baked-in python toolchain (numpy/scipy/pytest).
#
#   make test         tier-1 test suite (what CI gates on)
#   make bench-smoke  tier-1 tests + a 2-job orchestrated Fig 12 smoke
#   make bench        full pytest-benchmark suite (cold caches)
#   make golden       regenerate tests/golden/*.json snapshots
#   make clean-cache  drop the on-disk orchestration result cache

PYTHON ?= python
JOBS ?= 2
export PYTHONPATH := src

.PHONY: test bench-smoke bench golden clean-cache

test:
	$(PYTHON) -m pytest -x -q

bench-smoke: test
	$(PYTHON) -m repro.experiments.runner fig12 \
		--jobs $(JOBS) --cache-dir .repro_cache/bench-smoke --progress

bench:
	$(PYTHON) -m pytest benchmarks -q

golden:
	$(PYTHON) -m pytest tests/test_golden.py -q --update-golden

clean-cache:
	rm -rf .repro_cache
