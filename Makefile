# Developer entry points.  Everything runs from a clean checkout with
# only the baked-in python toolchain (numpy/scipy/pytest).
#
#   make test           tier-1 test suite + report smoke + queue chaos
#                       smoke + service smoke + kernels smoke + profile
#                       smoke + conformance smoke + generations smoke
#                       (CI gate)
#   make smoke          runner `list` + every experiment at tiny scale (JSON)
#   make recipes-smoke  every checked-in recipe at tiny scale on the queue
#                       backend (1 worker), byte-diffed against serial
#   make queue-smoke    chaos test: 2-worker queue sweep, one worker
#                       SIGKILLed mid-drain, result byte-diffed against
#                       serial; exercises `runner queue status` live
#   make report-smoke   two-seed recipe -> self-contained report.html,
#                       checked for well-formedness + aggregation
#   make service-smoke  `runner serve` end to end: POST a sweep over
#                       HTTP, SIGKILL-and-replace the worker mid-task,
#                       served report.html byte-diffed against serial
#   make serve          run the HTTP experiment service on the default
#                       cache (port 8321)
#   make figures        render all matplotlib paper figures into figures/
#   make bench-smoke    tier-1 tests + a 2-job orchestrated Fig 12 smoke
#   make bench          full pytest-benchmark suite (cold caches)
#   make bench-backends serial vs process vs 2-worker queue timings
#                       -> BENCH_backends.json, plus a queue chunk-size
#                       sweep (1/8/32) -> BENCH_chunks.json
#   make bench-kernels  loop-oracle vs vectorized characterization
#                       timings -> BENCH_kernels.json
#   make kernels-smoke  tiny platform characterization, kernel path
#                       byte-diffed against the loop oracle
#   make profile-smoke  tiny sweep -> `runner profile`: every per-task
#                       profiling stamp complete and non-negative
#   make conformance-smoke
#                       tiny sweep with DDR4 command logging on, the
#                       stream replayed against the JEDEC rulebook
#                       (zero violations), then a broken rulebook as
#                       negative control (must flag violations)
#   make generations-smoke
#                       tiny sweep per device generation (DDR4 x2,
#                       LPDDR4, DDR5) replayed against each
#                       generation's own rulebook (zero violations),
#                       plus a byte-diff of DDR4 `runner check-timing`
#                       against the pre-refactor golden
#   make golden         regenerate tests/golden/*.json snapshots
#   make clean-cache    drop the on-disk orchestration result cache
#
# Distributed sweeps: `make worker` attaches one worker process to the
# default queue (`.repro_cache/queue`); start as many as you have
# cores/hosts, then submit with
# `python -m repro.experiments.runner recipe run <name> --backend queue`.

PYTHON ?= python
JOBS ?= 2
export PYTHONPATH := src

.PHONY: test smoke recipes-smoke queue-smoke report-smoke service-smoke \
        kernels-smoke profile-smoke conformance-smoke generations-smoke \
        figures bench-smoke bench bench-backends bench-kernels golden \
        worker serve clean-cache

test:
	$(PYTHON) -m pytest -x -q
	$(MAKE) report-smoke
	$(MAKE) queue-smoke
	$(MAKE) service-smoke
	$(MAKE) kernels-smoke
	$(MAKE) profile-smoke
	$(MAKE) conformance-smoke
	$(MAKE) generations-smoke

report-smoke:
	$(PYTHON) scripts/report_smoke.py

queue-smoke:
	$(PYTHON) scripts/queue_smoke.py

service-smoke:
	$(PYTHON) scripts/service_smoke.py

kernels-smoke:
	$(PYTHON) scripts/kernels_smoke.py

profile-smoke:
	$(PYTHON) scripts/profile_smoke.py

conformance-smoke:
	$(PYTHON) scripts/conformance_smoke.py

generations-smoke:
	$(PYTHON) scripts/generations_smoke.py

smoke:
	$(PYTHON) -m repro.experiments.runner list
	$(PYTHON) -m repro.experiments.runner run \
		--rows-per-bank 512 --banks 1 --requests-per-core 800 \
		--jobs $(JOBS) --cache-dir .repro_cache/smoke \
		--format json --out .smoke-results --progress
	@echo "smoke artifacts in .smoke-results/"

figures:
	@if $(PYTHON) -c "import matplotlib" 2>/dev/null; then \
		$(PYTHON) -m repro.experiments.runner run \
			--jobs $(JOBS) --format mpl --out figures; \
	else \
		echo "matplotlib not installed; skipping figure rendering"; \
	fi

bench-smoke: test
	$(PYTHON) -m repro.experiments.runner run fig12 \
		--jobs $(JOBS) --cache-dir .repro_cache/bench-smoke --progress

recipes-smoke:
	$(PYTHON) scripts/recipes_smoke.py

bench:
	$(PYTHON) -m pytest benchmarks -q

bench-backends:
	$(PYTHON) scripts/bench_backends.py

bench-kernels:
	$(PYTHON) benchmarks/bench_kernels.py

worker:
	$(PYTHON) -m repro.experiments.runner worker --poll-interval 0.2

serve:
	$(PYTHON) -m repro.experiments.runner serve

golden:
	$(PYTHON) -m pytest tests/test_golden.py tests/test_experiment_api.py \
		tests/test_report.py -q --update-golden

clean-cache:
	rm -rf .repro_cache
