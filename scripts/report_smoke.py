#!/usr/bin/env python
"""`make report-smoke`: the HTML report pipeline, end to end.

Runs the checked-in two-seed ``report-smoke`` recipe at ``--smoke``
scale through the real CLI, builds the report twice -- once in-memory
via ``recipe run --report`` and once from the on-disk artifact tree
via ``runner report`` -- and asserts both pages are:

1. **well-formed**: html.parser walks them with every non-void tag
   balanced;
2. **self-contained**: no ``src``/``href`` pointing at an external
   URL, no ``<script>``, at least one inline ``<svg>`` chart;
3. **aggregated**: the fig3 section carries ``_mean``/``_stddev``
   columns and the seed matrix in its provenance block.

Everything happens in a temp directory; the working tree is untouched.
"""

from __future__ import annotations

import re
import subprocess
import sys
import tempfile
from html.parser import HTMLParser
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RUNNER = [sys.executable, "-m", "repro.experiments.runner"]

sys.path.insert(0, str(Path(__file__).resolve().parent))
from recipes_smoke import cli_env  # noqa: E402 -- shared CLI env helper

#: HTML void elements plus SVG leaf shapes (no closing tag).
VOID_TAGS = frozenset({
    "meta", "br", "hr", "img", "input", "link",
    "circle", "rect", "line", "path", "polyline", "polygon",
})


class WellFormedChecker(HTMLParser):
    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.stack: list = []
        self.problems: list = []
        self.svg_count = 0

    def handle_starttag(self, tag, attrs):
        if tag == "svg":
            self.svg_count += 1
        for name, value in attrs:
            if name in ("src", "href") and value and re.match(
                r"(?:https?:)?//", value
            ):
                self.problems.append(f"external {name}: {value}")
        if tag == "script":
            self.problems.append("unexpected <script>")
        if tag not in VOID_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if not self.stack or self.stack[-1] != tag:
            self.problems.append(
                f"mismatched </{tag}> (open: {self.stack[-3:]})"
            )
            return
        self.stack.pop()


def check_page(path: Path, *, expect: tuple) -> list:
    problems = []
    if not path.is_file():
        return [f"{path} was not written"]
    text = path.read_text(encoding="utf-8")
    checker = WellFormedChecker()
    checker.feed(text)
    checker.close()
    problems += [f"{path.name}: {p}" for p in checker.problems]
    if checker.stack:
        problems.append(f"{path.name}: unclosed tags {checker.stack}")
    if checker.svg_count < 1:
        problems.append(f"{path.name}: no inline SVG charts")
    for needle in expect:
        if needle not in text:
            problems.append(f"{path.name}: missing {needle!r}")
    return problems


def main() -> int:
    problems = []
    with tempfile.TemporaryDirectory(prefix="report-smoke-") as tmp:
        work = Path(tmp)
        out = work / "artifacts"
        env = cli_env()

        print("[report-smoke] recipe run report-smoke --smoke --report")
        subprocess.run(
            RUNNER + [
                "recipe", "run", "report-smoke", "--smoke",
                "--cache-dir", str(work / "cache"),
                "--format", "json", "--out", str(out), "--report",
            ],
            check=True, env=env, cwd=ROOT, stdout=subprocess.DEVNULL,
        )
        print("[report-smoke] runner report <artifact-tree>")
        subprocess.run(
            RUNNER + [
                "report", str(out), "--out", str(work / "stitched.html"),
            ],
            check=True, env=env, cwd=ROOT, stdout=subprocess.DEVNULL,
        )

        #: Aggregation evidence: fig3's seed-dependent CV column gets
        #: stats columns; provenance names both seeds.
        expectations = (
            "cv_measured_pct_mean",
            "cv_measured_pct_stddev",
            "0, 1 (2 seeds",
            "report-smoke v1",
        )
        problems += check_page(out / "report.html", expect=expectations)
        problems += check_page(
            work / "stitched.html", expect=expectations
        )

    if problems:
        print("[report-smoke] FAIL")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("[report-smoke] ok: both pages well-formed, self-contained, "
          "aggregated across 2 seeds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
