#!/usr/bin/env python
"""`make conformance-smoke`: JEDEC conformance oracle end to end.

Two halves, both cheap enough for every ``make test``:

1. a tiny sweep (two suites x {undefended, PARA, BlockHammer} x two
   speed grades) runs with command logging on and must replay against
   the rulebook with **zero** violations;
2. the same checker is handed a deliberately broken rulebook (inflated
   tRCD/tRAS/tRRD_S) and must flag a legal stream -- proving the smoke
   would actually fail if the engine or the checker went quiet.
"""

from __future__ import annotations

import dataclasses
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.defenses import DEFENSE_CLASSES  # noqa: E402
from repro.dram.timing import timing_for_speed  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402
from repro.sim.conformance import TimingChecker, check_run  # noqa: E402
from repro.sim.engine import MemorySystem  # noqa: E402
from repro.workloads.suites import profile_by_name  # noqa: E402
from repro.workloads.synthetic import SyntheticTrace  # noqa: E402

SWEEP = [
    ("ycsb", None, 3200),
    ("ycsb", "PARA", 3200),
    ("spec17", None, 2666),
    ("spec17", "BlockHammer", 2666),
    ("tpc", "PARA", 2666),
    ("mediabench", None, 3200),
]


def build_system(suite: str, defense_name, speed: int) -> MemorySystem:
    config = SystemConfig(
        cores=2,
        ranks=1,
        bank_groups=2,
        banks_per_group=2,
        rows_per_bank=4096,
        requests_per_core=400,
        mlp_per_core=2,
        timing=timing_for_speed(speed),
        defense_epoch_ns=100_000.0 if defense_name else None,
    )
    profile = profile_by_name(suite)
    traces = [
        SyntheticTrace(
            profile,
            total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            seed=17 + core,
        )
        for core in range(config.cores)
    ]
    defense = None
    if defense_name is not None:
        kwargs = dict(rows_per_bank=config.rows_per_bank, seed=0)
        if defense_name == "BlockHammer":
            kwargs["epoch_ns"] = config.defense_epoch_ns
        defense = DEFENSE_CLASSES[defense_name](512, **kwargs)
    return MemorySystem(config, traces, defense=defense, seed=0)


def main() -> int:
    print("conformance-smoke: replaying logged command streams")
    total_commands = 0
    for suite, defense_name, speed in SWEEP:
        system = build_system(suite, defense_name, speed)
        result, report = check_run(system)
        label = f"{suite}/{defense_name or 'none'}/DDR4-{speed}"
        if not report.ok:
            print(f"  FAIL {label}:")
            print(report.render_text())
            return 1
        total_commands += report.commands
        print(
            f"  ok {label}: {report.commands} commands, "
            f"{sum(report.checks.values())} checks, "
            f"{result.activations} ACTs"
        )

    # Negative control: a rulebook with inflated minimums must reject
    # the same (legal) stream, or the positive half proves nothing.
    system = build_system("ycsb", "PARA", 3200)
    log = []
    system.run(command_log=log)
    timing = timing_for_speed(3200)
    broken = dataclasses.replace(
        timing,
        tRCD=4 * timing.tRCD,
        tRAS=2 * timing.tRAS,
        tRRD_S=8 * timing.tRRD_S,
    )
    report = TimingChecker(broken).replay(log)
    if report.ok:
        print("  FAIL negative control: broken rulebook found no violations")
        return 1
    flagged = sorted({violation.rule for violation in report.violations})
    print(
        f"  ok negative control: broken rulebook flags "
        f"{len(report.violations)} violations ({', '.join(flagged)})"
    )
    print(f"conformance-smoke passed ({total_commands} commands replayed)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
