#!/usr/bin/env python
"""`make service-smoke`: the experiment service end to end, with chaos.

The property this pins: **a sweep POSTed to `runner serve` survives a
worker SIGKILL and serves a report byte-identical to the serial CLI
path**.  Concretely:

1. run the two-seed `report-smoke` recipe serially with `--report`
   (the reference tree);
2. start `runner serve` (publish-only submitter, short lease timeout)
   over a fresh cache, and POST the same recipe to `/runs`;
3. the tasks sit pending -- no worker is attached yet, which makes the
   kill window deterministic.  Start a worker, wait (live
   `queue status` snapshots) until it is *mid-task*, and **SIGKILL**
   it;
4. start a replacement worker and poll `GET /runs/<id>` until the run
   record says `done`: the sweep's submitter thread inside the
   service reclaims the dead worker's lease and the replacement
   drains the rest;
5. assert the served `report.html` is byte-identical to the serial
   one modulo the provenance `<dl>` blocks (which deliberately record
   *how* each side was computed), the served JSON artifacts match the
   serial tree modulo `meta.provenance`, and the victim lingers as a
   stale worker in `/queue`.

Everything happens in a temp directory on an ephemeral port.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RUNNER = [sys.executable, "-m", "repro.experiments.runner"]

sys.path.insert(0, str(ROOT / "scripts"))
sys.path.insert(0, str(ROOT / "src"))

from queue_smoke import start_worker  # noqa: E402  (shared helpers)
from recipes_smoke import cli_env, normalize  # noqa: E402

from repro.orchestration import queue_status  # noqa: E402

STATUS_POLL = 0.01
MID_TASK_TIMEOUT = 120.0
RUN_TIMEOUT = 600.0

#: Provenance blocks legitimately differ between the serial page and
#: the served one (backend, cache dir, worker attribution); everything
#: else in the report must match to the byte.
PROVENANCE_DL = re.compile(rb'<dl class="provenance">.*?</dl>', re.S)


def http(method: str, url: str, body: bytes = None):
    request = urllib.request.Request(url, data=body, method=method)
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, response.read()


def wait_for_pending_tasks(cache_dir: Path) -> None:
    """Block until the POSTed sweep has published into the queue."""
    deadline = time.monotonic() + MID_TASK_TIMEOUT
    while time.monotonic() < deadline:
        tasks = queue_status(cache_dir)["tasks"]
        if tasks["pending"] + tasks["leased"] > 0:
            return
        time.sleep(STATUS_POLL)
    raise AssertionError("service never published the sweep's tasks")


def wait_for_mid_task(cache_dir: Path, worker_id: str) -> None:
    deadline = time.monotonic() + MID_TASK_TIMEOUT
    while time.monotonic() < deadline:
        for worker in queue_status(cache_dir)["workers"]:
            if (
                worker["worker_id"] == worker_id
                and worker["status"] == "live"
                and worker["current_lease"] is not None
            ):
                return
        time.sleep(STATUS_POLL)
    raise AssertionError(
        f"worker {worker_id} never showed a current lease within "
        f"{MID_TASK_TIMEOUT}s"
    )


def wait_for_run(base: str, run_id: str) -> dict:
    deadline = time.monotonic() + RUN_TIMEOUT
    while time.monotonic() < deadline:
        _, body = http("GET", f"{base}/runs/{run_id}")
        record = json.loads(body)
        if record["state"] in ("done", "failed"):
            return record
        time.sleep(0.2)
    raise AssertionError(f"run {run_id} still {record['state']!r} after "
                         f"{RUN_TIMEOUT}s")


def main() -> int:
    env = cli_env()
    scratch = Path(tempfile.mkdtemp(prefix="service-smoke-"))
    serial_out = scratch / "serial"
    svc_cache = scratch / "cache-svc"

    service = victim = worker2 = None
    try:
        print("service-smoke: serial reference run ...")
        subprocess.run(
            RUNNER + [
                "recipe", "run", "report-smoke", "--report",
                "--cache-dir", str(scratch / "cache-serial"),
                "--format", "json", "--out", str(serial_out),
            ],
            check=True, env=env, stdout=subprocess.DEVNULL,
        )

        print("service-smoke: starting `runner serve` ...")
        service_log = scratch / "service.log"
        with open(service_log, "wb") as log:
            service = subprocess.Popen(
                RUNNER + [
                    "serve", str(svc_cache),
                    "--port", "0", "--lease-timeout", "3",
                    "--stale-after", "2",
                ],
                env=env, stdout=subprocess.PIPE, stderr=log,
            )
        banner = service.stdout.readline().decode().strip()
        match = re.match(r"serving on (http://\S+)", banner)
        assert match, f"unexpected serve banner: {banner!r}"
        base = match.group(1)
        print(f"  {banner}")

        status, body = http("GET", f"{base}/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"

        # POST first, attach the worker second: the publish-only
        # submitter parks the tasks in the queue, so the kill window
        # below cannot be raced away by a fast sweep.
        status, body = http(
            "POST", f"{base}/runs",
            json.dumps({"recipe": "report-smoke"}).encode(),
        )
        assert status == 202, (status, body)
        run_id = json.loads(body)["run"]["id"]
        print(f"  accepted run {run_id}")
        wait_for_pending_tasks(svc_cache)

        victim = start_worker(svc_cache, env)
        victim_id = f"{socket.gethostname()}:{victim.pid}"
        wait_for_mid_task(svc_cache, victim_id)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        print(f"  SIGKILLed worker {victim_id} mid-task")

        worker2 = start_worker(svc_cache, env)
        record = wait_for_run(base, run_id)
        assert record["state"] == "done", (
            f"run finished {record['state']!r}: {record.get('error')}"
        )
        assert record["failed_cells"] == [], record["failed_cells"]
        assert record["report"] == "report.html"
        print(f"  run done: {len(record['artifacts'])} artifacts")

        # Served report == serial report, byte for byte, outside the
        # provenance blocks.
        _, served_report = http("GET", f"{base}/runs/{run_id}/report.html")
        serial_report = (serial_out / "report.html").read_bytes()
        assert PROVENANCE_DL.search(served_report), "served report has no provenance"
        assert PROVENANCE_DL.search(serial_report), "serial report has no provenance"
        masked_served = PROVENANCE_DL.sub(b"", served_report)
        masked_serial = PROVENANCE_DL.sub(b"", serial_report)
        assert masked_served == masked_serial, (
            "served report.html diverged from the serial one outside "
            "the provenance blocks"
        )

        # Served JSON artifacts == serial tree modulo meta.provenance.
        serial_artifacts = sorted(
            str(path.relative_to(serial_out))
            for path in serial_out.rglob("*.json")
        )
        assert sorted(record["artifacts"]) == serial_artifacts, (
            f"artifact sets diverged: served={sorted(record['artifacts'])} "
            f"serial={serial_artifacts}"
        )
        for relative in serial_artifacts:
            _, served = http("GET", f"{base}/runs/{run_id}/{relative}")
            served_doc = json.loads(served)
            assert served_doc["meta"].pop("provenance"), relative
            serial_doc = json.loads(normalize(serial_out / relative))
            assert served_doc == serial_doc, f"byte mismatch in {relative}"

        # The victim is visible as a stale worker through the service.
        time.sleep(2.5)  # let its heartbeat age past --stale-after
        _, body = http("GET", f"{base}/queue")
        snapshot = json.loads(body)
        victims = [
            worker for worker in snapshot["workers"]
            if worker["worker_id"] == victim_id
        ]
        assert victims and victims[0]["status"] == "stale", (
            f"SIGKILLed worker should linger as stale: "
            f"{snapshot['workers']}"
        )
        _, body = http("GET", f"{base}/healthz")
        assert json.loads(body)["runs"] == {"done": 1}

        print(
            "service-smoke OK: POSTed sweep survived the worker "
            "SIGKILL; served report.html byte-identical to serial "
            "(modulo provenance), victim visible via /queue"
        )
        return 0
    except BaseException:
        if service is not None:
            log_path = scratch / "service.log"
            if log_path.exists():
                sys.stderr.write(log_path.read_text())
        raise
    finally:
        for process in (victim, worker2):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        if service is not None and service.poll() is None:
            service.terminate()
            try:
                service.wait(timeout=30)
            except subprocess.TimeoutExpired:
                service.kill()
                service.wait(timeout=30)
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
