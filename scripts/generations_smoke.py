#!/usr/bin/env python
"""`make generations-smoke`: the device-generation model end to end.

Two halves, both cheap enough for every ``make test``:

1. a tiny sweep per generation (DDR4-3200, DDR4-2666, LPDDR4-3200,
   DDR5-4800, each undefended and under PARA) runs with command
   logging on and must replay with **zero** violations against the
   rulebook derived from that generation's own rule table -- LPDDR4's
   per-bank refresh checks tRFCpb, DDR5's same-bank refresh checks
   tRFCsb;
2. the refactor guard: `runner check-timing` at the default DDR4-3200
   settings must still emit a JSON document byte-identical to the
   golden captured before the generation refactor
   (``tests/golden/check_timing_ddr4.json``).
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.defenses import DEFENSE_CLASSES  # noqa: E402
from repro.dram.timing import device_for  # noqa: E402
from repro.sim.config import SystemConfig  # noqa: E402
from repro.sim.conformance import check_run  # noqa: E402
from repro.sim.engine import MemorySystem  # noqa: E402
from repro.workloads.suites import profile_by_name  # noqa: E402
from repro.workloads.synthetic import SyntheticTrace  # noqa: E402

GOLDEN = ROOT / "tests" / "golden" / "check_timing_ddr4.json"

#: (device, suite, defense) cells: every generation both undefended
#: and under PARA, DDR4 at two speed grades.
SWEEP = [
    ("DDR4-3200", "ycsb", None),
    ("DDR4-3200", "spec17", "PARA"),
    ("DDR4-2666", "tpc", None),
    ("DDR4-2666", "ycsb", "PARA"),
    ("LPDDR4-3200", "ycsb", None),
    ("LPDDR4-3200", "spec17", "PARA"),
    ("DDR5-4800", "ycsb", None),
    ("DDR5-4800", "spec17", "PARA"),
]

#: The refresh rule each generation's rulebook must actually exercise.
REFRESH_RULE = {
    "DDR4": "tRFC",
    "LPDDR4": "tRFCpb",
    "DDR5": "tRFCsb",
}


def build_system(device: str, suite: str, defense_name) -> MemorySystem:
    timing = device_for(device)
    config = SystemConfig(
        cores=2,
        ranks=1,
        bank_groups=2,
        banks_per_group=2,
        rows_per_bank=4096,
        requests_per_core=400,
        mlp_per_core=2,
        timing=timing,
        defense_epoch_ns=100_000.0 if defense_name else None,
    )
    profile = profile_by_name(suite)
    traces = [
        SyntheticTrace(
            profile,
            total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            seed=17 + core,
        )
        for core in range(config.cores)
    ]
    defense = None
    if defense_name is not None:
        kwargs = dict(rows_per_bank=config.rows_per_bank, seed=0)
        defense = DEFENSE_CLASSES[defense_name](512, **kwargs)
    return MemorySystem(config, traces, defense=defense, seed=0)


def main() -> int:
    print("generations-smoke: replaying every generation's rulebook")
    for device, suite, defense_name in SWEEP:
        system = build_system(device, suite, defense_name)
        result, report = check_run(system)
        label = f"{device}/{suite}/{defense_name or 'none'}"
        if not report.ok:
            print(f"  FAIL {label}:")
            print(report.render_text())
            return 1
        refresh_rule = REFRESH_RULE[device.split("-")[0]]
        if report.checks.get(refresh_rule, 0) <= 0:
            print(
                f"  FAIL {label}: rulebook never exercised {refresh_rule} "
                f"(checks: {sorted(report.checks)})"
            )
            return 1
        print(
            f"  ok {label}: {report.commands} commands, "
            f"{sum(report.checks.values())} checks, "
            f"{report.checks[refresh_rule]}x {refresh_rule}, "
            f"{result.refreshes_issued} refreshes"
        )

    # Refactor guard: the DDR4 check-timing document must not have
    # moved by a single byte since before the generation model landed.
    command = [
        sys.executable, "-m", "repro.experiments.runner", "check-timing",
        "--json", "--cores", "2", "--requests-per-core", "1500",
        "--rows-per-bank", "4096", "--suite", "ycsb", "--seed", "0",
    ]
    proc = subprocess.run(
        command, cwd=ROOT, capture_output=True, text=True,
        env={**__import__("os").environ, "PYTHONPATH": "src"},
    )
    if proc.returncode != 0:
        print(f"  FAIL check-timing exited {proc.returncode}:")
        print(proc.stderr)
        return 1
    golden = GOLDEN.read_text()
    if proc.stdout != golden:
        print("  FAIL DDR4 check-timing output drifted from the golden:")
        print(f"    golden: {GOLDEN}")
        print(f"    got {len(proc.stdout)} bytes, want {len(golden)} bytes")
        return 1
    print(f"  ok DDR4 check-timing byte-identical to {GOLDEN.name}")
    print("generations-smoke passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
