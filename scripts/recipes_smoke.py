#!/usr/bin/env python
"""`make recipes-smoke`: cross-check every recipe across backends.

For every checked-in recipe, run its tiny ``--smoke`` grid twice
through the real CLI:

1. on the **serial** backend into a fresh cache (the reference), and
2. on the **queue** backend with one external ``runner worker``
   process doing all the execution (the submitter passes
   ``--queue-wait``), into a second fresh cache;

then byte-compare the two ResultSet JSON trees.  Any divergence --
ordering, floats, metadata -- fails the target, which pins the
acceptance property "N workers draining one queue produce ResultSet
JSON byte-identical to a serial run".  The one sanctioned exception
is ``meta.provenance``, the execution record stamped by the CLI: it
*names the backend*, so it differs across backends by design and is
dropped (after checking it exists) before the comparison.

Everything happens in a temp directory; the working tree is untouched.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RUNNER = [sys.executable, "-m", "repro.experiments.runner"]


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def normalize(path: Path) -> bytes:
    """Artifact bytes with the execution record factored out.

    ``meta.provenance`` deliberately differs across backends (it says
    *how* the artifact was computed: backend name, cache dir, hit
    counts), so the determinism property is byte-equality of
    everything else.  Assert the field exists on both sides, then
    drop it before comparing.
    """
    raw = path.read_bytes()
    if path.suffix != ".json":
        return raw
    document = json.loads(raw)
    assert document.get("meta", {}).get("provenance"), (
        f"{path} is missing meta.provenance"
    )
    del document["meta"]["provenance"]
    return json.dumps(document, indent=2, sort_keys=True).encode()


def tree(path: Path) -> dict:
    return {
        str(p.relative_to(path)): normalize(p)
        for p in sorted(path.rglob("*"))
        if p.is_file()
    }


def check_recipe(name: str, work: Path, env: dict) -> bool:
    serial_out = work / "serial"
    queue_out = work / "queue"
    queue_cache = work / "cache-queue"

    subprocess.run(
        RUNNER + [
            "recipe", "run", name, "--smoke",
            "--cache-dir", str(work / "cache-serial"),
            "--format", "json", "--out", str(serial_out),
        ],
        check=True, env=env, stdout=subprocess.DEVNULL,
    )

    worker = subprocess.Popen(
        RUNNER + [
            "worker",
            "--cache-dir", str(queue_cache),
            "--poll-interval", "0.05",
            "--quiet",
        ],
        env=env, stdout=subprocess.DEVNULL,
    )
    try:
        subprocess.run(
            RUNNER + [
                "recipe", "run", name, "--smoke",
                "--backend", "queue", "--queue-wait",
                "--cache-dir", str(queue_cache),
                "--format", "json", "--out", str(queue_out),
            ],
            check=True, env=env, stdout=subprocess.DEVNULL,
            timeout=1800,
        )
    finally:
        worker.terminate()
        worker.wait(timeout=30)

    serial_tree = tree(serial_out)
    queue_tree = tree(queue_out)
    ok = True
    if set(serial_tree) != set(queue_tree):
        print(f"  FILE SET MISMATCH: serial={sorted(serial_tree)} "
              f"queue={sorted(queue_tree)}")
        ok = False
    for rel in sorted(set(serial_tree) & set(queue_tree)):
        if serial_tree[rel] != queue_tree[rel]:
            print(f"  BYTE MISMATCH in {rel}")
            ok = False
    return ok


def main() -> int:
    env = cli_env()
    listing = subprocess.check_output(
        RUNNER + ["recipe", "list", "--format", "json"], env=env, text=True
    )
    names = sorted(json.loads(listing))
    print(f"recipes-smoke: {len(names)} recipe(s): {', '.join(names)}")

    scratch = Path(tempfile.mkdtemp(prefix="recipes-smoke-"))
    failures = []
    try:
        for name in names:
            print(f"[{name}] serial vs queue(1 worker), smoke scale ...")
            work = scratch / name
            work.mkdir(parents=True)
            if check_recipe(name, work, env):
                print(f"[{name}] OK: ResultSet JSON byte-identical (modulo provenance)")
            else:
                failures.append(name)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    if failures:
        print(f"recipes-smoke FAILED for: {', '.join(failures)}")
        return 1
    print("recipes-smoke: all recipes byte-identical across backends (modulo the meta.provenance execution record)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
