#!/usr/bin/env python
"""`make queue-smoke`: chaos-test the queue backend end to end.

The property this pins is the operational half of the queue contract:
**kill a worker at any instant and the sweep still completes, with
results byte-identical to a serial run**.  Concretely:

1. run a small ad-hoc Fig 12 recipe on the **serial** backend into a
   fresh cache (the reference tree);
2. run the same recipe on the **queue** backend (`--queue-wait`
   submitter, short `--lease-timeout`) with a first worker attached;
3. wait -- via live `queue status` snapshots -- until that worker is
   **mid-chunk** (its heartbeat names a `chunk-*` lease and at least
   one member result has been published), then **SIGKILL** it;
4. attach a second worker and let the sweep finish: the submitter
   reclaims the dead worker's chunk lease once its heartbeat goes
   silent for a lease-timeout, and the reclaimed chunk re-runs only
   the members whose results never landed -- every result cached at
   kill time must survive the drain byte-untouched (checked by
   mtime snapshot);
5. byte-compare the two artifact trees (modulo `meta.provenance`,
   which deliberately records how each was computed) and assert the
   final queue state is clean except for the victim's stale
   heartbeat -- the death notice `runner queue status` shows.

The recipe grid is 42 tasks, so the submitter auto-chunks at size 6
(`auto_chunk_size`): the victim is reliably killed partway through a
6-task envelope, which is exactly the loss window the chunk contract
bounds to "the un-published remainder of one chunk".

Along the way the real `runner queue status --json` CLI is exercised
against the in-flight sweep, pinning the acceptance criterion that a
live sweep is observable.  Everything happens in a temp directory.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RUNNER = [sys.executable, "-m", "repro.experiments.runner"]

sys.path.insert(0, str(ROOT / "scripts"))
sys.path.insert(0, str(ROOT / "src"))

from recipes_smoke import cli_env, tree  # noqa: E402  (shared helpers)

from repro.orchestration import (  # noqa: E402
    JobQueue,
    envelope_from_payload,
    queue_status,
)
from repro.orchestration.cache import scan_cache_entry_keys  # noqa: E402

#: Enough tasks that a worker is reliably mid-drain when killed, small
#: enough to keep `make test` interactive.
RECIPE = {
    "format": 1,
    "name": "queue-chaos",
    "version": 1,
    "description": "chaos-smoke grid: SIGKILL survival, 2 workers",
    "experiments": ["fig12"],
    "overrides": {
        "rows_per_bank": 512,
        "banks": [1],
        "n_mixes": 2,
        "requests_per_core": 600,
        "hc_first_values": [64, 128],
        "svard_profiles": ["S0"],
    },
    "seeds": [0],
    "smoke_overrides": {},
    "paper_ref": "Fig. 12 (chaos smoke)",
}

STATUS_POLL = 0.1
MID_TASK_TIMEOUT = 180.0
DRAIN_TIMEOUT = 900.0

#: The 42-task grid above auto-chunks at this size (auto_chunk_size).
CHUNK_SIZE = 6


def start_worker(cache_dir: Path, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        RUNNER + [
            "worker",
            "--cache-dir", str(cache_dir),
            "--poll-interval", "0.05",
            "--heartbeat-interval", "0.2",
            "--quiet",
        ],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def wait_for_mid_chunk_worker(cache_dir: Path, worker_id: str) -> None:
    """Block until ``worker_id`` is live, holds a **chunk** lease, and
    is in the *first half* of that chunk (some member results already
    published, several still to come) -- so the SIGKILL the caller
    fires immediately afterwards reliably lands partway through a
    multi-task envelope."""
    deadline = time.monotonic() + MID_TASK_TIMEOUT
    while time.monotonic() < deadline:
        status = queue_status(cache_dir)
        # Chunks publish member results in order, so the cached count
        # modulo the chunk size is the position inside the current one.
        position = status["tasks"]["results_cached"] % CHUNK_SIZE
        mid_chunk = 1 <= position <= CHUNK_SIZE // 2
        for worker in status["workers"]:
            if (
                worker["worker_id"] == worker_id
                and worker["status"] == "live"
                and str(worker["current_lease"] or "").startswith("chunk-")
                and mid_chunk
            ):
                return
        time.sleep(STATUS_POLL)
    raise AssertionError(
        f"worker {worker_id} never showed a mid-chunk lease with "
        f"published results within {MID_TASK_TIMEOUT}s"
    )


def snapshot_results(cache_dir: Path) -> dict:
    """``{relative entry path: mtime_ns}`` of every cached result.

    Taken at kill time (victim dead, replacement not yet started, the
    submitter is `--queue-wait`), so it is a stable census of exactly
    the results the victim published before dying.
    """
    snapshot = {}
    for path in sorted(cache_dir.glob("??/*.pkl")) + sorted(
        cache_dir.glob("*.pkl")
    ):
        snapshot[str(path.relative_to(cache_dir))] = path.stat().st_mtime_ns
    return snapshot


def check_inflight_status_cli(cache_dir: Path, env: dict) -> None:
    """The acceptance check: `queue status` reports a live sweep."""
    out = subprocess.check_output(
        RUNNER + ["queue", "status", str(cache_dir), "--json"],
        env=env, text=True,
    )
    status = json.loads(out)
    tasks = status["tasks"]
    in_flight = (
        tasks["pending"] + tasks["leased"] + tasks["results_cached"]
    )
    assert in_flight > 0, f"status saw no in-flight sweep: {tasks}"
    assert status["workers"], "status saw no attached workers"
    # The table renderer must work on the same live state.
    table = subprocess.check_output(
        RUNNER + ["queue", "status", str(cache_dir)], env=env, text=True
    )
    assert "workers:" in table and "tasks:" in table
    # --profile aggregates the timing stamps of whatever has already
    # been published, against the same live, mid-sweep cache.
    profiled = json.loads(subprocess.check_output(
        RUNNER + ["queue", "status", str(cache_dir), "--json", "--profile"],
        env=env, text=True,
    ))
    assert profiled["profile"]["entries_profiled"] >= 1, profiled["profile"]
    print(
        f"  in-flight status: {tasks['pending']} pending, "
        f"{tasks['leased']} leased, {tasks['results_cached']} cached, "
        f"{len(status['workers'])} worker(s)"
    )


def main() -> int:
    env = cli_env()
    scratch = Path(tempfile.mkdtemp(prefix="queue-smoke-"))
    serial_out = scratch / "serial"
    queue_out = scratch / "queue"
    queue_cache = scratch / "cache-queue"
    manifest = scratch / "queue-chaos.json"
    manifest.write_text(json.dumps(RECIPE, indent=2))

    victim = worker2 = submitter = None
    try:
        print("queue-smoke: serial reference run ...")
        subprocess.run(
            RUNNER + [
                "recipe", "run", str(manifest),
                "--cache-dir", str(scratch / "cache-serial"),
                "--format", "json", "--out", str(serial_out),
            ],
            check=True, env=env, stdout=subprocess.DEVNULL,
        )

        print("queue-smoke: queue run, 2 workers, SIGKILL mid-drain ...")
        submitter_log = scratch / "submitter.log"
        with open(submitter_log, "wb") as log:
            submitter = subprocess.Popen(
                RUNNER + [
                    "recipe", "run", str(manifest),
                    "--backend", "queue", "--queue-wait",
                    "--lease-timeout", "3",
                    "--cache-dir", str(queue_cache),
                    "--format", "json", "--out", str(queue_out),
                ],
                env=env, stdout=subprocess.DEVNULL, stderr=log,
            )
        victim = start_worker(queue_cache, env)
        victim_id = f"{socket.gethostname()}:{victim.pid}"

        # Kill the instant mid-chunk is observed -- any check between
        # detection and SIGKILL would give the victim time to finish
        # the chunk (or the whole sweep).
        wait_for_mid_chunk_worker(queue_cache, victim_id)
        os.kill(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        kill_time = time.monotonic()
        # The victim is dead, its replacement not yet started, and the
        # --queue-wait submitter never executes: nothing can write the
        # cache right now, so this census is exactly what survived.
        survivors = snapshot_results(queue_cache)
        print(
            f"  SIGKILLed worker {victim_id} mid-chunk "
            f"({len(survivors)} results already published)"
        )
        # The sweep is still in flight (pending chunks, the victim's
        # lease, its now-silent heartbeat): exercise the observability
        # CLI against exactly that state.
        check_inflight_status_cli(queue_cache, env)

        worker2 = start_worker(queue_cache, env)
        try:
            code = submitter.wait(timeout=DRAIN_TIMEOUT)
            if code != 0:
                sys.stderr.write(submitter_log.read_text())
                raise AssertionError(
                    f"submitter exited {code} after the worker kill"
                )
        finally:
            worker2.terminate()
            worker2.wait(timeout=30)

        # The artifact trees must be byte-identical modulo the
        # meta.provenance execution record (backend name, worker
        # attribution) -- the same exemption recipes-smoke grants.
        serial_tree = tree(serial_out)
        queue_tree = tree(queue_out)
        assert set(serial_tree) == set(queue_tree), (
            f"file sets diverged: serial={sorted(serial_tree)} "
            f"queue={sorted(queue_tree)}"
        )
        mismatched = [
            rel for rel in sorted(serial_tree)
            if serial_tree[rel] != queue_tree[rel]
        ]
        assert not mismatched, f"byte mismatch in {mismatched}"

        # Publish-as-completes: every result the victim published
        # before dying must have survived the reclaim untouched (same
        # file, same mtime -- never recomputed, never rewritten); only
        # the unpublished remainder of its chunk re-ran.
        final = snapshot_results(queue_cache)
        rewritten = [
            rel for rel, mtime in survivors.items()
            if final.get(rel) != mtime
        ]
        assert not rewritten, (
            f"results published before the kill were rewritten "
            f"afterwards: {rewritten}"
        )
        re_ran = len(final) - len(survivors)
        assert re_ran >= 1, "the kill lost nothing? (not mid-chunk)"

        # Final state: sweep drained clean; the victim's heartbeat --
        # beats stopped at the SIGKILL, seconds ago by now -- is the
        # only residue of the chaos (the SIGTERMed second worker
        # retires its own file on the way out).  One benign leftover
        # is allowed: if the SIGKILL landed between the victim's
        # cache.store and queue.complete, its lease is later reclaimed
        # and re-executed as a duplicate of an already-collected
        # result -- such a task/lease file is moot (its entry key is
        # cached) and harmless, never a lost task.
        time.sleep(max(0.0, kill_time + 2.5 - time.monotonic()))
        status = queue_status(queue_cache, stale_after=2.0)
        tasks = status["tasks"]
        cached = scan_cache_entry_keys(queue_cache)
        queue = JobQueue(queue_cache / "queue")
        not_moot = []
        for directory in (queue.tasks_dir, queue.leases_dir):
            for path in directory.iterdir():
                if path.name.startswith("."):
                    continue
                if path.stem.startswith("chunk-"):
                    # A leftover chunk file is moot only if every
                    # member's result is cached.
                    envelope = envelope_from_payload(
                        pickle.loads(path.read_bytes())
                    )
                    missing = [
                        member.entry_key
                        for member in envelope.members
                        if member.entry_key not in cached
                    ]
                    if missing:
                        not_moot.append(
                            f"{path.stem} ({len(missing)} members uncached)"
                        )
                elif path.stem not in cached:
                    not_moot.append(path.stem)
        assert not not_moot, (
            f"tasks left behind without a cached result: {not_moot}"
        )
        assert status["failures"] == [], status["failures"]
        victims = [
            worker for worker in status["workers"]
            if worker["worker_id"] == victim_id
        ]
        assert victims and victims[0]["status"] == "stale", (
            f"SIGKILLed worker should linger as stale: {status['workers']}"
        )

        print(
            "queue-smoke OK: mid-chunk SIGKILL survived, "
            f"{tasks['results_cached']} results "
            f"({len(survivors)} published pre-kill, all intact, "
            f"{re_ran} re-ran), artifact trees byte-identical to "
            "serial (modulo provenance), victim visible as stale worker"
        )
        return 0
    finally:
        for process in (victim, worker2, submitter):
            if process is not None and process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
