#!/usr/bin/env python
"""`make profile-smoke`: the profiling layer end to end.

Runs one tiny Fig 12 sweep through the real CLI into a fresh cache,
then checks the per-task profiling stamps from both ends:

1. **raw**: every cache entry carries a complete profile stamp --
   each :data:`PROFILE_FIELDS` field present and non-negative, with
   sane invariants (``result_bytes > 0``, ``chunk_size >= 1``);
2. **aggregated**: ``runner profile <cache-dir> --json`` reports every
   entry as profiled, with non-negative distributions and an
   ``overhead_share`` in [0, 1]; the human-readable rendering
   mentions the experiment.

This is the ``make test``-time guarantee that no execution path can
silently stop stamping (or stamp garbage) without CI noticing.

Everything happens in a temp directory; the working tree is untouched.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
RUNNER = [sys.executable, "-m", "repro.experiments.runner"]

from repro.orchestration import (  # noqa: E402
    PROFILE_FIELDS,
    profile_from_provenance,
    scan_cache_entry_keys,
)
from repro.orchestration.status import _read_entry  # noqa: E402


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def run_cli(args, env) -> str:
    proc = subprocess.run(
        RUNNER + args, env=env, capture_output=True, text=True
    )
    if proc.returncode != 0:
        raise AssertionError(
            f"runner {' '.join(args)} failed "
            f"(rc {proc.returncode}):\n{proc.stderr}"
        )
    return proc.stdout


def check_raw_stamps(cache_dir: Path) -> int:
    entry_keys = sorted(scan_cache_entry_keys(cache_dir))
    assert entry_keys, f"no cache entries under {cache_dir}"
    for entry_key in entry_keys:
        entry = _read_entry(cache_dir, entry_key)
        assert isinstance(entry, dict), f"unreadable entry {entry_key}"
        stamp = profile_from_provenance(entry.get("provenance"))
        assert stamp is not None, f"entry {entry_key} has no profile stamp"
        for field in PROFILE_FIELDS:
            assert field in stamp, f"{entry_key}: stamp missing {field!r}"
            value = stamp[field]
            assert isinstance(value, (int, float)), (
                f"{entry_key}: {field} is {type(value).__name__}"
            )
            assert value >= 0, f"{entry_key}: {field} is negative ({value})"
        assert stamp["result_bytes"] > 0, f"{entry_key}: empty result?"
        assert stamp["chunk_size"] >= 1, f"{entry_key}: chunk_size < 1"
    return len(entry_keys)


def check_summary(summary: dict, label: str) -> None:
    assert summary["tasks"] >= 1, f"{label}: no tasks in summary"
    for field in ("setup_s", "run_s", "store_s"):
        dist = summary[field]
        for stat in ("mean", "p50", "p95", "max"):
            value = dist[stat]
            assert value >= 0, f"{label}: {field}.{stat} negative ({value})"
    assert summary["result_bytes"]["total"] > 0, f"{label}: no result bytes"
    assert summary["chunk_size"]["mean"] >= 1, f"{label}: chunk mean < 1"
    assert 0.0 <= summary["overhead_share"] <= 1.0, (
        f"{label}: overhead_share out of range "
        f"({summary['overhead_share']})"
    )


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="profile-smoke-"))
    cache_dir = scratch / "cache"
    env = cli_env()
    try:
        print("profile-smoke: tiny fig12 sweep ...")
        run_cli(
            [
                "run", "fig12",
                "--rows-per-bank", "256", "--banks", "1",
                "--requests-per-core", "300",
                "--cache-dir", str(cache_dir),
                "--format", "json", "--out", str(scratch / "out"),
            ],
            env,
        )

        stamped = check_raw_stamps(cache_dir)
        print(f"  {stamped} cache entries, every profile stamp complete")

        profile = json.loads(
            run_cli(["profile", str(cache_dir), "--json"], env)
        )
        assert profile["entries_total"] == stamped
        assert profile["entries_profiled"] == stamped, (
            f"only {profile['entries_profiled']}/{stamped} entries profiled"
        )
        assert "fig12" in profile["experiments"], (
            f"experiments grouped as {sorted(profile['experiments'])}"
        )
        for name, summary in profile["experiments"].items():
            check_summary(summary, name)
        check_summary(profile["overall"], "(overall)")
        print("  aggregation sane (runner profile --json)")

        rendered = run_cli(["profile", str(cache_dir)], env)
        assert "fig12" in rendered, f"rendering lost the experiment:\n{rendered}"
        assert f"{stamped} profiled / {stamped} total" in rendered, rendered

        print(
            f"profile-smoke OK: {stamped} tasks profiled, all "
            f"{len(PROFILE_FIELDS)} fields present and non-negative, "
            "aggregation + rendering verified"
        )
        return 0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
