#!/usr/bin/env python
"""`make bench-backends`: time the execution backends against each other.

Runs a smoke-scale Fig 12 sweep (31 orchestrated tasks) through each
backend twice -- cold cache, then warm cache -- and writes
``BENCH_backends.json`` at the repository root:

* ``serial``     -- in-process reference.
* ``process_j2`` -- local pool, 2 workers.
* ``queue_w2``   -- file-based job queue drained by 2 external
  ``runner worker`` processes (the submitter only waits), i.e. the
  full lease/publish/collect round-trip per task.

All three must produce bit-identical metrics (asserted); the JSON
captures wall-clock plus per-backend bookkeeping so the relative
orchestration overhead is tracked over time.  On a single-core
container the pool and queue backends show their coordination cost
rather than a speedup; on real multi-core hosts the same numbers turn
into the scaling win.

A second pass sweeps the queue backend's ``--chunk-size`` over
1 / 8 / 32 and writes ``BENCH_chunks.json``, pairing each wall-clock
with the per-task overhead breakdown recovered from the profiling
stamps (``runner profile``) -- so the transport cost that chunking
amortizes is visible next to the time it saves.
"""

from __future__ import annotations

import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.experiments import fig12_performance  # noqa: E402
from repro.experiments.common import ExperimentScale  # noqa: E402
from repro.orchestration import (  # noqa: E402
    OrchestrationContext,
    ProcessBackend,
    QueueBackend,
    ResultCache,
    SerialBackend,
    default_queue_dir,
    profile_cache,
    queue_status,
)

#: Smoke-scale Fig 12 grid: 1 baseline + 5 defenses x 2 configs x
#: 3 HC_first values x 1 mix = 31 tasks.
SCALE = ExperimentScale(
    rows_per_bank=512,
    banks=(1,),
    n_mixes=1,
    requests_per_core=1500,
    hc_first_values=(4096, 256, 64),
    svard_profiles=("S0",),
    seed=0,
)

QUEUE_WORKERS = 2


def run_fig12(ctx: OrchestrationContext):
    return fig12_performance.run(SCALE, orchestration=ctx)


def timed(ctx: OrchestrationContext):
    start = time.perf_counter()
    result = run_fig12(ctx)
    elapsed = time.perf_counter() - start
    return result, elapsed


def spawn_workers(cache_dir: Path, count: int):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(ROOT / "src")]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.runner", "worker",
                "--cache-dir", str(cache_dir),
                "--poll-interval", "0.05",
                "--quiet",
            ],
            env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        for _ in range(count)
    ]


def wait_for_workers(cache_dir: Path, count: int, timeout: float = 60.0):
    """Block until ``count`` workers have a live heartbeat.

    Spawned workers spend 1-2 s booting an interpreter and importing
    the package before their first claim; waiting them out keeps the
    timed cold run a measurement of queue transport, not of Python
    startup.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = queue_status(cache_dir)
        live = sum(1 for w in status["workers"] if w["status"] == "live")
        if live >= count:
            return
        time.sleep(0.05)
    raise RuntimeError(f"{count} workers not live after {timeout:g}s")


def bench_backend(label: str, make_context, scratch: Path):
    """``(timings dict, cold Fig12Result)`` for one backend config."""
    cache_dir = scratch / f"cache-{label}"
    cold_ctx = make_context(cache_dir)
    cold_result, cold_s = timed(cold_ctx)
    cold_ctx.close()
    assert cold_ctx.stats.hits == 0, f"{label}: cold run saw cache hits"

    warm_ctx = make_context(cache_dir)
    warm_result, warm_s = timed(warm_ctx)
    warm_ctx.close()
    assert warm_ctx.stats.executed == 0, f"{label}: warm run executed tasks"
    assert warm_result.metrics == cold_result.metrics

    print(f"  {label:<12} cold {cold_s:7.2f}s   warm {warm_s:6.3f}s "
          f"({cold_ctx.stats.submitted} tasks)")
    timings = {
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "tasks": cold_ctx.stats.submitted,
        "cold_executed": cold_ctx.stats.executed,
        "warm_hits": warm_ctx.stats.hits,
    }
    backend_stats = getattr(cold_ctx.backend, "stats", None)
    chunks = getattr(backend_stats, "chunks_enqueued", 0)
    if chunks:
        # Realized transport batching: tasks per queue envelope.
        timings["chunks_enqueued"] = chunks
    return timings, cold_result


def overhead_breakdown(cache_dir: Path) -> dict:
    """Per-task cost split recovered from the profiling stamps."""
    overall = profile_cache(cache_dir)["overall"]
    return {
        "tasks_profiled": overall["tasks"],
        "run_p50_s": overall["run_s"]["p50"],
        "run_p95_s": overall["run_s"]["p95"],
        "setup_mean_s": overall["setup_s"]["mean"],
        "store_mean_s": overall["store_s"]["mean"],
        "overhead_share": overall["overhead_share"],
        "chunk_size_mean": overall["chunk_size"]["mean"],
    }


def bench_chunk_size(chunk: int, scratch: Path, reference_metrics) -> dict:
    """One cold queue drain at a fixed ``--chunk-size``."""
    cache_dir = scratch / f"cache-chunk{chunk}"
    workers = spawn_workers(cache_dir, QUEUE_WORKERS)
    try:
        wait_for_workers(cache_dir, QUEUE_WORKERS)
        ctx = OrchestrationContext(
            cache=ResultCache(cache_dir),
            backend=QueueBackend(
                default_queue_dir(cache_dir),
                participate=False,
                poll_interval=0.05,
                chunk_size=chunk,
            ),
        )
        result, cold_s = timed(ctx)
        ctx.close()
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=30)
    assert result.metrics == reference_metrics, (
        f"chunk_size={chunk} changed the results"
    )
    tasks = ctx.stats.submitted
    entry = {
        "chunk_size": chunk,
        "cold_s": round(cold_s, 3),
        "tasks": tasks,
        "chunks_enqueued": ctx.backend.stats.chunks_enqueued,
        "per_task_ms": round(1000.0 * cold_s / tasks, 1),
        "profile": overhead_breakdown(cache_dir),
    }
    print(f"  chunk={chunk:<3} cold {cold_s:7.2f}s   "
          f"{entry['chunks_enqueued']} envelopes   "
          f"overhead {100.0 * entry['profile']['overhead_share']:.1f}%")
    return entry


def main() -> int:
    scratch = Path(tempfile.mkdtemp(prefix="bench-backends-"))
    results = {}
    reference = {}

    print(f"bench-backends: fig12 smoke grid, {QUEUE_WORKERS} queue workers")

    results["serial"], reference["serial"] = bench_backend(
        "serial",
        lambda cache_dir: OrchestrationContext(
            cache=ResultCache(cache_dir), backend=SerialBackend()
        ),
        scratch,
    )

    results["process_j2"], reference["process_j2"] = bench_backend(
        "process_j2",
        lambda cache_dir: OrchestrationContext(
            jobs=2, cache=ResultCache(cache_dir), backend=ProcessBackend(2)
        ),
        scratch,
    )

    queue_cache = scratch / "cache-queue_w2"
    workers = spawn_workers(queue_cache, QUEUE_WORKERS)
    try:
        wait_for_workers(queue_cache, QUEUE_WORKERS)
        results["queue_w2"], reference["queue_w2"] = bench_backend(
            "queue_w2",
            lambda cache_dir: OrchestrationContext(
                cache=ResultCache(cache_dir),
                backend=QueueBackend(
                    default_queue_dir(cache_dir),
                    participate=False,
                    poll_interval=0.05,
                ),
            ),
            scratch,
        )
    finally:
        for worker in workers:
            worker.terminate()
        for worker in workers:
            worker.wait(timeout=30)

    # The whole point of pluggable backends: identical results.
    assert reference["serial"].metrics == reference["process_j2"].metrics
    assert reference["serial"].metrics == reference["queue_w2"].metrics
    print("  all backends bit-identical")

    print("bench-chunks: queue backend at fixed chunk sizes")
    chunk_entries = [
        bench_chunk_size(chunk, scratch, reference["serial"].metrics)
        for chunk in (1, 8, 32)
    ]

    host = {
        "cpus": os.cpu_count(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }
    chunks_document = {
        "bench": "chunks",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "grid": "fig12 smoke (1 mix, 3 HC values, Svärd-S0, 512 rows)",
        "queue_workers": QUEUE_WORKERS,
        "host": host,
        "results": chunk_entries,
    }
    chunks_path = ROOT / "BENCH_chunks.json"
    chunks_path.write_text(
        json.dumps(chunks_document, indent=2, ensure_ascii=False) + "\n"
    )
    print(f"wrote {chunks_path}")

    document = {
        "bench": "backends",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "grid": "fig12 smoke (1 mix, 3 HC values, Svärd-S0, 512 rows)",
        "queue_workers": QUEUE_WORKERS,
        "host": host,
        "results": results,
    }
    out_path = ROOT / "BENCH_backends.json"
    out_path.write_text(json.dumps(document, indent=2, ensure_ascii=False) + "\n")
    print(f"wrote {out_path}")
    shutil.rmtree(scratch, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
