#!/usr/bin/env python
"""`make kernels-smoke`: kernel vs loop-oracle characterization diff.

Runs one tiny platform-mode bank characterization through the batched
kernel path and through the retained per-row loop oracle, then
byte-diffs every field of the two :class:`BankProfile` objects.  This
is the cheap ``make test``-time guarantee that the vectorized
measurement path cannot drift from the command-faithful loop without
CI noticing; the full cross-product lives in ``tests/test_kernels.py``
and the timed comparison in ``benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.characterization.reference import characterize_bank_loop  # noqa: E402
from repro.characterization.runner import (  # noqa: E402
    CharacterizationConfig,
    CharacterizationRunner,
)
from repro.dram.mapping import ScramblingScheme  # noqa: E402
from repro.faults.modules import Manufacturer, ModuleSpec  # noqa: E402

SPEC = ModuleSpec(
    label="SMOKE",
    manufacturer=Manufacturer.SK_HYNIX,
    n_chips=8,
    density_gb=8,
    die_revision="A",
    organization="x8",
    freq_mts=3200,
    mfr_date="05-23",
    rows_per_bank=128,
    hc_min=20,
    hc_avg=40,
    hc_max=80,
    ber_mean=5e-3,
    ber_cv_pct=4.0,
    n_ber_periods=2.0,
    subarray_rows=32,
    scrambling=ScramblingScheme.XOR_FOLD,
)

CONFIG = CharacterizationConfig(
    rows_per_bank=128,
    banks=(0,),
    hc_grid=(16, 24, 32, 48, 64, 96, 160),
    iterations=2,
    mode="platform",
    seed=5,
)


def diff_profiles(kernel, loop) -> list:
    problems = []

    def check(name, a, b):
        same = (
            np.array_equal(a, b)
            if isinstance(a, np.ndarray)
            else a == b
        )
        if not same:
            problems.append(f"{name}: kernel={a!r} loop={b!r}")

    check("module_label", kernel.module_label, loop.module_label)
    check("bank", kernel.bank, loop.bank)
    check("t_agg_on_ns", kernel.t_agg_on_ns, loop.t_agg_on_ns)
    check("bank_rows", kernel.bank_rows, loop.bank_rows)
    check("row_indices", kernel.row_indices, loop.row_indices)
    check("wcdp_index", kernel.wcdp_index, loop.wcdp_index)
    check("measured_hc_first", kernel.measured_hc_first, loop.measured_hc_first)
    check("ber_by_hc keys", sorted(kernel.ber_by_hc), sorted(loop.ber_by_hc))
    for hc in sorted(kernel.ber_by_hc):
        if hc in loop.ber_by_hc:
            check(f"ber_by_hc[{hc}]", kernel.ber_by_hc[hc], loop.ber_by_hc[hc])
    return problems


def main() -> int:
    print("kernels-smoke: 128-row XOR_FOLD bank, kernel vs loop oracle")
    kernel = CharacterizationRunner(SPEC, CONFIG).characterize_bank(0)
    loop = characterize_bank_loop(
        CharacterizationRunner(SPEC, CONFIG), 0
    )
    problems = diff_profiles(kernel, loop)
    if problems:
        for problem in problems:
            print(f"  MISMATCH {problem}")
        return 1
    print(
        f"  profiles bit-identical ({kernel.rows} rows, "
        f"{len(kernel.ber_by_hc)} HC points, {CONFIG.iterations} iterations)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
