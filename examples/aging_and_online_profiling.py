"""Aging and the case for online re-profiling (Section 5.5).

Characterizes module H3, applies 68 days of simulated hammer stress,
re-characterizes, and shows why a statically configured defense
becomes unsafe: some rows now flip below the threshold the original
profile promised.  Svärd rebuilt from the fresh profile restores the
security invariant -- the paper's argument for periodic online
testing (Obsv 12).

Run:  python examples/aging_and_online_profiling.py
"""

import numpy as np

from repro.characterization import AgingStudy, CharacterizationConfig
from repro.core import Svard, VulnerabilityProfile
from repro.faults import module_by_label


def main() -> None:
    spec = module_by_label("H3")
    config = CharacterizationConfig(rows_per_bank=16384, banks=(1,))
    study = AgingStudy(spec, config, days=68.0)
    result = study.run(bank=1)

    print(f"module {spec.label}: {result.weakened_fraction() * 100:.2f}% of "
          f"rows weakened after {result.days:.0f} days of stress")
    print(f"worst-case HC_first before: {result.before.min() // 1024}K, "
          f"after: {result.after.min() // 1024}K")

    print("\ntransition fractions (before -> after):")
    for (before, after), fraction in sorted(result.transitions().items()):
        if before != after:
            print(f"  {before // 1024:>4}K -> {after // 1024}K: "
                  f"{fraction * 100:.2f}%")

    # A Svärd built on the *stale* profile violates security for the
    # weakened rows: its thresholds exceed their new HC_first.
    stale = Svard.build(
        VulnerabilityProfile(
            module_label="H3-stale",
            per_bank={1: result.before.astype(float)},
        )
    )
    fresh_values = result.after.astype(float)
    stale_thresholds = stale.bins.thresholds(result.before.astype(float))
    violations = int(np.sum(stale_thresholds > fresh_values))
    print(f"\nstale profile: {violations} rows now flip below their "
          f"configured threshold (unsafe)")

    fresh = Svard.build(
        VulnerabilityProfile(
            module_label="H3-fresh", per_bank={1: fresh_values}
        )
    )
    print(f"re-profiled Svärd security invariant: "
          f"{fresh.verify_security_invariant()}")
    print("-> periodic online re-profiling keeps Svärd (and any "
          "statically configured defense) safe under aging.")


if __name__ == "__main__":
    main()
