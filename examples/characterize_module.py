"""Characterize a module with the paper's Algorithm 1.

Runs the full test loop (WCDP search at 128K, hammer-count sweep,
four representative banks) on one module and prints the spatial
variation statistics behind Takeaways 1-4, plus a RowPress sweep.

Run:  python examples/characterize_module.py [module-label]
"""

import sys

from repro.characterization import (
    CharacterizationConfig,
    CharacterizationRunner,
    RowPressStudy,
    box_stats,
    coefficient_of_variation_pct,
    hc_first_histogram,
)
from repro.faults import module_by_label
from repro.faults.variation import HC_GRID


def main(label: str = "H1") -> None:
    spec = module_by_label(label)
    config = CharacterizationConfig(rows_per_bank=2048, banks=(1, 4, 10, 15))
    print(f"Characterizing {label} ({spec.manufacturer.display_name}, "
          f"{spec.density_gb}Gb die rev {spec.die_revision}, "
          f"{config.rows_per_bank} rows/bank) ...")

    result = CharacterizationRunner(spec, config).run()

    ber = result.all_ber()
    print(f"\nBER @ 128K hammers across {len(ber)} rows:")
    stats = box_stats(ber)
    print(f"  mean {stats.mean:.3e}, IQR [{stats.q1:.3e}, {stats.q3:.3e}]")
    print(f"  CV {coefficient_of_variation_pct(ber):.2f}% "
          f"(paper: {spec.ber_cv_pct:.2f}%)")

    measured = result.all_hc_first()
    print(f"\nHC_first distribution (min {measured.min() // 1024}K, "
          f"paper min {spec.hc_min // 1024}K):")
    for value, fraction in sorted(hc_first_histogram(measured, HC_GRID).items()):
        if fraction > 0:
            bar = "#" * max(1, int(fraction * 50))
            print(f"  {value // 1024:>4}K {fraction * 100:5.1f}% {bar}")

    print("\nRowPress sweep (HC_first means):")
    study = RowPressStudy(spec, config)
    sweeps = study.run()
    for t_on, boxes in RowPressStudy.hc_first_boxes(sweeps).items():
        print(f"  tAggOn {t_on:>7.0f} ns -> mean HC_first "
              f"{boxes.mean / 1024:.1f}K")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "H1")
