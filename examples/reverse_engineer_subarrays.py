"""Reverse engineer a module's internals from the memory interface.

Recovers (1) the in-DRAM row scrambling by probing which logical rows
disturb a victim, and (2) the subarray boundaries via single-sided
hammer probes, RowClone validation, and the k-means/silhouette sweep
of Fig 8 -- all without looking at the module's ground truth.

Run:  python examples/reverse_engineer_subarrays.py
"""

from repro.bender import TestPlatform
from repro.faults import module_by_label
from repro.reveng import (
    SubarrayReverseEngineer,
    infer_scrambling_scheme,
    recover_physical_neighbors,
)

MODULE = "S3"
ROWS_PER_BANK = 1024
BANK = 0


def main() -> None:
    spec = module_by_label(MODULE)
    platform = TestPlatform(spec, rows_per_bank=ROWS_PER_BANK, seed=0)
    platform.device.rowclone_success_rate = 1.0

    print(f"Reverse engineering {MODULE} ({ROWS_PER_BANK} rows/bank) ...")

    victim = 100
    neighbors = recover_physical_neighbors(platform, BANK, victim,
                                           search_radius=4)
    print(f"\nRows that disturb logical row {victim}: {neighbors}")
    scheme = infer_scrambling_scheme(platform, BANK, [99, 100, 101, 102],
                                     search_radius=4)
    print(f"Inferred scrambling scheme: {scheme.name} "
          f"(ground truth: {spec.scrambling.name})")

    engineer = SubarrayReverseEngineer(platform, seed=0)
    inference = engineer.infer(BANK)
    print(f"\nDetected subarray boundaries (physical rows): "
          f"{inference.boundary_rows}")
    print(f"Inferred subarray count: {inference.inferred_k}")
    print(f"Subarray sizes: {inference.subarray_sizes()}")
    print("Silhouette sweep (k: score):")
    for k in sorted(inference.silhouette_by_k):
        score = inference.silhouette_by_k[k]
        marker = "  <-- peak" if k == inference.inferred_k else ""
        print(f"  k={k:>3}: {score:.3f}{marker}")


if __name__ == "__main__":
    main()
