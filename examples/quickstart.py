"""Quickstart: hammer a simulated DRAM row and watch it flip.

Builds the S0 module's device model (scaled to a 2048-row bank),
reverse-engineers nothing -- just asks the platform for the victim's
physical aggressors, hammers below and above the row's HC_first, and
reads the bit error rate back.  Then builds Svärd on the module's
vulnerability profile and shows the per-row thresholds it would hand
a defense.

Run:  python examples/quickstart.py

From here, regenerate the paper's figures with the experiment runner;
``--jobs`` fans the independent simulations out over worker processes
and completed tasks persist in ``.repro_cache/`` (ORCHESTRATION.md):

    python -m repro.experiments.runner run fig12 --jobs 4 --progress
"""

from repro.bender import TestPlatform
from repro.core import Svard, VulnerabilityProfile
from repro.faults import DataPattern, module_by_label

ROWS_PER_BANK = 2048
BANK = 1
VICTIM = 700


def main() -> None:
    spec = module_by_label("S0")
    platform = TestPlatform(spec, rows_per_bank=ROWS_PER_BANK, seed=0)

    hc_first = platform.model.true_hc_first(BANK)[VICTIM]
    wcdp = platform.model.wcdp(BANK, VICTIM)
    print(f"module {spec.label} ({spec.manufacturer.display_name}), "
          f"bank {BANK}, victim row {VICTIM}")
    print(f"  true HC_first: {hc_first:,.0f} hammers, WCDP: {wcdp.short_name}")

    below, above = platform.aggressor_rows_for(VICTIM)
    print(f"  double-sided aggressors (logical addresses): {below}, {above}")

    for multiple in (0.5, 1.5, 4.0):
        count = int(hc_first * multiple)
        result = platform.measure_ber(BANK, VICTIM, wcdp, count)
        print(f"  hammer {count:>8,} pairs -> {result.bitflips:>5} bitflips "
              f"(BER {result.ber:.2e})")

    profile = VulnerabilityProfile.from_ground_truth(
        spec, banks=(BANK,), rows_per_bank=ROWS_PER_BANK
    )
    svard = Svard.build(profile)
    print(f"\nSvärd on {spec.label}'s profile "
          f"(worst case {profile.worst_case:,.0f} hammers):")
    for row in (VICTIM, VICTIM + 1, VICTIM + 100):
        threshold = svard.threshold_for(BANK, row)
        scale = svard.aggressiveness_scale(BANK, row)
        print(f"  row {row}: threshold {threshold:>9,.0f} "
              f"({scale:.2f}x the worst case)")
    print(f"  security invariant holds: {svard.verify_security_invariant()}")
    print(f"  mean overprotection without Svärd: "
          f"{svard.overprotection_factor():.2f}x")
    print("\nNext: regenerate the paper's figures (parallel, cached):")
    print("  python -m repro.experiments.runner run fig12 --jobs 4 --progress")


if __name__ == "__main__":
    main()
