"""Evaluate a RowHammer defense with and without Svärd.

Simulates an 8-core multiprogrammed mix on the Table 4 DDR4 system,
protected by PARA and by RRS, at a future-chip worst-case HC_first of
64 -- first with the conventional single worst-case threshold, then
with Svärd supplying per-row thresholds from module S0's profile.

Run:  python examples/evaluate_defense_with_svard.py
"""

from repro.core import Svard, VulnerabilityProfile
from repro.defenses import DEFENSE_CLASSES, SvardThresholds
from repro.faults import module_by_label
from repro.sim import MemorySystem, SystemConfig, compute_metrics
from repro.workloads import build_traces, generate_mixes
from repro.workloads.mixes import build_alone_trace, single_core_config

HC_FIRST = 64
PROFILE_MODULE = "S0"


def main() -> None:
    config = SystemConfig(requests_per_core=3000, defense_epoch_ns=1e6)
    mix = generate_mixes(1, seed=7)[0]
    print(f"mix: {', '.join(mix.suites)}")

    alone_config = single_core_config(config)
    alone = [
        MemorySystem(alone_config, build_alone_trace(mix, core, alone_config))
        .run().cores[0].finish_ns
        for core in range(config.cores)
    ]
    baseline = MemorySystem(config, build_traces(mix, config)).run()
    base_metrics = compute_metrics(alone, baseline.finish_times())
    print(f"no-defense baseline: weighted speedup "
          f"{base_metrics.weighted_speedup:.2f}, "
          f"row hit rate {baseline.row_hit_rate:.2f}")

    profile = VulnerabilityProfile.from_ground_truth(
        module_by_label(PROFILE_MODULE), banks=(1, 4, 10, 15),
        rows_per_bank=2048,
    ).scaled_to_worst_case(HC_FIRST)
    svard = Svard.build(profile)
    print(f"\nSvärd profile {PROFILE_MODULE}: worst case {HC_FIRST}, "
          f"mean overprotection {svard.overprotection_factor():.2f}x, "
          f"secure: {svard.verify_security_invariant()}")

    for name in ("PARA", "RRS"):
        print(f"\n{name} @ HC_first = {HC_FIRST}:")
        for config_name, thresholds in (
            ("No Svärd", None),
            (f"Svärd-{PROFILE_MODULE}", SvardThresholds(svard)),
        ):
            kwargs = dict(rows_per_bank=config.rows_per_bank, seed=0)
            if thresholds is not None:
                kwargs["thresholds"] = thresholds
            defense = DEFENSE_CLASSES[name](HC_FIRST, **kwargs)
            result = MemorySystem(
                config, build_traces(mix, config), defense=defense
            ).run()
            metrics = compute_metrics(alone, result.finish_times())
            normalized = metrics.normalized_to(base_metrics)
            print(f"  {config_name:>10}: weighted speedup "
                  f"{normalized.weighted_speedup:.3f} of baseline, "
                  f"max slowdown {normalized.max_slowdown:.2f}x "
                  f"(refreshes {defense.stats.victim_refreshes}, "
                  f"swaps {defense.stats.swaps})")


if __name__ == "__main__":
    main()
