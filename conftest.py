"""Root pytest configuration: the golden-snapshot regeneration flag.

``pytest --update-golden`` rewrites ``tests/golden/*.json`` from the
current code instead of comparing against them (see
tests/test_golden.py).  The option lives in the root conftest so it is
registered whether pytest is invoked on the whole repository or on
``tests/`` alone.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate tests/golden/*.json snapshots instead of "
             "comparing against them",
    )
