"""Bench E-fig8: regenerate Fig 8 (subarray silhouette sweep)."""

from benchmarks.conftest import run_once
from repro.experiments import fig8_subarray_silhouette
from repro.experiments.common import ExperimentScale


def test_bench_fig8(benchmark):
    scale = ExperimentScale(rows_per_bank=1024, banks=(0,), seed=0)
    result = run_once(
        benchmark, fig8_subarray_silhouette.run, scale,
        modules=("S0", "S3", "S4"),
    )
    print()
    print(result.render())
    # The silhouette peak recovers the true subarray count.
    for label, inference in result.inferences.items():
        assert inference.inferred_k == result.true_subarrays[label]
