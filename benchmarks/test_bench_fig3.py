"""Bench E-fig3: regenerate Fig 3 (BER distribution across rows/banks)."""

from benchmarks.conftest import run_once
from repro.experiments import fig3_ber_distribution


def test_bench_fig3(benchmark, bench_scale):
    result = run_once(benchmark, fig3_ber_distribution.run, bench_scale)
    print()
    print(result.render())
    # Obsv 2: banks agree within a module.
    assert all(ratio < 1.05 for ratio in result.bank_agreement.values())
    # Obsv 1: rows vary; the most-varying module is M1 (8.08% CV).
    assert max(result.cv_pct, key=result.cv_pct.get) == "M1"
