"""Bench E-fig13: regenerate Fig 13 (adversarial access patterns)."""

from benchmarks.conftest import run_once
from repro.experiments import fig13_adversarial
from repro.experiments.common import ExperimentScale


def test_bench_fig13(benchmark):
    scale = ExperimentScale(
        rows_per_bank=1024, banks=(1, 4), requests_per_core=12000, seed=0
    )
    result = run_once(benchmark, fig13_adversarial.run, scale)
    print()
    print(result.render())
    # Takeaway 9: Svärd mitigates both adversarial patterns.
    for defense in ("Hydra", "RRS"):
        for (d, config), value in result.normalized_slowdown.items():
            if d == defense and config != "No Svärd":
                assert value < 1.0
