"""Bench E-fig9: regenerate Fig 9 (spatial features vs F1 threshold)."""

from benchmarks.conftest import run_once
from repro.experiments import fig9_spatial_features
from repro.faults.modules import FEATURE_CORRELATED_MODULES


def test_bench_fig9(benchmark, feature_scale):
    result = run_once(benchmark, fig9_spatial_features.run, feature_scale)
    print()
    print(result.render())
    # Takeaway 6: exactly S0/S1/S3/S4 keep features above F1 = 0.7.
    assert set(result.modules_with_strong_features()) == set(
        FEATURE_CORRELATED_MODULES
    )
    # No feature exceeds 0.8.
    assert result.max_f1() <= 0.80
