"""Bench E-fig10: regenerate Fig 10 (aging before/after scatter)."""

from benchmarks.conftest import run_once
from repro.experiments import fig10_aging
from repro.experiments.common import ExperimentScale


def test_bench_fig10(benchmark):
    scale = ExperimentScale(rows_per_bank=16384, banks=(1,), seed=0)
    result = run_once(benchmark, fig10_aging.run, scale)
    print()
    print(result.render())
    # Obsv 12: some rows weaken; Obsv 13: none strengthen.
    assert result.study.weakened_fraction() > 0
    assert all(a <= b for b, a in zip(result.study.before, result.study.after))
