"""Bench E-tab3: regenerate Table 3 (features with F1 > 0.7)."""

from benchmarks.conftest import run_once
from repro.experiments import table3_features
from repro.faults.modules import FEATURE_CORRELATED_MODULES


def test_bench_table3(benchmark, feature_scale):
    result = run_once(benchmark, table3_features.run, feature_scale)
    print()
    print(result.render())
    with_strong = {label for label, f in result.strong.items() if f}
    assert with_strong == set(FEATURE_CORRELATED_MODULES)
