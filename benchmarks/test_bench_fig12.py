"""Bench E-fig12: regenerate Fig 12 (Svärd performance evaluation).

The headline result: Svärd improves the weighted speedup of all five
defenses, most for the throttling/swap-based ones and least for Hydra
(Obsv 14), with overheads growing as the worst-case HC_first shrinks.
"""

from benchmarks.conftest import bench_jobs, run_once
from repro.experiments import fig12_performance


def test_bench_fig12(benchmark, perf_scale):
    result = run_once(benchmark, fig12_performance.run, perf_scale)
    print()
    print(result.render())

    # Paper ordering of no-Svärd overheads at HC_first = 64:
    # BlockHammer worst, then RRS, PARA, AQUA, Hydra (Fig 12).
    at_64 = {
        name: result.weighted_speedup(name, "No Svärd", 64)
        for name in ("AQUA", "BlockHammer", "Hydra", "PARA", "RRS")
    }
    assert at_64["BlockHammer"] < at_64["RRS"] < at_64["PARA"]
    assert at_64["PARA"] < at_64["AQUA"] < at_64["Hydra"]

    # Takeaway 8: Svärd improves every defense at HC_first = 64 ...
    for name in at_64:
        assert result.improvement(name, "Svärd-S0", 64) > 1.0
    # ... and helps Hydra least (Obsv 14).
    improvements = {
        name: result.improvement(name, "Svärd-S0", 64) for name in at_64
    }
    assert improvements["Hydra"] == min(improvements.values())


def test_bench_fig12_parallel(benchmark, perf_scale, cold_orchestration):
    """The same grid fanned out over ``$BENCH_JOBS`` worker processes.

    Timed against a cold on-disk cache so the number reflects real
    simulation throughput; compare against ``test_bench_fig12`` for
    the orchestration speedup.
    """
    orchestration = cold_orchestration(jobs=bench_jobs())
    result = run_once(
        benchmark, fig12_performance.run, perf_scale,
        orchestration=orchestration,
    )
    print()
    print(result.render())

    # Cold cache: every task truly executed under the timer ...
    assert orchestration.stats.hits == 0
    assert orchestration.stats.executed == orchestration.stats.submitted > 0
    # ... and the parallel run reproduces the serial takeaway.
    for name in ("AQUA", "BlockHammer", "Hydra", "PARA", "RRS"):
        assert result.improvement(name, "Svärd-S0", 64) > 1.0
