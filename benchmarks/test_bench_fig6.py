"""Bench E-fig6: regenerate Fig 6 (HC_first vs location, irregular)."""

from benchmarks.conftest import run_once
from repro.experiments import fig6_hcfirst_location


def test_bench_fig6(benchmark, bench_scale):
    result = run_once(benchmark, fig6_hcfirst_location.run, bench_scale)
    print()
    print(result.render())
    # Obsv 9: H-module HC_first shows no regular location trend.
    assert abs(result.autocorrelation["H4"]) < 0.2
    # Obsv 8: large spread across rows.
    assert result.spread["H0"] >= 4.0
