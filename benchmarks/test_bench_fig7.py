"""Bench E-fig7: regenerate Fig 7 (RowPress tAggOn sweep)."""

from benchmarks.conftest import run_once
from repro.experiments import fig7_rowpress


def test_bench_fig7(benchmark, bench_scale):
    result = run_once(benchmark, fig7_rowpress.run, bench_scale)
    print()
    print(result.render())
    # Takeaway 5: HC_first drops roughly an order of magnitude by 2 us.
    for mfr in ("H", "M", "S"):
        assert 4.0 < result.reduction_factor(mfr) < 20.0
