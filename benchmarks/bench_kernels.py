#!/usr/bin/env python
"""`make bench-kernels`: the vectorized kernels against the loop oracle.

Times one full platform-mode bank characterization (Algorithm 1: WCDP
search at HC_max, then the hammer-count sweep) two ways at a fixed
scale:

* ``loop``   -- the retained per-row reference
  (:func:`repro.characterization.reference.characterize_bank_loop`),
  one ``measure_ber`` device sequence per (row, pattern, HC).
* ``kernel`` -- the batched path
  (:meth:`CharacterizationRunner.characterize_bank`), one
  ``measure_ber_bank`` call per (pattern, HC) covering every row.

Both profiles must be bit-identical (asserted field by field) -- the
kernels are only allowed to be faster, never different.  Writes
``BENCH_kernels.json`` at the repository root with both wall-clock
times and the speedup, so the win is tracked over time.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.characterization.reference import characterize_bank_loop  # noqa: E402
from repro.characterization.runner import (  # noqa: E402
    CharacterizationConfig,
    CharacterizationRunner,
)
from repro.dram.mapping import ScramblingScheme  # noqa: E402
from repro.faults.modules import Manufacturer, ModuleSpec  # noqa: E402
from repro.faults.variation import HC_GRID  # noqa: E402

#: Fixed bench scale: one full bank, the paper's 14-point HC grid.
ROWS_PER_BANK = 1024
BANK = 0
SEED = 7

SPEC = ModuleSpec(
    label="BENCH",
    manufacturer=Manufacturer.SAMSUNG,
    n_chips=8,
    density_gb=8,
    die_revision="B",
    organization="x8",
    freq_mts=3200,
    mfr_date="01-24",
    rows_per_bank=ROWS_PER_BANK,
    hc_min=2048,
    hc_avg=8192,
    hc_max=32768,
    ber_mean=5e-3,
    ber_cv_pct=4.0,
    n_ber_periods=2.0,
    subarray_rows=256,
    scrambling=ScramblingScheme.MIRROR,
)


def fresh_runner() -> CharacterizationRunner:
    return CharacterizationRunner(
        SPEC,
        CharacterizationConfig(
            rows_per_bank=ROWS_PER_BANK,
            banks=(BANK,),
            hc_grid=tuple(HC_GRID),
            mode="platform",
            seed=SEED,
        ),
    )


def assert_identical(kernel, loop) -> None:
    assert np.array_equal(kernel.wcdp_index, loop.wcdp_index)
    assert np.array_equal(kernel.measured_hc_first, loop.measured_hc_first)
    assert np.array_equal(kernel.row_indices, loop.row_indices)
    assert sorted(kernel.ber_by_hc) == sorted(loop.ber_by_hc)
    for hc, ber in kernel.ber_by_hc.items():
        assert np.array_equal(ber, loop.ber_by_hc[hc]), hc


def main() -> int:
    print(
        f"bench-kernels: platform characterization, {ROWS_PER_BANK} rows, "
        f"{len(HC_GRID)}-point HC grid"
    )

    start = time.perf_counter()
    loop_profile = characterize_bank_loop(fresh_runner(), BANK)
    loop_s = time.perf_counter() - start
    print(f"  loop    {loop_s:7.2f}s")

    start = time.perf_counter()
    kernel_profile = fresh_runner().characterize_bank(BANK)
    kernel_s = time.perf_counter() - start
    print(f"  kernel  {kernel_s:7.2f}s")

    assert_identical(kernel_profile, loop_profile)
    speedup = loop_s / kernel_s
    print(f"  bit-identical profiles, speedup {speedup:.1f}x")
    assert speedup >= 5.0, f"kernel speedup {speedup:.1f}x below the 5x floor"

    document = {
        "bench": "kernels",
        "generated": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "scale": {
            "rows_per_bank": ROWS_PER_BANK,
            "hc_grid_points": len(HC_GRID),
            "patterns": 4,
            "scrambling": SPEC.scrambling.name,
        },
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "results": {
            "loop_s": round(loop_s, 3),
            "kernel_s": round(kernel_s, 3),
            "speedup": round(speedup, 1),
            "bit_identical": True,
        },
    }
    out_path = ROOT / "BENCH_kernels.json"
    out_path.write_text(
        json.dumps(document, indent=2, ensure_ascii=False) + "\n"
    )
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
