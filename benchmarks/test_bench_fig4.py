"""Bench E-fig4: regenerate Fig 4 (BER vs relative row location)."""

from benchmarks.conftest import run_once
from repro.experiments import fig4_ber_location


def test_bench_fig4(benchmark, bench_scale):
    result = run_once(benchmark, fig4_ber_location.run, bench_scale)
    print()
    print(result.render())
    # Takeaway 2: repeating spatial patterns exist in every module.
    assert all(c.peak_to_trough() > 1.005 for c in result.curves.values())
