"""Bench E-tab5: regenerate Tables 1/5 (tested module registry)."""

from benchmarks.conftest import run_once
from repro.experiments import table5_modules


def test_bench_table5(benchmark, bench_scale):
    result = run_once(benchmark, table5_modules.run, bench_scale)
    print()
    print(result.render())
    assert len(result.rows) == 15
    for row in result.rows.values():
        assert row.measured_min >= row.paper_min
        assert abs(row.measured_avg - row.paper_avg) / row.paper_avg < 0.15
