"""Bench E-sec64: regenerate the Section 6.4 hardware-cost estimates."""

import pytest

from benchmarks.conftest import run_once
from repro.experiments import sec64_hardware_cost


def test_bench_sec64(benchmark):
    result = run_once(benchmark, sec64_hardware_cost.run)
    print()
    print(result.render())
    model = result.model
    assert model.table_area_per_bank_mm2() == pytest.approx(0.056)
    assert model.cpu_area_overhead_fraction() == pytest.approx(0.0086, rel=0.02)
    assert model.lookup_hidden_under_activation()
