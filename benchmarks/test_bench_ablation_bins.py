"""Bench: the Svärd bin-count ablation (DESIGN.md design choice)."""

from benchmarks.conftest import run_once
from repro.experiments import ablation_bins
from repro.experiments.common import ExperimentScale


def test_bench_ablation_bins(benchmark):
    scale = ExperimentScale(
        rows_per_bank=1024, banks=(1, 4), requests_per_core=2500, seed=0
    )
    result = run_once(benchmark, ablation_bins.run, scale)
    print()
    print(result.render())
    speedups = result.speedup_by_bins
    # One bin collapses to the worst-case threshold; 16 bins must beat it.
    assert speedups[16] > speedups[1]
    # The 4-bit choice: going beyond 16 bins would buy almost nothing,
    # and most of the benefit arrives by 8 bins.
    assert result.saturation_bins(tolerance=0.05) <= 16
