"""Shared benchmark scales.

Every benchmark regenerates one paper table/figure at a laptop scale
(pedantic single-round timing: these are experiment harnesses, not
micro-benchmarks).  EXPERIMENTS.md documents the paper-scale knobs.

Benchmarks always report **cold-cache** numbers: an autouse fixture
points the on-disk result cache (``$REPRO_CACHE_DIR``) at a fresh
temporary directory and clears the in-process memo caches before each
benchmark, so a warm cache left by a previous run (or a previous
benchmark in the same session) can never flatter a timing.

Knobs:

* ``BENCH_JOBS`` -- worker processes for the orchestrated benchmarks
  (default 2).
"""

import os

import pytest

from repro.experiments import common as experiments_common
from repro.experiments.common import ExperimentScale
from repro.orchestration import OrchestrationContext, ResultCache
from repro.orchestration import task as orchestration_task


@pytest.fixture(scope="session")
def bench_scale():
    """Characterization-side scale: all 15 modules, 2 banks."""
    return ExperimentScale(rows_per_bank=1024, banks=(1, 4), seed=0)


@pytest.fixture(scope="session")
def feature_scale():
    """Feature-analysis scale (bit semantics need the 2K-row bank)."""
    return ExperimentScale(rows_per_bank=2048, banks=(1, 4), seed=0)


@pytest.fixture(scope="session")
def perf_scale():
    """Performance-side scale: reduced Fig 12 grid."""
    return ExperimentScale(
        rows_per_bank=1024,
        banks=(1, 4),
        n_mixes=1,
        requests_per_core=2500,
        hc_first_values=(4096, 256, 64),
        svard_profiles=("S0",),
        seed=0,
    )


@pytest.fixture(autouse=True)
def cold_caches(tmp_path, monkeypatch):
    """Point every cache at a fresh temp dir and clear process memos."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro_cache"))
    experiments_common._CHARACTERIZATION_CACHE.clear()
    experiments_common._PROFILE_MEMO.clear()
    orchestration_task._PROCESS_SETUP_CACHE.clear()


@pytest.fixture
def cold_orchestration(tmp_path):
    """Factory for contexts backed by a cold on-disk cache.

    ``make(jobs=N)`` returns a fresh :class:`OrchestrationContext`
    whose cache directory is empty, so the benchmarked run executes
    every task (``ctx.stats.hits == 0`` afterwards, which callers
    should assert).
    """
    counter = iter(range(10**6))

    def make(jobs: int = 1) -> OrchestrationContext:
        directory = tmp_path / f"cold_cache_{next(counter)}"
        return OrchestrationContext(jobs=jobs, cache=ResultCache(directory))

    return make


def bench_jobs(default: int = 2) -> int:
    """Worker count for orchestrated benchmarks (``$BENCH_JOBS``)."""
    return int(os.environ.get("BENCH_JOBS", default))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
