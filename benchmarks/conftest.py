"""Shared benchmark scales.

Every benchmark regenerates one paper table/figure at a laptop scale
(pedantic single-round timing: these are experiment harnesses, not
micro-benchmarks).  EXPERIMENTS.md documents the paper-scale knobs.
"""

import pytest

from repro.experiments.common import ExperimentScale


@pytest.fixture(scope="session")
def bench_scale():
    """Characterization-side scale: all 15 modules, 2 banks."""
    return ExperimentScale(rows_per_bank=1024, banks=(1, 4), seed=0)


@pytest.fixture(scope="session")
def feature_scale():
    """Feature-analysis scale (bit semantics need the 2K-row bank)."""
    return ExperimentScale(rows_per_bank=2048, banks=(1, 4), seed=0)


@pytest.fixture(scope="session")
def perf_scale():
    """Performance-side scale: reduced Fig 12 grid."""
    return ExperimentScale(
        rows_per_bank=1024,
        banks=(1, 4),
        n_mixes=1,
        requests_per_core=2500,
        hc_first_values=(4096, 256, 64),
        svard_profiles=("S0",),
        seed=0,
    )


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
