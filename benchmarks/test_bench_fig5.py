"""Bench E-fig5: regenerate Fig 5 (HC_first distribution)."""

from benchmarks.conftest import run_once
from repro.experiments import fig5_hcfirst_distribution


def test_bench_fig5(benchmark, bench_scale):
    result = run_once(benchmark, fig5_hcfirst_distribution.run, bench_scale)
    print()
    print(result.render())
    # The measured minimum never undercuts Table 5's published minimum.
    for label, minimum in result.minima.items():
        assert minimum >= result.paper_minima[label]
