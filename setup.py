"""Legacy setup shim.

The sandboxed environment has an older setuptools without the wheel
package, so editable installs need the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
