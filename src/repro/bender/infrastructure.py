"""The assembled testing platform (DRAM Bender analogue).

:class:`TestPlatform` plays the role of the FPGA board + host machine:
it owns a device under test (with the module's fault model attached),
a temperature controller, and implements the measurement primitives of
the paper's Algorithm 1 -- ``measure_BER`` and double-sided hammering
-- plus the single-sided and RowClone probes the reverse-engineering
methodology needs.

Interference elimination (Section 4.1) is the default configuration:
periodic refresh is disabled, test programs are bounded to the refresh
window, and the device has no ECC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bender.programs import rowclone_program
from repro.bender.temperature import TemperatureController
from repro.dram.cells import count_mismatched_bits
from repro.dram.device import DramDevice
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import RowScrambler
from repro.faults.datapatterns import DataPattern, bitwise_inverse
from repro.faults.disturbance import (
    AFFINITY_MATRIX,
    T_AGG_ON_MIN_NS,
    DisturbanceModel,
    rowpress_multiplier,
)
from repro.faults.modules import ModuleSpec

#: ``popcount(victim_fill ^ aggressor_fill)`` per Table 2 pattern: the
#: per-byte mismatch count a physical-edge victim reads back after its
#: content is overwritten with the aggressor fill (the edge reflection
#: makes the victim one of its own "aggressors").
_PATTERN_XOR_BITS = np.array(
    [
        bin(pattern.victim_fill ^ pattern.aggressor_fill).count("1")
        for pattern in DataPattern
    ],
    dtype=np.int64,
)


class RefreshWindowExceeded(RuntimeError):
    """A test program ran longer than the refresh window allows.

    The paper strictly bounds test programs within ``tREFW`` so that
    retention failures cannot be mistaken for read disturbance.
    """


@dataclass
class BerMeasurement:
    """Result of one ``measure_BER`` invocation."""

    victim_row: int
    pattern: DataPattern
    hammer_count: int
    t_agg_on_ns: float
    bitflips: int
    row_bits: int

    @property
    def ber(self) -> float:
        return self.bitflips / self.row_bits


class TestPlatform:
    """Executes characterization test programs against one module."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        spec: ModuleSpec,
        *,
        rows_per_bank: Optional[int] = None,
        seed: int = 0,
        temperature_c: float = 80.0,
        enforce_refresh_window: bool = False,
        regulate_temperature: bool = False,
    ) -> None:
        self.spec = spec
        rows = rows_per_bank or spec.rows_per_bank
        params = spec.variation_params(rows)
        self.geometry = DramGeometry(
            rows_per_bank=rows,
            subarray_rows=params.subarray_rows,
            columns_per_row=1024,
        )
        self.model = DisturbanceModel(
            spec,
            rows_per_bank=rows,
            row_bits=self.geometry.row_bytes * 8,
            seed=seed,
            temperature_c=temperature_c,
        )
        self.device = DramDevice(
            geometry=self.geometry,
            timing=spec.timing,
            scrambler=RowScrambler(rows_per_bank=rows, scheme=spec.scrambling),
            observer=self.model,
            refresh_enabled=False,
            seed=seed,
        )
        self.enforce_refresh_window = enforce_refresh_window
        self.temperature = TemperatureController(setpoint_c=temperature_c, seed=seed)
        if regulate_temperature:
            self.temperature.settle()
        else:
            self.temperature.plant.temperature_c = temperature_c

    # ------------------------------------------------------------------
    # Algorithm 1 primitives
    # ------------------------------------------------------------------

    def aggressor_rows_for(self, victim_row: int) -> Tuple[int, int]:
        """Logical addresses of the victim's physical neighbours.

        This is the reverse-engineered mapping step of Section 4.2: a
        double-sided hammer must target the rows that are *physically*
        adjacent, which scrambling hides from the interface addresses.
        """
        return self.device.scrambler.physical_neighbors(victim_row)

    def initialize_victim(self, bank: int, victim_row: int, pattern: DataPattern) -> None:
        """Write victim and aggressors with opposite fills (Algorithm 1)."""
        below, above = self.aggressor_rows_for(victim_row)
        self.device.write_row(bank, victim_row, pattern.victim_fill)
        for aggressor in {below, above}:
            self.device.write_row(bank, aggressor, pattern.aggressor_fill)
        physical = self.device.scrambler.to_physical(victim_row)
        self.model.set_pattern_hint(bank, physical, pattern)

    def hammer_doublesided(
        self,
        bank: int,
        victim_row: int,
        hammer_count: int,
        t_agg_on_ns: float = 36.0,
    ) -> None:
        """Alternately activate the two aggressors ``hammer_count`` times."""
        below, above = self.aggressor_rows_for(victim_row)
        start = self.device.clock_ns
        self.device.hammer(bank, [below, above], hammer_count, t_agg_on_ns)
        self._check_refresh_window(self.device.clock_ns - start)

    def measure_ber(
        self,
        bank: int,
        victim_row: int,
        pattern: DataPattern,
        hammer_count: int,
        t_agg_on_ns: float = 36.0,
    ) -> BerMeasurement:
        """The paper's ``measure_BER``: initialize, hammer, compare."""
        self.initialize_victim(bank, victim_row, pattern)
        expected = np.full(
            self.geometry.row_bytes, pattern.victim_fill, dtype=np.uint8
        )
        self.hammer_doublesided(bank, victim_row, hammer_count, t_agg_on_ns)
        observed = self.device.read_row(bank, victim_row)
        bitflips = count_mismatched_bits(observed, expected)
        return BerMeasurement(
            victim_row=victim_row,
            pattern=pattern,
            hammer_count=hammer_count,
            t_agg_on_ns=t_agg_on_ns,
            bitflips=bitflips,
            row_bits=self.geometry.row_bytes * 8,
        )

    def measure_ber_bank(
        self,
        bank: int,
        rows: Sequence[int],
        patterns,
        hammer_count: int,
        t_agg_on_ns: float = 36.0,
    ) -> np.ndarray:
        """Batched ``measure_BER``: per-row bitflip counts, vectorized.

        Bit-identical to calling :meth:`measure_ber` once per row (the
        loop-reference oracle in
        :mod:`repro.characterization.reference` asserts this), but the
        whole bank is priced through the fault model's array kernels in
        one pass instead of replaying per-row command sequences.

        ``patterns`` is either one :class:`DataPattern` for every row
        or a per-row array of indices into ``list(DataPattern)``.

        Device bookkeeping (test clock, activation counts) advances by
        the same totals as the per-row loop.  Each measured victim and
        its aggressors are left freshly initialized (no accumulated
        exposure or flips); unlike the loop, no residual disturbance is
        left on bystander rows two rows away -- residue that each
        measurement's own initialization erases before it can ever be
        observed, which is why the measured values agree bit for bit.
        """
        rows = np.asarray(rows, dtype=np.int64)
        n = rows.size
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        pattern_list = list(DataPattern)
        if isinstance(patterns, DataPattern):
            pattern_index = np.full(
                n, pattern_list.index(patterns), dtype=np.int64
            )
        else:
            pattern_index = np.asarray(patterns, dtype=np.int64)
            if pattern_index.shape != rows.shape:
                raise ValueError("need one pattern index per row")

        device = self.device
        geometry = self.geometry
        timing = device.timing
        last = geometry.rows_per_bank - 1
        sa = geometry.subarray_rows
        physical = device.scrambler.to_physical_array(rows)

        # Exposure of each victim from its own double-sided hammer: one
        # in-range, in-subarray aggressor per side.  Physical-edge rows
        # are their own reflected aggressor (restored every iteration),
        # so they accumulate nothing.
        edge = (physical == 0) | (physical == last)
        side_below = ~edge & (physical % sa != 0)
        side_above = ~edge & (physical % sa != sa - 1)
        t_on = max(t_agg_on_ns, timing.tRAS)
        m = rowpress_multiplier(
            max(t_on, T_AGG_ON_MIN_NS), self.spec.rowpress_exponent
        )
        per_closure = 0.5 * m * 1.0 * hammer_count
        exposure = per_closure * (
            side_below.astype(np.float64) + side_above.astype(np.float64)
        )

        field_ = self.model.field(bank)
        affinity = AFFINITY_MATRIX[pattern_index, field_.wcdp_index[physical]]
        h_eq = exposure * affinity
        targets = self.model.flip_targets(
            h_eq=h_eq,
            hcf=field_.hc_first[physical],
            ber_sat=field_.ber_sat[physical],
            affinity=affinity,
        )
        # Edge victims read back the aggressor fill their initialization
        # left behind, not disturbance flips.
        bitflips = np.where(
            edge, geometry.row_bytes * _PATTERN_XOR_BITS[pattern_index], targets
        )

        # State/bookkeeping parity with the per-row loop.
        state = self.model.bank_state(bank)
        touched = np.concatenate(
            [physical, np.maximum(physical - 1, 0), np.minimum(physical + 1, last)]
        )
        state.exposure[touched] = 0.0
        state.n_flipped[touched] = 0
        self.model.set_pattern_hints(bank, physical, pattern_index)
        hammer_ns = hammer_count * 2 * (t_on + timing.tRP)
        self._check_refresh_window(hammer_ns)
        row_ns = (
            timing.tRCD
            + geometry.columns_per_row * timing.tCCD_L
            + timing.tRP
        )
        device.clock_ns += n * (4 * row_ns + hammer_ns)
        device.bank(bank).activation_count += n * 2 * hammer_count
        return bitflips

    # ------------------------------------------------------------------
    # Reverse-engineering probes
    # ------------------------------------------------------------------

    def single_sided_disturb_footprint(
        self,
        bank: int,
        aggressor_row: int,
        hammer_count: int,
        radius: int = 3,
    ) -> List[int]:
        """Rows (logical) that flip when single-sided hammering one row.

        The subarray reverse engineering (Key Insight 1) counts how
        many rows a single-sided hammer disturbs: boundary rows disturb
        fewer neighbours because the subarray isolates one side.
        """
        candidates = [
            row
            for offset in range(-radius, radius + 1)
            if offset != 0
            and self.geometry.valid_row(row := aggressor_row + offset)
        ]
        pattern = DataPattern.ROW_STRIPE
        for row in candidates:
            self.device.write_row(bank, row, pattern.victim_fill)
        self.device.write_row(bank, aggressor_row, pattern.aggressor_fill)
        self.device.hammer(bank, [aggressor_row], hammer_count)
        expected = np.full(
            self.geometry.row_bytes, pattern.victim_fill, dtype=np.uint8
        )
        disturbed = []
        for row in candidates:
            observed = self.device.read_row(bank, row)
            if count_mismatched_bits(observed, expected) > 0:
                disturbed.append(row)
        return disturbed

    def single_sided_disturbs(
        self,
        bank: int,
        aggressor_row: int,
        victim_row: int,
        hammer_count: int,
    ) -> bool:
        """Does single-sided hammering of one row flip bits in another?

        Both addresses are logical; callers probing *physical*
        adjacency (the subarray reverse engineering) translate through
        the reverse-engineered row mapping first.
        """
        pattern = DataPattern.ROW_STRIPE
        self.device.write_row(bank, victim_row, pattern.victim_fill)
        self.device.write_row(bank, aggressor_row, pattern.aggressor_fill)
        self.device.hammer(bank, [aggressor_row], hammer_count)
        expected = np.full(
            self.geometry.row_bytes, pattern.victim_fill, dtype=np.uint8
        )
        observed = self.device.read_row(bank, victim_row)
        return count_mismatched_bits(observed, expected) > 0

    def try_rowclone(self, bank: int, src_row: int, dst_row: int) -> bool:
        """Attempt an intra-subarray RowClone; True if data was copied.

        A successful copy proves the two rows share a subarray (Key
        Insight 2); a failed copy proves nothing.
        """
        marker = 0xC3
        self.device.write_row(bank, src_row, marker)
        self.device.write_row(bank, dst_row, bitwise_inverse(marker))
        self.device.execute(rowclone_program(bank, src_row, dst_row), strict=False)
        observed = self.device.read_row(bank, dst_row)
        return bool(np.all(observed == marker))

    # ------------------------------------------------------------------

    def elapsed_test_ns(self) -> float:
        return self.device.clock_ns

    def _check_refresh_window(self, duration_ns: float) -> None:
        if not self.enforce_refresh_window:
            return
        window = self.device.timing.derate_for_temperature(
            self.temperature.setpoint_c
        ).tREFW
        if duration_ns > window:
            raise RefreshWindowExceeded(
                f"test program ran {duration_ns / 1e6:.1f} ms, beyond the "
                f"{window / 1e6:.1f} ms refresh window; split the test"
            )
