"""DRAM Bender-style testing platform simulator.

The paper characterizes chips with an FPGA board running DRAM Bender,
a host machine, heater pads, and a PID temperature controller.  This
package is the software stand-in: :class:`TestPlatform` executes the
paper's test programs against the behavioural device model with the
fault model attached, and :class:`TemperatureController` reproduces
the +/-0.5 C thermal regulation the paper reports.
"""

from repro.bender.infrastructure import TestPlatform
from repro.bender.temperature import TemperatureController, ThermalPlant
from repro.bender.programs import (
    hammer_doublesided_program,
    row_initialization_program,
    rowclone_program,
)

__all__ = [
    "TestPlatform",
    "TemperatureController",
    "ThermalPlant",
    "hammer_doublesided_program",
    "row_initialization_program",
    "rowclone_program",
]
