"""Test-program builders: explicit DDR4 command sequences.

These builders produce the literal command streams of the paper's
Algorithm 1 so they can be inspected, unit-tested, and executed
command-by-command.  The :class:`repro.bender.TestPlatform` uses the
device's bulk fast paths for large hammer counts, which are verified
equivalent to these streams in the test suite.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dram.commands import Command, act, pre, wait
from repro.dram.timing import TimingParameters


def hammer_doublesided_program(
    bank: int,
    aggressor_rows: Sequence[int],
    hammer_count: int,
    t_agg_on_ns: float,
    timing: TimingParameters,
) -> List[Command]:
    """The paper's ``hammer_doublesided`` loop as a command list.

    One iteration issues, for each aggressor:
    ``ACT(row); WAIT(tAggOn); PRE; WAIT(tRP)`` -- alternating between
    the two aggressors, exactly as in Algorithm 1.
    """
    if hammer_count < 0:
        raise ValueError("hammer count must be non-negative")
    hold = max(0.0, t_agg_on_ns - timing.tRAS)
    program: List[Command] = []
    for _ in range(hammer_count):
        for row in aggressor_rows:
            program.append(act(bank, row))
            if hold > 0:
                program.append(wait(hold))
            program.append(pre(bank))
    return program


def row_initialization_program(
    bank: int, row: int, timing: TimingParameters
) -> List[Command]:
    """ACT + PRE wrapper around a full-row write.

    The column writes themselves go through the platform's bulk write
    (writing 1024 columns as commands adds nothing to the model); this
    program documents the activation cost around them.
    """
    return [act(bank, row), wait(timing.tRCD), pre(bank)]


def rowclone_program(bank: int, src_row: int, dst_row: int) -> List[Command]:
    """ACT(src) -> PRE -> ACT(dst) with deliberately violated timing.

    Executing this with ``strict=False`` triggers the device's
    intra-subarray RowClone behaviour (ComputeDRAM-style).
    """
    return [act(bank, src_row), pre(bank), act(bank, dst_row), pre(bank)]
