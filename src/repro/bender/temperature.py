"""Thermal regulation: heater pads plus a PID controller.

The paper presses heater pads against the chips and regulates their
temperature with a MaxWell FT200 PID controller to within +/-0.5 C.
We model a first-order thermal plant (heat capacity + loss to ambient)
driven by a clamped PID loop with sensor noise, and verify the same
stability property in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


@dataclass
class ThermalPlant:
    """First-order lumped thermal model of DIMM + heater pads.

    ``dT/dt = (heater_watts - loss_w_per_c * (T - ambient)) / capacity``
    """

    ambient_c: float = 25.0
    capacity_j_per_c: float = 40.0
    loss_w_per_c: float = 0.8
    temperature_c: float = 25.0

    def step(self, heater_watts: float, dt_s: float) -> float:
        """Advance the plant by ``dt_s`` seconds; returns temperature."""
        if dt_s <= 0:
            raise ValueError("time step must be positive")
        if heater_watts < 0:
            raise ValueError("heater power cannot be negative")
        loss = self.loss_w_per_c * (self.temperature_c - self.ambient_c)
        self.temperature_c += (heater_watts - loss) / self.capacity_j_per_c * dt_s
        return self.temperature_c

    def steady_state_power(self, target_c: float) -> float:
        """Heater power that holds ``target_c`` indefinitely."""
        return max(0.0, self.loss_w_per_c * (target_c - self.ambient_c))


@dataclass
class TemperatureController:
    """Clamped PID loop driving the heater pads (FT200 analogue)."""

    setpoint_c: float = 80.0
    kp: float = 18.0
    ki: float = 0.9
    kd: float = 4.0
    max_power_w: float = 120.0
    sensor_noise_c: float = 0.05
    seed: int = 0

    plant: ThermalPlant = field(default_factory=ThermalPlant)

    def __post_init__(self) -> None:
        self._integral = 0.0
        self._previous_error = 0.0
        self._rng = np.random.default_rng(self.seed)
        self.history: List[float] = []

    def measure(self) -> float:
        """Thermocouple reading: plant temperature plus sensor noise."""
        return self.plant.temperature_c + float(
            self._rng.normal(0.0, self.sensor_noise_c)
        )

    def step(self, dt_s: float = 1.0) -> float:
        """One control period: measure, compute PID output, heat."""
        measured = self.measure()
        error = self.setpoint_c - measured
        self._integral += error * dt_s
        # Anti-windup: bound the integral to what the heater can act on.
        bound = self.max_power_w / max(self.ki, 1e-9)
        self._integral = float(np.clip(self._integral, -bound, bound))
        derivative = (error - self._previous_error) / dt_s
        self._previous_error = error
        power = self.kp * error + self.ki * self._integral + self.kd * derivative
        power = float(np.clip(power, 0.0, self.max_power_w))
        temperature = self.plant.step(power, dt_s)
        self.history.append(temperature)
        return temperature

    def run(self, seconds: float, dt_s: float = 1.0) -> np.ndarray:
        """Run the loop for a duration; returns the temperature trace."""
        steps = max(1, int(round(seconds / dt_s)))
        return np.array([self.step(dt_s) for _ in range(steps)])

    def settle(self, tolerance_c: float = 0.5, max_seconds: float = 3600.0) -> float:
        """Run until the plant holds the setpoint within ``tolerance_c``.

        Returns the settling time in seconds.  Raises ``RuntimeError``
        if the loop cannot settle within ``max_seconds`` (a sign of a
        misconfigured plant or gains).
        """
        window: List[float] = []
        elapsed = 0.0
        while elapsed < max_seconds:
            temperature = self.step(1.0)
            elapsed += 1.0
            window.append(temperature)
            window = window[-60:]
            if len(window) == 60 and all(
                abs(t - self.setpoint_c) <= tolerance_c for t in window
            ):
                return elapsed
        raise RuntimeError(
            f"temperature failed to settle within {max_seconds} s "
            f"(last reading {self.plant.temperature_c:.2f} C)"
        )

    def stability_band_c(self, last_n: int = 300) -> float:
        """Half-width of the recent temperature excursion band."""
        if not self.history:
            return float("inf")
        recent = np.asarray(self.history[-last_n:])
        return float(np.max(np.abs(recent - self.setpoint_c)))
