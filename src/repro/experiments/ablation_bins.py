"""Ablation: how many vulnerability bins does Svärd need?

Section 6.4 fixes the metadata at 4 bits (16 bins) per row because
"the number of bins in each distribution is smaller than 16".  This
ablation sweeps the bin count from 1 (equivalent to No Svärd: every
row gets the worst-case threshold) to 16 and measures the weighted
speedup recovered per bin, justifying the 4-bit choice: the benefit
saturates well before 16 bins because thresholds are geometric and
defense overheads scale with 1/threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.profile import VulnerabilityProfile
from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import SvardThresholds
from repro.experiments.common import ExperimentScale, format_table
from repro.faults.modules import module_by_label
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.sim.metrics import compute_metrics
from repro.workloads.mixes import (
    build_alone_trace,
    build_traces,
    generate_mixes,
    single_core_config,
)

BIN_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass
class AblationBinsResult:
    #: n_bins -> weighted speedup normalized to the no-defense baseline.
    speedup_by_bins: Dict[int, float]
    defense: str
    hc_first: int
    profile: str

    def render(self) -> str:
        rows = [
            [str(bins), f"{self.speedup_by_bins[bins]:.3f}"]
            for bins in sorted(self.speedup_by_bins)
        ]
        return (
            f"Ablation: Svärd bin count ({self.defense}, "
            f"HC_first={self.hc_first}, profile {self.profile})\n\n"
            + format_table(["bins", "weighted speedup (norm.)"], rows)
        )

    def saturation_bins(self, tolerance: float = 0.02) -> int:
        """Smallest bin count within ``tolerance`` of the 16-bin result."""
        best = self.speedup_by_bins[max(self.speedup_by_bins)]
        for bins in sorted(self.speedup_by_bins):
            if self.speedup_by_bins[bins] >= best - tolerance:
                return bins
        return max(self.speedup_by_bins)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    defense: str = "PARA",
    hc_first: int = 64,
    profile_label: str = "S0",
    bin_sweep: Sequence[int] = BIN_SWEEP,
    system_config: Optional[SystemConfig] = None,
) -> AblationBinsResult:
    config = system_config or SystemConfig(
        requests_per_core=scale.requests_per_core, defense_epoch_ns=1e6
    )
    mix = generate_mixes(1, cores=config.cores, seed=scale.seed)[0]
    alone_config = single_core_config(config)
    alone = [
        MemorySystem(alone_config, build_alone_trace(mix, core, alone_config))
        .run().cores[0].finish_ns
        for core in range(config.cores)
    ]
    baseline = compute_metrics(
        alone, MemorySystem(config, build_traces(mix, config)).run().finish_times()
    )

    profile = VulnerabilityProfile.from_ground_truth(
        module_by_label(profile_label),
        banks=scale.banks,
        rows_per_bank=scale.rows_per_bank,
        seed=scale.seed,
    ).scaled_to_worst_case(hc_first)

    speedups: Dict[int, float] = {}
    for n_bins in bin_sweep:
        svard = Svard.build(profile, n_bins=n_bins)
        assert svard.verify_security_invariant()
        defense_obj = DEFENSE_CLASSES[defense](
            hc_first,
            thresholds=SvardThresholds(svard),
            rows_per_bank=config.rows_per_bank,
            seed=scale.seed,
        )
        result = MemorySystem(
            config, build_traces(mix, config), defense=defense_obj
        ).run()
        metrics = compute_metrics(alone, result.finish_times()).normalized_to(
            baseline
        )
        speedups[n_bins] = metrics.weighted_speedup
    return AblationBinsResult(
        speedup_by_bins=speedups,
        defense=defense,
        hc_first=hc_first,
        profile=profile_label,
    )
