"""Ablation: how many vulnerability bins does Svärd need?

Section 6.4 fixes the metadata at 4 bits (16 bins) per row because
"the number of bins in each distribution is smaller than 16".  This
ablation sweeps the bin count from 1 (equivalent to No Svärd: every
row gets the worst-case threshold) to 16 and measures the weighted
speedup recovered per bin, justifying the 4-bit choice: the benefit
saturates well before 16 bins because thresholds are geometric and
defense overheads scale with 1/threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import SvardThresholds
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    mix_baseline_task,
    scaled_profile,
)
from repro.orchestration import (
    OrchestrationContext,
    Task,
    TaskGroup,
    make_task,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.sim.metrics import compute_metrics
from repro.workloads.mixes import build_traces, generate_mixes

BIN_SWEEP: Tuple[int, ...] = (1, 2, 4, 8, 16)


@dataclass
class AblationBinsResult:
    #: n_bins -> weighted speedup normalized to the no-defense baseline.
    speedup_by_bins: Dict[int, float]
    defense: str
    hc_first: int
    profile: str

    def render(self) -> str:
        return result_set(self).render_text()

    def saturation_bins(self, tolerance: float = 0.02) -> int:
        """Smallest bin count within ``tolerance`` of the 16-bin result."""
        best = self.speedup_by_bins[max(self.speedup_by_bins)]
        for bins in sorted(self.speedup_by_bins):
            if self.speedup_by_bins[bins] >= best - tolerance:
                return bins
        return max(self.speedup_by_bins)


def result_set(result: AblationBinsResult) -> ResultSet:
    title = (
        f"Ablation: Svärd bin count ({result.defense}, "
        f"HC_first={result.hc_first}, profile {result.profile})"
    )
    data_rows = [
        (int(bins), result.speedup_by_bins[bins])
        for bins in sorted(result.speedup_by_bins)
    ]
    return ResultSet(
        experiment="ablation-bins",
        title=title,
        scalars={
            "defense": result.defense,
            "hc_first": result.hc_first,
            "profile": result.profile,
        },
        tables=(
            ResultTable(
                name="speedup_by_bins",
                headers=("bins", "weighted_speedup"),
                rows=data_rows,
            ),
        ),
        layout=(
            TextBlock(title + "\n\n"),
            TableBlock(
                headers=("bins", "weighted speedup (norm.)"),
                rows=[
                    (str(bins), f"{speedup:.3f}")
                    for bins, speedup in data_rows
                ],
            ),
        ),
        plots=(
            PlotSpec(
                name="speedup",
                kind="line",
                table="speedup_by_bins",
                x="bins",
                y=("weighted_speedup",),
                title=title,
                xlabel="Svärd bins",
                ylabel="weighted speedup (norm.)",
                logx=True,
            ),
        ),
    )


def _bins_task(task: Task) -> list:
    """One defended simulation at a given Svärd bin count."""
    mix, n_bins, defense, hc_first, profile_label, scale, config = task.params
    profile = scaled_profile(profile_label, hc_first, scale)
    svard = Svard.build(profile, n_bins=n_bins)
    assert svard.verify_security_invariant()
    defense_obj = DEFENSE_CLASSES[defense](
        hc_first,
        thresholds=SvardThresholds(svard),
        rows_per_bank=config.rows_per_bank,
        seed=scale.seed,
    )
    result = MemorySystem(
        config, build_traces(mix, config), defense=defense_obj
    ).run()
    return result.finish_times()


@register
class AblationBinsExperiment(Experiment):
    name = "ablation-bins"
    description = "Svärd bin-count ablation (weighted speedup per bin)"
    paper_ref = "Section 6.4"
    quick_overrides = {"requests_per_core": 2500}

    def __init__(
        self,
        defense: str = "PARA",
        hc_first: int = 64,
        profile_label: str = "S0",
        bin_sweep: Sequence[int] = BIN_SWEEP,
        system_config: Optional[SystemConfig] = None,
    ) -> None:
        self.defense = defense
        self.hc_first = hc_first
        self.profile_label = profile_label
        self.bin_sweep = tuple(bin_sweep)
        self.system_config = system_config

    def _config(self, scale: ExperimentScale) -> SystemConfig:
        return self.system_config or scale.system_config(
            requests_per_core=scale.requests_per_core, defense_epoch_ns=1e6
        )

    @staticmethod
    def _mix(scale: ExperimentScale, config: SystemConfig):
        return generate_mixes(1, cores=config.cores, seed=scale.seed)[0]

    def build_tasks(self, scale, orch):
        config = self._config(scale)
        mix = self._mix(scale, config)
        tasks = [
            make_task(
                ("ablation-bins", "baseline", mix.name),
                mix_baseline_task,
                (mix, config),
                base_seed=scale.seed,
            )
        ]
        tasks += [
            make_task(
                (
                    "ablation-bins", "bins", self.defense, self.hc_first,
                    self.profile_label, n_bins,
                ),
                _bins_task,
                (
                    mix, n_bins, self.defense, self.hc_first,
                    self.profile_label, scale, config,
                ),
                base_seed=scale.seed,
            )
            for n_bins in self.bin_sweep
        ]
        return [
            TaskGroup(
                tasks=tuple(tasks),
                fingerprint=("ablation-bins", scale, config),
            )
        ]

    def reduce(self, scale, outputs):
        config = self._config(scale)
        mix = self._mix(scale, config)
        times = outputs[("ablation-bins", "baseline", mix.name)]
        alone = times["alone"]
        baseline = compute_metrics(alone, times["shared"])
        speedups: Dict[int, float] = {}
        for n_bins in self.bin_sweep:
            finish = outputs[
                (
                    "ablation-bins", "bins", self.defense, self.hc_first,
                    self.profile_label, n_bins,
                )
            ]
            metrics = compute_metrics(alone, finish).normalized_to(baseline)
            speedups[n_bins] = metrics.weighted_speedup
        return AblationBinsResult(
            speedup_by_bins=speedups,
            defense=self.defense,
            hc_first=self.hc_first,
            profile=self.profile_label,
        )

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    defense: str = "PARA",
    hc_first: int = 64,
    profile_label: str = "S0",
    bin_sweep: Sequence[int] = BIN_SWEEP,
    system_config: Optional[SystemConfig] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> AblationBinsResult:
    return AblationBinsExperiment(
        defense=defense,
        hc_first=hc_first,
        profile_label=profile_label,
        bin_sweep=bin_sweep,
        system_config=system_config,
    ).run(scale, orchestration)
