"""Table 3: spatial features with F1 > 0.7.

Only four modules (S0, S1, S3, S4) expose features whose F1 exceeds
0.7; the features come from row/subarray address bits (and one
distance bit), never from bank bits, and no module's average strong-
feature F1 exceeds 0.77.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.correlation import FeatureCorrelation, strong_features
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
)
from repro.experiments.fig9_spatial_features import run as run_fig9

#: Paper's Table 3: per-module average F1 of strong features.
PAPER_TABLE3_F1 = {"S0": 0.77, "S1": 0.71, "S3": 0.75, "S4": 0.76}

TITLE = "Table 3: spatial features with F1 > 0.7"


@dataclass
class Table3Result:
    strong: Dict[str, List[FeatureCorrelation]]

    def average_f1(self, label: str) -> float:
        features = self.strong.get(label, [])
        if not features:
            raise KeyError(f"{label} has no strong features")
        return float(np.mean([c.f1 for c in features]))

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Table3Result) -> ResultSet:
    display_rows = []
    summary_rows = []
    feature_rows = []
    for label in sorted(result.strong):
        features = result.strong[label]
        if not features:
            continue
        names = ", ".join(c.feature.short_name for c in features)
        expected = PAPER_TABLE3_F1.get(label)
        average = result.average_f1(label)
        display_rows.append(
            (
                label,
                names,
                f"{average:.2f}",
                f"{expected:.2f}" if expected is not None else "-",
            )
        )
        summary_rows.append((label, average, expected))
        feature_rows.extend(
            (label, c.feature.short_name, float(c.f1)) for c in features
        )
    return ResultSet(
        experiment="table3",
        title=TITLE,
        tables=(
            ResultTable(
                name="strong_features",
                headers=("module", "feature", "f1"),
                rows=feature_rows,
            ),
            ResultTable(
                name="average_f1",
                headers=("module", "average_f1", "paper_average_f1"),
                rows=summary_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=("module", "features", "avg F1", "paper avg F1"),
                rows=display_rows,
            ),
        ),
        plots=(
            PlotSpec(
                name="average_f1",
                kind="bar",
                table="average_f1",
                x="module",
                y=("average_f1", "paper_average_f1"),
                title=TITLE,
                ylabel="average F1 of strong features",
            ),
        ),
    )


def run(scale: ExperimentScale = ExperimentScale()) -> Table3Result:
    fig9 = run_fig9(scale)
    strong = {
        label: strong_features(correlations)
        for label, correlations in fig9.correlations.items()
    }
    return Table3Result(strong=strong)


@register
class Table3Experiment(Experiment):
    name = "table3"
    description = "spatial features with F1 > 0.7"
    paper_ref = "Table 3"

    def build_tasks(self, scale, orch):
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        absorb_characterizations(scale.modules, scale, outputs)
        return run(scale)

    def result_set(self, result):
        return result_set(result)
