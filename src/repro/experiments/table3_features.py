"""Table 3: spatial features with F1 > 0.7.

Only four modules (S0, S1, S3, S4) expose features whose F1 exceeds
0.7; the features come from row/subarray address bits (and one
distance bit), never from bank bits, and no module's average strong-
feature F1 exceeds 0.77.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.analysis.correlation import FeatureCorrelation, strong_features
from repro.experiments.common import ExperimentScale, format_table
from repro.experiments.fig9_spatial_features import run as run_fig9

#: Paper's Table 3: per-module average F1 of strong features.
PAPER_TABLE3_F1 = {"S0": 0.77, "S1": 0.71, "S3": 0.75, "S4": 0.76}


@dataclass
class Table3Result:
    strong: Dict[str, List[FeatureCorrelation]]

    def average_f1(self, label: str) -> float:
        features = self.strong.get(label, [])
        if not features:
            raise KeyError(f"{label} has no strong features")
        return float(np.mean([c.f1 for c in features]))

    def render(self) -> str:
        rows = []
        for label in sorted(self.strong):
            features = self.strong[label]
            if not features:
                continue
            names = ", ".join(c.feature.short_name for c in features)
            expected = PAPER_TABLE3_F1.get(label)
            rows.append(
                [
                    label,
                    names,
                    f"{self.average_f1(label):.2f}",
                    f"{expected:.2f}" if expected else "-",
                ]
            )
        return "Table 3: spatial features with F1 > 0.7\n\n" + format_table(
            ["module", "features", "avg F1", "paper avg F1"], rows
        )


def run(scale: ExperimentScale = ExperimentScale()) -> Table3Result:
    fig9 = run_fig9(scale)
    strong = {
        label: strong_features(correlations)
        for label, correlations in fig9.correlations.items()
    }
    return Table3Result(strong=strong)
