"""Generic experiment CLI, driven by the Experiment registry.

Usage::

    python -m repro.experiments.runner list              # what exists
    python -m repro.experiments.runner run               # everything
    python -m repro.experiments.runner run fig5 fig12    # a subset
    python -m repro.experiments.runner run fig12 --jobs 4 --progress
    python -m repro.experiments.runner run fig12 --format json --out results/
    python -m repro.experiments.runner run --format mpl --out figures/

    python -m repro.experiments.runner recipe list       # checked-in sweeps
    python -m repro.experiments.runner recipe run fig12-paper-grid \\
        --backend queue --out results/
    python -m repro.experiments.runner worker            # drain the queue

    python -m repro.experiments.runner recipe run report-smoke \\
        --out results/ --report                          # + report.html
    python -m repro.experiments.runner report results/ \\
        --out report.html                                # stitch a tree

(The ``run`` verb is optional: ``runner fig12 --jobs 4`` still works.
``--help-all`` dumps every subcommand's flags in one go; the same dump
is checked into EXPERIMENTS.md and kept in sync by the test suite.)

Experiments self-register with :func:`repro.experiments.api.register`;
the runner holds no per-figure code.  Each experiment may declare
``quick_overrides`` -- reduced-grid scale defaults that keep the full
suite interactive; explicit scale flags and ``--full`` win over them.

Execution is pluggable (``--backend serial|process|queue``):
``process`` fans tasks out over ``--jobs`` local worker processes;
``queue`` publishes them into a file-based job queue
(``--queue-dir``, default ``<cache-dir>/queue``) that any number of
``runner worker`` processes -- including on other hosts sharing the
filesystem -- drain cooperatively.  Completed tasks persist in the
on-disk cache (``--cache-dir``, default ``.repro_cache/``) so re-runs
and interrupted sweeps resume instantly; ``--no-cache`` forces fresh
computation.  See ORCHESTRATION.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.experiments.api import (
    ExperimentError,
    all_experiments,
    display_table,
)
from repro.dram.timing import device_for
from repro.experiments.common import ExperimentScale
from repro.experiments.recipes import (
    Recipe,
    RecipeError,
    all_recipes,
    get_recipe,
)
from repro.experiments.render import (
    RendererUnavailable,
    get_renderer,
    renderer_names,
)
from repro.experiments.sweep import (
    recipe_out_dir as _recipe_out_dir,
    stamp_provenance as _stamp_provenance,
    stats_snapshot as _stats_snapshot,
    write_recipe_report as _write_recipe_report,
)
from repro.orchestration import (
    BACKEND_NAMES,
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_STALE_AFTER,
    BackendError,
    OrchestrationContext,
    QueueWorker,
    ResultCache,
    create_backend,
    default_cache_dir,
    default_queue_dir,
    profile_cache,
    queue_status,
    render_profile,
    render_status,
)
from repro.orchestration.backends import DEFAULT_LEASE_TIMEOUT
from repro.orchestration.jobqueue import JobQueue
from repro.orchestration.worker import stderr_log

#: CLI flag dests that map 1:1 onto ``ExperimentScale`` field names.
_SCALE_FLAGS = (
    "seed",
    "n_mixes",
    "requests_per_core",
    "rows_per_bank",
    "banks",
    "modules",
    "t_agg_on_sweep_ns",
    "paper_rows",
    "device",
)


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the process backend (default: 1, serial)",
    )
    parser.add_argument(
        "--backend", default=None, choices=BACKEND_NAMES,
        help="execution backend (default: serial, or process when "
             "--jobs > 1); `queue` drains through a shared job-queue "
             "directory that `runner worker` processes also serve",
    )
    parser.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="job-queue directory for --backend queue "
             "(default: <cache-dir>/queue)",
    )
    parser.add_argument(
        "--queue-wait", action="store_true",
        help="with --backend queue: do not execute tasks in this "
             "process; wait for workers to drain the queue",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="K",
        help="with --backend queue or process: batch K tasks per "
             "queue envelope / pool submission (default: auto-sized "
             "from the grid; small sweeps stay unchunked). Results "
             "are bit-identical at any K",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=None, metavar="S",
        help="with --backend queue: reclaim leases of presumed-dead "
             "workers after S seconds (default: 600; a live heartbeat "
             "naming the lease always defers reclaim)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk result cache location (default: $REPRO_CACHE_DIR "
             "or .repro_cache/)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="compute everything fresh; do not read or write the cache",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-task progress to stderr",
    )


def _add_render_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", dest="format_name", default="text", metavar="FMT",
        choices=renderer_names(),
        help=f"output renderer, one of {renderer_names()} (default: text)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write rendered artifacts into DIR instead of stdout "
             "(--format mpl defaults to figures/)",
    )


def _validate_execution_flags(parser, args) -> None:
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.jobs > 1 and args.backend in ("serial", "queue"):
        # Accepting the flag and running single-threaded would look
        # like 8-way parallelism that silently never happened.
        parser.error(
            f"--jobs has no effect on the {args.backend} backend; "
            "drop it (queue scaling comes from `runner worker` count)"
        )
    if args.no_cache and args.cache_dir is not None:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    if args.no_cache and args.backend == "queue":
        parser.error("--backend queue publishes results through the "
                     "cache; drop --no-cache")
    if args.queue_dir is not None and args.backend != "queue":
        parser.error("--queue-dir requires --backend queue")
    if args.queue_wait and args.backend != "queue":
        parser.error("--queue-wait requires --backend queue")
    if args.lease_timeout is not None and args.backend != "queue":
        parser.error("--lease-timeout requires --backend queue")
    if args.lease_timeout is not None and args.lease_timeout <= 0:
        parser.error("--lease-timeout must be positive")
    if args.chunk_size is not None:
        if args.backend not in ("queue", "process"):
            parser.error("--chunk-size requires --backend queue or "
                         "--backend process")
        if args.chunk_size < 1:
            parser.error("--chunk-size must be at least 1")


def _run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner run",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiments to run (default: every registered experiment; "
             "see the `list` subcommand)",
    )
    _add_execution_flags(parser)
    _add_render_flags(parser)
    parser.add_argument(
        "--full", action="store_true",
        help="ignore per-experiment quick-grid presets; run the full "
             "default scale",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override ExperimentScale.seed",
    )
    parser.add_argument(
        "--n-mixes", type=int, default=None, metavar="N",
        help="override ExperimentScale.n_mixes (paper scale: 120)",
    )
    parser.add_argument(
        "--requests-per-core", type=int, default=None, metavar="N",
        help="override ExperimentScale.requests_per_core",
    )
    parser.add_argument(
        "--rows-per-bank", type=int, default=None, metavar="N",
        help="override ExperimentScale.rows_per_bank",
    )
    parser.add_argument(
        "--banks", default=None, metavar="B0,B1,...",
        help="override ExperimentScale.banks (comma-separated indices)",
    )
    parser.add_argument(
        "--modules", default=None, metavar="M0,M1,...",
        help="override ExperimentScale.modules (comma-separated labels)",
    )
    parser.add_argument(
        "--t-agg-on", dest="t_agg_on_sweep_ns", default=None,
        metavar="NS0,NS1,...",
        help="override ExperimentScale.t_agg_on_sweep_ns, the RowPress "
             "tAggOn sweep points in ns (fig7; default 36,500,2000)",
    )
    parser.add_argument(
        "--paper-rows", action="store_true", default=None,
        help="characterize each module at its real ModuleSpec row count "
             "instead of the uniform --rows-per-bank",
    )
    parser.add_argument(
        "--device", default=None, metavar="SPEC",
        help="override ExperimentScale.device: run the performance "
             "experiments on a device-generation preset (DDR4-3200, "
             "LPDDR4-3200, DDR5-4800, ...; default: the paper's "
             "DDR4-3200)",
    )
    return parser


def _parse_run_args(argv) -> argparse.Namespace:
    parser = _run_parser()
    args = parser.parse_args(argv)
    _validate_execution_flags(parser, args)
    if args.banks is not None:
        try:
            args.banks = tuple(int(part) for part in args.banks.split(","))
        except ValueError:
            parser.error(
                f"--banks must be comma-separated integers, got {args.banks!r}"
            )
        if len(set(args.banks)) != len(args.banks):
            parser.error(f"--banks contains duplicates: {args.banks}")
    if args.modules is not None:
        args.modules = tuple(args.modules.split(","))
        if len(set(args.modules)) != len(args.modules):
            parser.error(f"--modules contains duplicates: {args.modules}")
    if args.t_agg_on_sweep_ns is not None:
        try:
            args.t_agg_on_sweep_ns = tuple(
                float(part) for part in args.t_agg_on_sweep_ns.split(",")
            )
        except ValueError:
            parser.error(
                "--t-agg-on must be comma-separated numbers, got "
                f"{args.t_agg_on_sweep_ns!r}"
            )
    if args.device is not None:
        try:
            device_for(args.device)
        except ValueError as error:
            parser.error(str(error))
    return args


def _progress_line(done: int, total: int, key) -> None:
    label = "/".join(str(part) for part in key)
    end = "\n" if done == total else "\r"
    print(f"  [{done}/{total}] {label:<60.60}", end=end, file=sys.stderr,
          flush=True)


def build_context(args: argparse.Namespace) -> OrchestrationContext:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    backend = None
    if args.backend is not None:
        queue_dir = args.queue_dir
        if queue_dir is None and args.backend == "queue":
            queue_dir = default_queue_dir(cache.directory)
        backend = create_backend(
            args.backend,
            jobs=args.jobs,
            queue_dir=queue_dir,
            participate=not args.queue_wait,
            lease_timeout=(
                args.lease_timeout
                if args.lease_timeout is not None
                else DEFAULT_LEASE_TIMEOUT
            ),
            chunk_size=args.chunk_size,
        )
    return OrchestrationContext(
        jobs=args.jobs,
        cache=cache,
        progress=_progress_line if args.progress else None,
        backend=backend,
    )


def _print_orchestration_stats(orch: OrchestrationContext) -> None:
    if not orch.stats.submitted:
        return
    where = (
        f"cache at {orch.cache.directory}"
        if orch.cache is not None
        else "cache disabled"
    )
    print(
        f"[orchestration] {orch.stats.submitted} tasks: "
        f"{orch.stats.hits} cache hits, "
        f"{orch.stats.executed} executed "
        f"(backend: {orch.backend.describe()}, {where})",
        file=sys.stderr,
    )


def _emit_result_set(
    result_set, renderer, format_name: str, out_dir: Optional[Path],
    json_documents: List[dict], html_sections: List,
) -> Optional[int]:
    """Render one ResultSet to stdout or ``out_dir``.

    Shared by ``run`` and ``recipe run``; returns an exit code for a
    fatal renderer error, ``None`` otherwise.  In json- and
    html-to-stdout modes the ResultSets are collected and flushed as
    **one** document after the loop (14 concatenated HTML pages are
    not a loadable page).
    """
    if out_dir is not None:
        try:
            paths = renderer.write(result_set, out_dir)
        except RendererUnavailable as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        for path in paths:
            print(f"wrote {path}")
        if not paths:
            print(
                f"{result_set.experiment}: nothing to write for format "
                f"{format_name!r}"
            )
    elif format_name == "text":
        print("=" * 72)
        print(result_set.render_text())
        print()
    elif format_name == "json":
        json_documents.append(result_set.to_json_dict())
    elif format_name == "html":
        html_sections.append(result_set)
    else:
        print(renderer.render(result_set))
    return None


def _flush_html_stdout(html_sections: List) -> None:
    # One self-contained page stitching every requested experiment,
    # mirroring _flush_json_stdout's single-document guarantee.
    if not html_sections:
        return
    from repro.experiments.report import build_report

    if len(html_sections) == 1:
        section = html_sections[0]
        print(build_report(
            [section],
            title=section.title,
            subtitle=f"experiment: {section.experiment}",
        ), end="")
    else:
        print(build_report(html_sections), end="")


def _flush_json_stdout(json_documents: List[dict], requested: int) -> None:
    # In json-to-stdout mode, stdout is always one parseable document.
    # The shape follows the *request*: a bare object when a single
    # result was requested and succeeded, an array otherwise --
    # including the empty array when failures left no results.
    document = (
        json_documents[0]
        if requested == 1 and json_documents
        else json_documents
    )
    print(json.dumps(document, indent=2, sort_keys=True))


def _scale_for(experiment, base: ExperimentScale, explicit: frozenset,
               full: bool) -> ExperimentScale:
    """The base scale plus the experiment's quick-grid presets.

    Explicit CLI overrides (e.g. ``--n-mixes 120`` for the paper grid)
    and ``--full`` win over the presets.
    """
    if full:
        return base
    trimmed = {
        field: value
        for field, value in experiment.quick_overrides.items()
        if field not in explicit
    }
    return replace(base, **trimmed)


def _list_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner list",
        description="List every registered experiment.",
    )
    parser.add_argument(
        "--format", dest="format_name", default="text",
        choices=("text", "json"),
        help="listing format: a fixed-width table or machine-readable "
             "JSON (default: text)",
    )
    return parser


def _cmd_list(argv) -> int:
    args = _list_parser().parse_args(argv)
    experiments = all_experiments()
    if args.format_name == "json":
        print(json.dumps(
            {
                name: {
                    "paper_ref": experiment.paper_ref,
                    "description": experiment.description,
                    "quick_overrides": {
                        key: list(value) if isinstance(value, tuple) else value
                        for key, value in experiment.quick_overrides.items()
                    },
                }
                for name, experiment in experiments.items()
            },
            indent=2,
        ))
        return 0
    rows = [
        (
            name,
            experiment.paper_ref,
            experiment.description,
            ", ".join(sorted(experiment.quick_overrides)) or "-",
        )
        for name, experiment in experiments.items()
    ]
    print(display_table(
        ("experiment", "paper", "description", "quick-grid fields"), rows
    ))
    return 0


def _cmd_run(argv) -> int:
    args = _parse_run_args(argv)
    experiments = all_experiments()
    names = args.names or list(experiments)
    unknown = [name for name in names if name not in experiments]
    if unknown:
        print(
            f"unknown experiment {unknown[0]!r}; known: {list(experiments)}",
            file=sys.stderr,
        )
        return 1

    overrides = {
        field: getattr(args, field)
        for field in _SCALE_FLAGS
        if getattr(args, field) is not None
    }
    try:
        base_scale = replace(ExperimentScale(), **overrides)
    except (KeyError, ValueError) as error:
        # ExperimentScale validates module labels and minimum sizes.
        print(f"invalid scale: {error}", file=sys.stderr)
        return 1
    explicit = frozenset(overrides)

    renderer = get_renderer(args.format_name)
    try:
        # Fail on a missing backend before any experiment executes.
        renderer.check_available()
    except RendererUnavailable as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    out_dir: Optional[Path] = Path(args.out) if args.out else None
    if out_dir is None and args.format_name == "mpl":
        out_dir = Path("figures")

    json_documents: List[dict] = []
    html_sections: List = []
    failed: List[str] = []
    json_stdout = args.format_name == "json" and out_dir is None

    with build_context(args) as orch:
        for name in names:
            experiment = experiments[name]
            scale = _scale_for(experiment, base_scale, explicit, args.full)
            before = _stats_snapshot(orch)
            try:
                result_set = experiment.run_result_set(scale, orch)
            except BackendError as error:
                # Backend failures (misconfiguration, a task that died
                # on a worker) abort the whole run: later experiments
                # would hit the same wall.
                print(f"error: {error}", file=sys.stderr)
                return 1
            except ExperimentError as error:
                # A selection invalid for one experiment should not
                # abort the rest of a multi-experiment run.
                print(f"error: {name}: {error}", file=sys.stderr)
                failed.append(name)
                continue
            _stamp_provenance(result_set, orch, before)
            code = _emit_result_set(
                result_set, renderer, args.format_name, out_dir,
                json_documents, html_sections,
            )
            if code is not None:
                return code
        if json_stdout:
            _flush_json_stdout(json_documents, len(names))
        _flush_html_stdout(html_sections)
        if failed:
            print(
                f"{len(failed)} experiment(s) failed: {', '.join(failed)}",
                file=sys.stderr,
            )
        _print_orchestration_stats(orch)
    return 1 if failed else 0


# ----------------------------------------------------------------------
# `worker`: attach this process to a job-queue directory
# ----------------------------------------------------------------------


def _worker_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner worker",
        description="Claim and execute tasks from a shared job-queue "
                    "directory until killed (or idle past --idle-timeout). "
                    "Run as many of these as you have cores/hosts; results "
                    "land in the shared result cache.",
    )
    parser.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="job-queue directory (default: <cache-dir>/queue)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared result cache (default: $REPRO_CACHE_DIR or "
             ".repro_cache/); must be the same directory the submitter "
             "uses",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=0.2, metavar="S",
        help="seconds between queue scans when idle (default: 0.2)",
    )
    parser.add_argument(
        "--idle-timeout", type=float, default=None, metavar="S",
        help="exit after S seconds without claiming a task "
             "(default: run until killed)",
    )
    parser.add_argument(
        "--max-tasks", type=int, default=None, metavar="N",
        help="exit after claiming N tasks (default: unlimited)",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=None, metavar="S",
        help="also reclaim peers' leases older than S seconds "
             "(default: leave reclaim to submitters)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float,
        default=DEFAULT_HEARTBEAT_INTERVAL, metavar="S",
        help="seconds between heartbeat-file refreshes under "
             "<queue-dir>/workers/ (default: 5; 0 disables the "
             "heartbeat)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-task log lines on stderr",
    )
    return parser


def _cmd_worker(argv) -> int:
    import signal

    parser = _worker_parser()
    args = parser.parse_args(argv)
    if args.heartbeat_interval < 0:
        parser.error("--heartbeat-interval must be >= 0 (0 disables)")
    # SIGTERM (the polite kill) should release the current lease and
    # retire the heartbeat file, exactly like Ctrl-C; raising
    # SystemExit routes it through those cleanup paths.  SIGKILL still
    # leaves a stale lease + heartbeat behind by design -- reclaim and
    # `queue status` exist for that.
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(143))
    cache = ResultCache(args.cache_dir)
    queue_dir = (
        Path(args.queue_dir)
        if args.queue_dir is not None
        else default_queue_dir(cache.directory)
    )
    worker = QueueWorker(
        JobQueue(queue_dir),
        cache,
        poll_interval=args.poll_interval,
        idle_timeout=args.idle_timeout,
        max_tasks=args.max_tasks,
        lease_timeout=args.lease_timeout,
        heartbeat_interval=args.heartbeat_interval or None,
        log=None if args.quiet else stderr_log,
    )
    terminated_code = None
    try:
        stats = worker.run()
    except KeyboardInterrupt:
        stats = worker.stats
        stderr_log("interrupted; exiting (any held lease was released)")
    except SystemExit as exit_request:
        stats = worker.stats
        stderr_log("terminated; exiting (any held lease was released)")
        # Preserve the signal convention (143 = SIGTERM): a supervisor
        # must be able to tell "killed mid-sweep" from "drained and
        # exited cleanly".
        terminated_code = (
            exit_request.code if isinstance(exit_request.code, int) else 143
        )
    print(
        f"[worker] done: {stats.claimed} claimed, {stats.completed} "
        f"completed, {stats.failed} failed, {stats.refused} refused",
        file=sys.stderr,
    )
    if terminated_code is not None:
        return terminated_code
    return 1 if stats.failed else 0


# ----------------------------------------------------------------------
# `queue`: observe a live sweep (status snapshots)
# ----------------------------------------------------------------------


def _queue_status_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner queue status",
        description="One-shot snapshot of a live sweep's job queue: "
                    "pending/leased/failed task counts, results already "
                    "in the cache, live vs stale workers (from their "
                    "heartbeat files), per-worker activity, failure "
                    "records, and rough throughput.  Read-only; run it "
                    "as often as you like (e.g. under `watch`).",
    )
    parser.add_argument(
        "cache_dir", nargs="?", default=None, metavar="CACHE_DIR",
        help="the sweep's shared cache directory (default: "
             "$REPRO_CACHE_DIR or .repro_cache/)",
    )
    parser.add_argument(
        "--queue-dir", default=None, metavar="DIR",
        help="job-queue directory (default: <CACHE_DIR>/queue)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the snapshot as one JSON document (includes full "
             "failure tracebacks) instead of the human-readable table",
    )
    parser.add_argument(
        "--stale-after", type=float, default=DEFAULT_STALE_AFTER,
        metavar="S",
        help="show a worker as stale once its heartbeat is older than "
             "S seconds (default: 30)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also aggregate the per-task timing stamps in the result "
             "cache (setup/run/store seconds, result sizes, chunk "
             "sizes) into a per-experiment table; see also `runner "
             "profile CACHE_DIR`",
    )
    return parser


def _cmd_queue_status(argv) -> int:
    parser = _queue_status_parser()
    args = parser.parse_args(argv)
    if args.stale_after <= 0:
        parser.error("--stale-after must be positive")
    cache_dir = (
        Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    )
    if not cache_dir.exists():
        print(
            f"error: no such cache directory: {cache_dir} (pass the "
            "directory the sweep's --cache-dir points at as CACHE_DIR)",
            file=sys.stderr,
        )
        return 1
    status = queue_status(
        cache_dir, args.queue_dir, stale_after=args.stale_after,
        profile=args.profile,
    )
    try:
        if args.json:
            print(json.dumps(status, indent=2, sort_keys=True))
        else:
            print(render_status(status))
        sys.stdout.flush()
    except BrokenPipeError:
        # `queue status | head` is a perfectly good way to watch a
        # sweep; a closed pipe is not an error worth a traceback.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
    return 0


def _cmd_queue(argv) -> int:
    if argv and argv[0] == "status":
        return _cmd_queue_status(argv[1:])
    print(
        "usage: python -m repro.experiments.runner queue status "
        "[CACHE_DIR] [--queue-dir DIR] [--json] [--stale-after S] "
        "[--profile]",
        file=sys.stderr,
    )
    return 2


# ----------------------------------------------------------------------
# `profile`: aggregate per-task timing stamps from a result cache
# ----------------------------------------------------------------------


def _profile_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner profile",
        description="Aggregate the per-task timing stamps "
                    "(setup/run/store seconds, result sizes, chunk "
                    "sizes) that every executed task leaves in its "
                    "cache entry's provenance, grouped per experiment "
                    "with p50/p95 run times and the share of wall "
                    "time spent outside task functions.  Read-only; "
                    "entries predating the profiling layer simply "
                    "don't count.",
    )
    parser.add_argument(
        "cache_dir", nargs="?", default=None, metavar="CACHE_DIR",
        help="the sweep's result cache directory (default: "
             "$REPRO_CACHE_DIR or .repro_cache/)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the aggregation as one JSON document instead of "
             "the human-readable table",
    )
    return parser


def _cmd_profile(argv) -> int:
    parser = _profile_parser()
    args = parser.parse_args(argv)
    cache_dir = (
        Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    )
    if not cache_dir.exists():
        print(
            f"error: no such cache directory: {cache_dir} (pass the "
            "directory the sweep's --cache-dir points at as CACHE_DIR)",
            file=sys.stderr,
        )
        return 1
    profile = profile_cache(cache_dir)
    if args.json:
        print(json.dumps(profile, indent=2, sort_keys=True))
    else:
        print(render_profile(profile))
    return 0


# ----------------------------------------------------------------------
# `serve`: the HTTP experiment service
# ----------------------------------------------------------------------


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner serve",
        description="Run the HTTP experiment service over a cache "
                    "directory: POST recipe manifests to /runs to "
                    "start sweeps (published into the same job queue "
                    "`runner worker` processes drain), GET run "
                    "records, artifacts, and report.html as they are "
                    "published, and watch the fleet through /healthz "
                    "and /queue.  Stdlib-only; all state lives on "
                    "disk, so restarting the service loses nothing. "
                    "See ORCHESTRATION.md.",
    )
    parser.add_argument(
        "cache_dir", nargs="?", default=None, metavar="CACHE_DIR",
        help="shared cache directory to serve (default: "
             "$REPRO_CACHE_DIR or .repro_cache/); created if missing",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", metavar="ADDR",
        help="address to bind (default: 127.0.0.1; use 0.0.0.0 to "
             "accept the fleet's curl from other hosts)",
    )
    parser.add_argument(
        "--port", type=int, default=8321, metavar="N",
        help="TCP port to bind (default: 8321; 0 picks a free port, "
             "printed on startup)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=4, metavar="N",
        help="sweeps executing at once; further submissions queue "
             "(default: 4)",
    )
    parser.add_argument(
        "--participate", action="store_true",
        help="the service claims queue tasks itself while sweeps "
             "wait, so it is useful with zero `runner worker` "
             "processes (laptop mode); by default submissions only "
             "publish tasks and the worker fleet drains them",
    )
    parser.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
        metavar="S",
        help="queue lease timeout handed to each sweep's backend "
             f"(default: {DEFAULT_LEASE_TIMEOUT:g}s)",
    )
    parser.add_argument(
        "--stale-after", type=float, default=DEFAULT_STALE_AFTER,
        metavar="S",
        help="report a worker as stale once its heartbeat is older "
             "than S seconds (default: 30)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-request and per-sweep log lines on stderr",
    )
    return parser


def _cmd_serve(argv) -> int:
    import signal

    from repro.service import ExperimentHTTPServer, ExperimentService

    parser = _serve_parser()
    args = parser.parse_args(argv)
    if args.max_concurrent < 1:
        parser.error("--max-concurrent must be >= 1")
    if args.lease_timeout <= 0:
        parser.error("--lease-timeout must be positive")
    if args.stale_after <= 0:
        parser.error("--stale-after must be positive")
    cache_dir = (
        Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    )
    service = ExperimentService(
        cache_dir,
        max_concurrent=args.max_concurrent,
        participate=args.participate,
        lease_timeout=args.lease_timeout,
        stale_after=args.stale_after,
        log=None if args.quiet else stderr_log,
    )
    try:
        server = ExperimentHTTPServer((args.host, args.port), service)
    except OSError as error:
        print(
            f"error: cannot bind {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 1
    host, port = server.server_address[:2]
    # The one startup line scripts parse (the smoke does): flushed so
    # a pipe sees it before the first request ever arrives.
    print(f"serving on http://{host}:{port}", flush=True)
    print(
        f"[serve] cache {cache_dir}, "
        f"{'participating' if args.participate else 'publish-only'} "
        f"submitter, {args.max_concurrent} concurrent sweeps max",
        file=sys.stderr,
    )
    signal.signal(signal.SIGTERM, lambda *_: sys.exit(143))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("[serve] interrupted; exiting", file=sys.stderr)
    except SystemExit as exit_request:
        print("[serve] terminated; exiting", file=sys.stderr)
        server.server_close()
        return (
            exit_request.code if isinstance(exit_request.code, int) else 143
        )
    server.server_close()
    return 0


# ----------------------------------------------------------------------
# `check-timing`: run a configuration and replay its command stream
# against the JEDEC conformance checker
# ----------------------------------------------------------------------


def _check_timing_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner check-timing",
        description="Run one simulation with command logging on and "
                    "replay the implied DDR4 command stream against "
                    "the declarative JEDEC timing rulebook (tRCD, "
                    "tRAS, tRP, tRC, tRRD_S, tFAW, tRFC, tREFI), an "
                    "oracle independent of the engine's scheduler.  "
                    "Workloads are synthetic suite traces by default; "
                    "--trace replays ramulator/DRAMsim-style request "
                    "files (plain or gzip, streamed).  Exit code 1 "
                    "when any violation is found.",
    )
    parser.add_argument(
        "--trace", action="append", default=None, metavar="FILE",
        help="request trace file (`<addr> <R|W> [cycle]` lines, plain "
             "or .gz); give one file shared by every core or repeat "
             "the flag once per core (default: synthetic traces)",
    )
    parser.add_argument(
        "--suite", default="ycsb", metavar="NAME",
        help="synthetic suite profile when no --trace is given "
             "(default: ycsb; see repro.workloads.suites)",
    )
    parser.add_argument(
        "--defense", default=None, metavar="NAME",
        help="attach a RowHammer defense (AQUA, BlockHammer, Hydra, "
             "PARA, RRS; default: none)",
    )
    parser.add_argument(
        "--hc-first", type=int, default=1024, metavar="N",
        help="HC_first threshold for --defense (default: 1024)",
    )
    parser.add_argument(
        "--cores", type=int, default=2, metavar="N",
        help="simulated cores (default: 2)",
    )
    parser.add_argument(
        "--requests-per-core", type=int, default=2000, metavar="N",
        help="requests per core (default: 2000)",
    )
    parser.add_argument(
        "--rows-per-bank", type=int, default=4096, metavar="N",
        help="rows per bank (default: 4096)",
    )
    parser.add_argument(
        "--speed", type=int, default=3200, metavar="MTS",
        help="DDR4 speed grade for the timing rulebook and the engine "
             "(2400, 2666, 2933, 3200; default: 3200)",
    )
    parser.add_argument(
        "--device", default=None, metavar="SPEC",
        help="device-generation preset for the timing rulebook and the "
             "engine (DDR4-3200, LPDDR4-3200, DDR5-4800, ...); "
             "overrides --speed and checks against that generation's "
             "JEDEC rules",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="workload seed (default: 0)",
    )
    parser.add_argument(
        "--clock-ns", type=float, default=None, metavar="NS",
        help="with --trace: nanoseconds per trace cycle stamp; cycle "
             "deltas become arrival gaps (default: stamps ignored)",
    )
    parser.add_argument(
        "--gap-ns", type=float, default=0.0, metavar="NS",
        help="with --trace: arrival gap for lines without usable "
             "cycle stamps (default: 0, back-to-back)",
    )
    parser.add_argument(
        "--max-violations", type=int, default=20, metavar="N",
        help="violations listed in the text report (default: 20; the "
             "JSON report always carries all of them)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit one JSON document (simulation counters + the full "
             "violation report) instead of the text summary",
    )
    return parser


def _cmd_check_timing(argv) -> int:
    from repro.defenses import DEFENSE_CLASSES
    from repro.dram.timing import device_for, timing_for_speed
    from repro.sim.config import SystemConfig
    from repro.sim.conformance import check_run
    from repro.sim.engine import MemorySystem
    from repro.workloads import (
        SyntheticTrace,
        TraceParseError,
        profile_by_name,
        readers_for_cores,
    )

    parser = _check_timing_parser()
    args = parser.parse_args(argv)
    if args.cores < 1:
        parser.error("--cores must be positive")
    if args.requests_per_core < 1:
        parser.error("--requests-per-core must be positive")
    if args.hc_first < 1:
        parser.error("--hc-first must be positive")
    if args.clock_ns is not None and args.trace is None:
        parser.error("--clock-ns requires --trace")
    try:
        if args.device is not None:
            timing = device_for(args.device)
        else:
            timing = timing_for_speed(args.speed)
    except ValueError as error:
        parser.error(str(error))
    device_label = (
        args.device if args.device is not None else f"DDR4-{args.speed}"
    )
    defense_name = args.defense
    if defense_name is not None and defense_name not in DEFENSE_CLASSES:
        parser.error(
            f"unknown defense {defense_name!r}; known: "
            f"{', '.join(sorted(DEFENSE_CLASSES))}"
        )

    config = SystemConfig(
        cores=args.cores,
        rows_per_bank=args.rows_per_bank,
        requests_per_core=args.requests_per_core,
        timing=timing,
        defense_epoch_ns=1_000_000.0 if defense_name else None,
    )
    if args.trace is not None:
        try:
            traces = readers_for_cores(
                args.trace, config.cores,
                total_banks=config.total_banks,
                rows_per_bank=config.rows_per_bank,
                columns_per_row=config.columns_per_row,
                clock_ns=args.clock_ns,
                default_gap_ns=args.gap_ns,
            )
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        try:
            profile = profile_by_name(args.suite)
        except KeyError as error:
            parser.error(str(error.args[0]))
        traces = [
            SyntheticTrace(
                profile,
                total_banks=config.total_banks,
                rows_per_bank=config.rows_per_bank,
                columns_per_row=config.columns_per_row,
                seed=args.seed * 1000 + core,
            )
            for core in range(config.cores)
        ]

    defense = None
    if defense_name is not None:
        kwargs = dict(rows_per_bank=config.rows_per_bank, seed=args.seed)
        if defense_name == "BlockHammer":
            kwargs["epoch_ns"] = config.defense_epoch_ns
        defense = DEFENSE_CLASSES[defense_name](args.hc_first, **kwargs)

    system = MemorySystem(config, traces, defense=defense, seed=args.seed)
    try:
        result, report = check_run(system)
    except TraceParseError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    workload = (
        f"trace files: {', '.join(args.trace)}"
        if args.trace is not None
        else f"synthetic suite {args.suite!r}"
    )
    if args.json:
        document = {
            "workload": workload,
            "speed_mts": args.speed,
            "defense": defense_name,
            "cores": config.cores,
            "requests": config.requests_per_core * config.cores,
            "total_ns": result.total_ns,
            "activations": result.activations,
            "refreshes_issued": result.refreshes_issued,
            "row_hit_rate": result.row_hit_rate,
            "conformance": report.to_json_dict(),
        }
        if args.device is not None:
            # Key only present for --device runs: the DDR4 --speed
            # document stays byte-identical to the pre-generation one
            # (generations-smoke byte-diffs it against a golden).
            document["device"] = args.device
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(
            f"simulated {config.requests_per_core * config.cores} requests "
            f"on {config.cores} core(s), {device_label}, "
            f"defense: {defense_name or 'none'} ({workload})"
        )
        print(
            f"  {result.activations} activations, "
            f"{result.refreshes_issued} refreshes, "
            f"row hit rate {result.row_hit_rate:.3f}, "
            f"finished at {result.total_ns:.0f}ns"
        )
        print(report.render_text(max_violations=args.max_violations))
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# `recipe`: declarative sweep manifests
# ----------------------------------------------------------------------


def _recipe_list_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner recipe list",
        description="List every checked-in sweep recipe.",
    )
    parser.add_argument(
        "--format", dest="format_name", default="text",
        choices=("text", "json"),
        help="listing format: a fixed-width table or the full manifests "
             "as JSON (default: text)",
    )
    return parser


def _cmd_recipe_list(argv) -> int:
    args = _recipe_list_parser().parse_args(argv)
    recipes = all_recipes()
    if args.format_name == "json":
        print(json.dumps(
            {name: recipe.to_manifest() for name, recipe in recipes.items()},
            indent=2,
        ))
        return 0
    rows = [
        (
            name,
            f"v{recipe.version}",
            recipe.paper_ref,
            ", ".join(recipe.experiments),
            f"{len(recipe.seeds)} seed{'s' if len(recipe.seeds) != 1 else ''}",
            recipe.description,
        )
        for name, recipe in recipes.items()
    ]
    print(display_table(
        ("recipe", "ver", "paper", "experiments", "seed matrix",
         "description"),
        rows,
    ))
    return 0


def _recipe_show_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner recipe show",
        description="Print one recipe's manifest as JSON (stdout), plus "
                    "its seed matrix and per-seed artifact layout "
                    "(stderr, so stdout stays parseable).",
    )
    parser.add_argument(
        "name", metavar="RECIPE",
        help="a registered recipe name (see `recipe list`) or a path "
             "to a manifest .json",
    )
    return parser


def _cmd_recipe_show(argv) -> int:
    args = _recipe_show_parser().parse_args(argv)
    try:
        recipe = get_recipe(args.name)
    except RecipeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    print(json.dumps(recipe.to_manifest(), indent=2))
    # The human-facing half goes to stderr so `recipe show X | jq`
    # keeps working on the manifest alone.
    seeds = ", ".join(str(seed) for seed in recipe.seeds)
    plural = "s" if len(recipe.seeds) != 1 else ""
    print(
        f"\nseed matrix: {seeds} ({len(recipe.seeds)} seed{plural})",
        file=sys.stderr,
    )
    print(
        "artifact layout under `recipe run "
        f"{recipe.name} --out DIR [--format FMT]`:",
        file=sys.stderr,
    )
    experiments = ",".join(recipe.experiments)
    for seed in recipe.seeds:
        for device in recipe.devices or (None,):
            relative = _recipe_out_dir(Path("DIR"), recipe, seed, device=device)
            print(
                f"  {relative}/{{{experiments}}}.<fmt>", file=sys.stderr,
            )
    print(
        "  DIR/report.html            (with --report: aggregated "
        "across the seed matrix)",
        file=sys.stderr,
    )
    return 0


def _recipe_run_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner recipe run",
        description="Run a declarative sweep recipe on any backend. "
                    "Re-running resumes purely from cache state.",
    )
    parser.add_argument(
        "name", metavar="RECIPE",
        help="a registered recipe name (see `recipe list`) or a path "
             "to a manifest .json",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="apply the recipe's smoke_overrides (tiny scale, used by "
             "`make recipes-smoke` to cross-check backends)",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="also write a self-contained <out>/report.html stitching "
             "every cell together, aggregated (mean/stddev/min-max) "
             "across the seed matrix; requires --out",
    )
    _add_execution_flags(parser)
    _add_render_flags(parser)
    return parser


def _cmd_recipe_run(argv) -> int:
    parser = _recipe_run_parser()
    args = parser.parse_args(argv)
    _validate_execution_flags(parser, args)
    if args.report and args.out is None:
        parser.error("--report requires --out (the report lands at "
                     "<out>/report.html)")

    try:
        recipe = get_recipe(args.name)
        recipe.validate_experiments()
        runs = recipe.runs(smoke=args.smoke)
    except RecipeError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1

    renderer = get_renderer(args.format_name)
    try:
        renderer.check_available()
    except RendererUnavailable as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    out_dir: Optional[Path] = Path(args.out) if args.out else None
    if out_dir is None and args.format_name == "mpl":
        out_dir = Path("figures") / recipe.name

    experiments = all_experiments()
    json_documents: List[dict] = []
    html_sections: List = []
    json_stdout = args.format_name == "json" and out_dir is None
    failed: List[str] = []
    completed: List[tuple] = []  # (experiment, seed, device, ResultSet)

    with build_context(args) as orch:
        for experiment_name, seed, scale in runs:
            cell = f"{experiment_name}@seed{seed}"
            if scale.device is not None:
                cell = f"{cell}/{scale.device}"
            print(f"[recipe {recipe.name} v{recipe.version}] {cell}",
                  file=sys.stderr)
            before = _stats_snapshot(orch)
            try:
                result_set = experiments[experiment_name].run_result_set(
                    scale, orch
                )
            except BackendError as error:
                print(f"error: {error}", file=sys.stderr)
                return 1
            except ExperimentError as error:
                print(f"error: {cell}: {error}", file=sys.stderr)
                failed.append(cell)
                continue
            if scale.device is not None:
                result_set.title = f"{result_set.title} [{scale.device}]"
            result_set.meta["recipe"] = {
                "name": recipe.name,
                "version": recipe.version,
                "seed": seed,
                "smoke": args.smoke,
            }
            _stamp_provenance(result_set, orch, before)
            if args.report:
                # Only the report consumes these; retaining a whole
                # paper-scale grid in memory otherwise is waste.
                completed.append((experiment_name, seed, scale.device, result_set))
            code = _emit_result_set(
                result_set,
                renderer,
                args.format_name,
                None if out_dir is None
                else _recipe_out_dir(out_dir, recipe, seed, device=scale.device),
                json_documents, html_sections,
            )
            if code is not None:
                return code
        if json_stdout:
            _flush_json_stdout(json_documents, len(runs))
        _flush_html_stdout(html_sections)
        if failed:
            print(
                f"{len(failed)} recipe cell(s) failed: {', '.join(failed)}",
                file=sys.stderr,
            )
        _print_orchestration_stats(orch)

    if args.report and completed:
        from repro.experiments.aggregate import AggregationError

        try:
            path = _write_recipe_report(
                recipe, args.smoke, completed, out_dir
            )
        except AggregationError as error:
            # The per-seed artifacts are all on disk by now; losing
            # the report must not look like losing the sweep.
            print(
                f"error: report aggregation failed: {error}\n"
                f"(per-seed artifacts under {out_dir} are intact; "
                f"`runner report {out_dir} --no-aggregate` renders "
                "them unaggregated)",
                file=sys.stderr,
            )
            return 1
        print(f"wrote {path}")
    return 1 if failed else 0


# ----------------------------------------------------------------------
# `report`: stitch an artifact tree into one self-contained HTML page
# ----------------------------------------------------------------------


def _report_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner report",
        description="Stitch ResultSet JSON artifacts (a run's --out "
                    "tree, a recipe tree with seed*/ subdirectories, or "
                    "a single artifact file) into one self-contained "
                    "HTML report; seed-partitioned artifacts are "
                    "aggregated with mean/stddev/min-max error bands. "
                    "See REPORTS.md.",
    )
    parser.add_argument(
        "artifacts", metavar="ARTIFACTS",
        help="directory to scan recursively for ResultSet .json "
             "artifacts (written by --format json), or one such file",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="output HTML path (default: <ARTIFACTS>/report.html, or "
             "next to a single artifact file)",
    )
    parser.add_argument(
        "--title", default=None, metavar="TEXT",
        help="report page title (default: derived from the artifact "
             "directory name)",
    )
    parser.add_argument(
        "--no-aggregate", action="store_true",
        help="render each seed's artifacts as separate sections "
             "instead of aggregating across seed*/ directories",
    )
    parser.add_argument(
        "--prefer-mpl", action="store_true",
        help="embed matplotlib PNGs (base64) instead of pure-python "
             "SVG charts when matplotlib is installed; the page stays "
             "one file either way",
    )
    return parser


def _cmd_report(argv) -> int:
    from repro.experiments.aggregate import (
        AggregationError,
        collect_report_sections,
    )
    from repro.experiments.report import build_report

    args = _report_parser().parse_args(argv)
    root = Path(args.artifacts)
    if not root.exists():
        print(f"error: no such artifact path: {root}", file=sys.stderr)
        return 1
    try:
        sections = collect_report_sections(
            root, aggregate=not args.no_aggregate
        )
    except AggregationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not sections:
        print(
            f"error: no ResultSet artifacts under {root} (write them "
            "with `runner run ... --format json --out DIR` or `runner "
            "recipe run ... --format json --out DIR`)",
            file=sys.stderr,
        )
        return 1
    title = args.title or (
        f"Svärd reproduction report: "
        f"{root.name if root.is_dir() else root.stem}"
    )
    html = build_report(
        sections,
        title=title,
        subtitle=f"stitched from {root}",
        prefer_mpl=args.prefer_mpl,
    )
    out = (
        Path(args.out)
        if args.out is not None
        else (root if root.is_dir() else root.parent) / "report.html"
    )
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(html, encoding="utf-8")
    print(f"wrote {out} ({len(sections)} sections)")
    return 0


def _cmd_recipe(argv) -> int:
    if argv and argv[0] == "list":
        return _cmd_recipe_list(argv[1:])
    if argv and argv[0] == "show":
        return _cmd_recipe_show(argv[1:])
    if argv and argv[0] == "run":
        return _cmd_recipe_run(argv[1:])
    print(
        "usage: python -m repro.experiments.runner recipe {list,show,run} ...",
        file=sys.stderr,
    )
    return 2


_TOP_LEVEL_HELP = """\
usage: python -m repro.experiments.runner {list,run,recipe,worker,queue,profile,serve,report,check-timing} ...

subcommands:
  list    enumerate every registered experiment (--format text|json)
  run     run experiments and render their artifacts (the default:
          bare experiment names imply `run`)
  check-timing
          run one simulation with DDR4 command logging on and replay
          the stream against the JEDEC conformance rulebook
          (synthetic suites or --trace request files, plain or .gz);
          exit 1 on any timing violation
  recipe  declarative sweep manifests: `recipe list`, `recipe show
          NAME`, `recipe run NAME [--smoke] [--report]` -- the
          checked-in paper-scale grids, runnable on any backend
  worker  attach this process to a job-queue directory and execute
          tasks published by `--backend queue` submitters
  queue   observe a live sweep: `queue status [CACHE_DIR] [--json]
          [--profile]` summarizes tasks, leases, failures, and
          live/stale workers from their heartbeat files
  profile aggregate the per-task timing stamps a sweep left in its
          result cache: per-experiment p50/p95 run times, setup and
          store overhead share, result sizes, chunk sizes
  serve   run the HTTP experiment service over a cache directory:
          POST recipes to start sweeps on the worker fleet, GET run
          records, artifacts, report.html, /healthz, and /queue
  report  stitch ResultSet JSON artifact trees (including seed*/
          matrices, aggregated with error bands) into one
          self-contained HTML page

`python -m repro.experiments.runner run --help` shows the run flags;
`--help-all` dumps every subcommand's help in one document (the copy
in EXPERIMENTS.md is kept in sync by the test suite).  See
EXPERIMENTS.md for the Experiment API and output formats, REPORTS.md
for the report pipeline, and ORCHESTRATION.md for backends, the
queue/worker model, and the cache.
"""


def help_all_text() -> str:
    """Every subcommand's ``--help``, as one deterministic document.

    This is the ``--help-all`` payload and the generated CLI
    reference checked into EXPERIMENTS.md
    (``pytest tests/test_report.py --update-golden`` refreshes it).
    The terminal width is pinned so the output does not depend on the
    invoking terminal.
    """
    import os

    parsers = (
        _list_parser(),
        _run_parser(),
        _recipe_list_parser(),
        _recipe_show_parser(),
        _recipe_run_parser(),
        _worker_parser(),
        _queue_status_parser(),
        _profile_parser(),
        _serve_parser(),
        _report_parser(),
        _check_timing_parser(),
    )
    saved = os.environ.get("COLUMNS")
    os.environ["COLUMNS"] = "78"
    try:
        sections = [_TOP_LEVEL_HELP]
        for parser in parsers:
            sections.append("=" * 72 + "\n")
            sections.append(parser.format_help())
    finally:
        if saved is None:
            os.environ.pop("COLUMNS", None)
        else:
            os.environ["COLUMNS"] = saved
    return "\n".join(sections)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(_TOP_LEVEL_HELP, end="")
        return 0
    if argv and argv[0] == "--help-all":
        print(help_all_text(), end="")
        return 0
    if argv and argv[0] == "list":
        return _cmd_list(argv[1:])
    if argv and argv[0] == "recipe":
        return _cmd_recipe(argv[1:])
    if argv and argv[0] == "worker":
        return _cmd_worker(argv[1:])
    if argv and argv[0] == "queue":
        return _cmd_queue(argv[1:])
    if argv and argv[0] == "profile":
        return _cmd_profile(argv[1:])
    if argv and argv[0] == "serve":
        return _cmd_serve(argv[1:])
    if argv and argv[0] == "report":
        return _cmd_report(argv[1:])
    if argv and argv[0] == "check-timing":
        return _cmd_check_timing(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    # Bare experiment names (the pre-registry CLI) imply `run`.
    return _cmd_run(argv)


if __name__ == "__main__":
    raise SystemExit(main())
