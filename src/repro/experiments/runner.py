"""Generic experiment CLI, driven by the Experiment registry.

Usage::

    python -m repro.experiments.runner list              # what exists
    python -m repro.experiments.runner run               # everything
    python -m repro.experiments.runner run fig5 fig12    # a subset
    python -m repro.experiments.runner run fig12 --jobs 4 --progress
    python -m repro.experiments.runner run fig12 --format json --out results/
    python -m repro.experiments.runner run --format mpl --out figures/

(The ``run`` verb is optional: ``runner fig12 --jobs 4`` still works.)

Experiments self-register with :func:`repro.experiments.api.register`;
the runner holds no per-figure code.  Each experiment may declare
``quick_overrides`` -- reduced-grid scale defaults that keep the full
suite interactive; explicit scale flags and ``--full`` win over them.

Results are orchestrated through :mod:`repro.orchestration`: with
``--jobs N`` the independent simulation/characterization tasks fan out
over N worker processes, and completed tasks persist in an on-disk
cache (``--cache-dir``, default ``.repro_cache/``) so re-runs and
interrupted sweeps resume instantly.  ``--no-cache`` forces fresh
computation.  See ORCHESTRATION.md and EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro.experiments.api import (
    ExperimentError,
    all_experiments,
    display_table,
)
from repro.experiments.common import ExperimentScale
from repro.experiments.render import (
    RendererUnavailable,
    get_renderer,
    renderer_names,
)
from repro.orchestration import OrchestrationContext, ResultCache

#: CLI flag dests that map 1:1 onto ``ExperimentScale`` field names.
_SCALE_FLAGS = (
    "seed",
    "n_mixes",
    "requests_per_core",
    "rows_per_bank",
    "banks",
    "modules",
    "paper_rows",
)


def _parse_run_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner run",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help="experiments to run (default: every registered experiment; "
             "see the `list` subcommand)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for orchestrated tasks (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk result cache location (default: $REPRO_CACHE_DIR "
             "or .repro_cache/)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="compute everything fresh; do not read or write the cache",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-task progress to stderr",
    )
    parser.add_argument(
        "--format", dest="format_name", default="text", metavar="FMT",
        choices=renderer_names(),
        help=f"output renderer, one of {renderer_names()} (default: text)",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="write rendered artifacts into DIR instead of stdout "
             "(--format mpl defaults to figures/)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="ignore per-experiment quick-grid presets; run the full "
             "default scale",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override ExperimentScale.seed",
    )
    parser.add_argument(
        "--n-mixes", type=int, default=None, metavar="N",
        help="override ExperimentScale.n_mixes (paper scale: 120)",
    )
    parser.add_argument(
        "--requests-per-core", type=int, default=None, metavar="N",
        help="override ExperimentScale.requests_per_core",
    )
    parser.add_argument(
        "--rows-per-bank", type=int, default=None, metavar="N",
        help="override ExperimentScale.rows_per_bank",
    )
    parser.add_argument(
        "--banks", default=None, metavar="B0,B1,...",
        help="override ExperimentScale.banks (comma-separated indices)",
    )
    parser.add_argument(
        "--modules", default=None, metavar="M0,M1,...",
        help="override ExperimentScale.modules (comma-separated labels)",
    )
    parser.add_argument(
        "--paper-rows", action="store_true", default=None,
        help="characterize each module at its real ModuleSpec row count "
             "instead of the uniform --rows-per-bank",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.no_cache and args.cache_dir is not None:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    if args.banks is not None:
        try:
            args.banks = tuple(int(part) for part in args.banks.split(","))
        except ValueError:
            parser.error(
                f"--banks must be comma-separated integers, got {args.banks!r}"
            )
        if len(set(args.banks)) != len(args.banks):
            parser.error(f"--banks contains duplicates: {args.banks}")
    if args.modules is not None:
        args.modules = tuple(args.modules.split(","))
        if len(set(args.modules)) != len(args.modules):
            parser.error(f"--modules contains duplicates: {args.modules}")
    return args


def _progress_line(done: int, total: int, key) -> None:
    label = "/".join(str(part) for part in key)
    end = "\n" if done == total else "\r"
    print(f"  [{done}/{total}] {label:<60.60}", end=end, file=sys.stderr,
          flush=True)


def build_context(args: argparse.Namespace) -> OrchestrationContext:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return OrchestrationContext(
        jobs=args.jobs,
        cache=cache,
        progress=_progress_line if args.progress else None,
    )


def _scale_for(experiment, base: ExperimentScale, explicit: frozenset,
               full: bool) -> ExperimentScale:
    """The base scale plus the experiment's quick-grid presets.

    Explicit CLI overrides (e.g. ``--n-mixes 120`` for the paper grid)
    and ``--full`` win over the presets.
    """
    if full:
        return base
    trimmed = {
        field: value
        for field, value in experiment.quick_overrides.items()
        if field not in explicit
    }
    return replace(base, **trimmed)


def _cmd_list(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner list",
        description="List every registered experiment.",
    )
    parser.add_argument(
        "--format", dest="format_name", default="text",
        choices=("text", "json"),
    )
    args = parser.parse_args(argv)
    experiments = all_experiments()
    if args.format_name == "json":
        print(json.dumps(
            {
                name: {
                    "paper_ref": experiment.paper_ref,
                    "description": experiment.description,
                    "quick_overrides": {
                        key: list(value) if isinstance(value, tuple) else value
                        for key, value in experiment.quick_overrides.items()
                    },
                }
                for name, experiment in experiments.items()
            },
            indent=2,
        ))
        return 0
    rows = [
        (
            name,
            experiment.paper_ref,
            experiment.description,
            ", ".join(sorted(experiment.quick_overrides)) or "-",
        )
        for name, experiment in experiments.items()
    ]
    print(display_table(
        ("experiment", "paper", "description", "quick-grid fields"), rows
    ))
    return 0


def _cmd_run(argv) -> int:
    args = _parse_run_args(argv)
    experiments = all_experiments()
    names = args.names or list(experiments)
    unknown = [name for name in names if name not in experiments]
    if unknown:
        print(
            f"unknown experiment {unknown[0]!r}; known: {list(experiments)}",
            file=sys.stderr,
        )
        return 1

    overrides = {
        field: getattr(args, field)
        for field in _SCALE_FLAGS
        if getattr(args, field) is not None
    }
    try:
        base_scale = replace(ExperimentScale(), **overrides)
    except (KeyError, ValueError) as error:
        # ExperimentScale validates module labels and minimum sizes.
        print(f"invalid scale: {error}", file=sys.stderr)
        return 1
    explicit = frozenset(overrides)

    renderer = get_renderer(args.format_name)
    try:
        # Fail on a missing backend before any experiment executes.
        renderer.check_available()
    except RendererUnavailable as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    out_dir: Optional[Path] = Path(args.out) if args.out else None
    if out_dir is None and args.format_name == "mpl":
        out_dir = Path("figures")

    json_documents = []
    failed = []
    json_stdout = args.format_name == "json" and out_dir is None

    def flush_json() -> None:
        # In json-to-stdout mode, stdout is always one parseable
        # document.  The shape follows the *request*: a bare object
        # when a single experiment succeeded, an array otherwise --
        # including the empty array when failures left no results.
        if not json_stdout:
            return
        document = (
            json_documents[0]
            if len(names) == 1 and json_documents
            else json_documents
        )
        print(json.dumps(document, indent=2, sort_keys=True))

    with build_context(args) as orch:
        for name in names:
            experiment = experiments[name]
            scale = _scale_for(experiment, base_scale, explicit, args.full)
            try:
                result_set = experiment.run_result_set(scale, orch)
            except ExperimentError as error:
                # A selection invalid for one experiment should not
                # abort the rest of a multi-experiment run.
                print(f"error: {name}: {error}", file=sys.stderr)
                failed.append(name)
                continue
            if out_dir is not None:
                try:
                    paths = renderer.write(result_set, out_dir)
                except RendererUnavailable as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
                for path in paths:
                    print(f"wrote {path}")
                if not paths:
                    print(
                        f"{name}: nothing to write for format "
                        f"{args.format_name!r}"
                    )
            elif args.format_name == "text":
                print("=" * 72)
                print(result_set.render_text())
                print()
            elif args.format_name == "json":
                json_documents.append(result_set.to_json_dict())
            else:
                print(renderer.render(result_set))
        flush_json()
        if failed:
            print(
                f"{len(failed)} experiment(s) failed: {', '.join(failed)}",
                file=sys.stderr,
            )
        if orch.stats.submitted:
            where = (
                f"cache at {orch.cache.directory}"
                if orch.cache is not None
                else "cache disabled"
            )
            print(
                f"[orchestration] {orch.stats.submitted} tasks: "
                f"{orch.stats.hits} cache hits, "
                f"{orch.stats.executed} executed "
                f"({orch.jobs} job{'s' if orch.jobs != 1 else ''}, {where})",
                file=sys.stderr,
            )
    return 1 if failed else 0


_TOP_LEVEL_HELP = """\
usage: python -m repro.experiments.runner {list,run} ...

subcommands:
  list    enumerate every registered experiment (--format text|json)
  run     run experiments and render their artifacts (the default:
          bare experiment names imply `run`)

`python -m repro.experiments.runner run --help` shows the run flags.
See EXPERIMENTS.md for the Experiment API and output formats.
"""


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(_TOP_LEVEL_HELP, end="")
        return 0
    if argv and argv[0] == "list":
        return _cmd_list(argv[1:])
    if argv and argv[0] == "run":
        argv = argv[1:]
    # Bare experiment names (the pre-registry CLI) imply `run`.
    return _cmd_run(argv)


if __name__ == "__main__":
    raise SystemExit(main())
