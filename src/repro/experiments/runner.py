"""Run all (or selected) experiments and print their paper-style output.

Usage::

    python -m repro.experiments.runner                # every experiment
    python -m repro.experiments.runner fig5 fig12     # a subset
    python -m repro.experiments.runner fig12 --jobs 4 # parallel sweep

Results are orchestrated through :mod:`repro.orchestration`: with
``--jobs N`` the independent simulation/characterization tasks fan out
over N worker processes, and completed tasks persist in an on-disk
cache (``--cache-dir``, default ``.repro_cache/``) so re-runs and
interrupted sweeps resume instantly.  ``--no-cache`` forces fresh
computation.  See ORCHESTRATION.md.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.characterization.rowpress import T_AGG_ON_SWEEP_NS
from repro.experiments import (
    ablation_bins,
    fig3_ber_distribution,
    fig4_ber_location,
    fig5_hcfirst_distribution,
    fig6_hcfirst_location,
    fig7_rowpress,
    fig8_subarray_silhouette,
    fig9_spatial_features,
    fig10_aging,
    fig12_performance,
    fig13_adversarial,
    sec64_hardware_cost,
    table3_features,
    table5_modules,
)
from repro.experiments.common import ExperimentScale, characterize_modules
from repro.orchestration import OrchestrationContext, ResultCache

#: ``(scale, orchestration, explicit)`` -> result.  ``explicit`` names
#: the scale fields the user overrode on the command line, so quick
#: presets below never silently discard an explicit flag.
Runner = Callable[
    [ExperimentScale, OrchestrationContext, frozenset], object
]


def _fig12_quick(
    scale: ExperimentScale, orch: OrchestrationContext, explicit: frozenset
):
    """Fig 12 at a reduced grid so the full runner stays interactive.

    Explicit CLI overrides (e.g. ``--n-mixes 120`` for the paper
    grid) win over the quick-grid defaults.
    """
    quick = {
        "hc_first_values": (4096, 256, 64),
        "svard_profiles": ("S0",),
        "n_mixes": 1,
    }
    trimmed = {k: v for k, v in quick.items() if k not in explicit}
    return fig12_performance.run(replace(scale, **trimmed), orchestration=orch)


def _ablation_bins(
    scale: ExperimentScale, orch: OrchestrationContext, explicit: frozenset
):
    if "requests_per_core" not in explicit:
        scale = replace(scale, requests_per_core=2500)
    return ablation_bins.run(scale, orchestration=orch)


def _prewarmed(run_fn: Callable[[ExperimentScale], object]) -> Runner:
    """Fan the module characterizations out before a sequential figure.

    The per-figure harnesses consume characterizations through the
    in-memory cache in :mod:`repro.experiments.common`; pre-warming it
    through the orchestration context gives them parallelism and disk
    caching without touching their analysis code.
    """

    def wrapper(
        scale: ExperimentScale, orch: OrchestrationContext, explicit: frozenset
    ):
        characterize_modules(scale.modules, scale, orchestration=orch)
        return run_fn(scale)

    return wrapper


def _fig7(
    scale: ExperimentScale, orch: OrchestrationContext, explicit: frozenset
):
    for t_on in T_AGG_ON_SWEEP_NS:
        characterize_modules(
            scale.modules, scale, t_agg_on_ns=t_on, orchestration=orch
        )
    return fig7_rowpress.run(scale)


EXPERIMENTS: Dict[str, Runner] = {
    "fig3": _prewarmed(fig3_ber_distribution.run),
    "fig4": _prewarmed(fig4_ber_location.run),
    "fig5": _prewarmed(fig5_hcfirst_distribution.run),
    "fig6": _prewarmed(fig6_hcfirst_location.run),
    "fig7": _fig7,
    "fig8": lambda scale, orch, explicit: fig8_subarray_silhouette.run(scale),
    "fig9": _prewarmed(fig9_spatial_features.run),
    "fig10": lambda scale, orch, explicit: fig10_aging.run(scale),
    "fig12": _fig12_quick,
    "fig13": lambda scale, orch, explicit: fig13_adversarial.run(
        scale, orchestration=orch
    ),
    "table3": _prewarmed(table3_features.run),
    "table5": lambda scale, orch, explicit: table5_modules.run(
        scale, orchestration=orch
    ),
    "sec64": lambda scale, orch, explicit: sec64_hardware_cost.run(),
    "ablation-bins": _ablation_bins,
}


def _parse_args(argv) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's figures and tables.",
    )
    parser.add_argument(
        "names", nargs="*", metavar="EXPERIMENT",
        help=f"experiments to run (default: all of {sorted(EXPERIMENTS)})",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for orchestrated tasks (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="on-disk result cache location (default: $REPRO_CACHE_DIR "
             "or .repro_cache/)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="compute everything fresh; do not read or write the cache",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="print per-task progress to stderr",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="override ExperimentScale.seed",
    )
    parser.add_argument(
        "--n-mixes", type=int, default=None, metavar="N",
        help="override ExperimentScale.n_mixes (paper scale: 120)",
    )
    parser.add_argument(
        "--requests-per-core", type=int, default=None, metavar="N",
        help="override ExperimentScale.requests_per_core",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.no_cache and args.cache_dir is not None:
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    return args


def _progress_line(done: int, total: int, key) -> None:
    label = "/".join(str(part) for part in key)
    end = "\n" if done == total else "\r"
    print(f"  [{done}/{total}] {label:<60.60}", end=end, file=sys.stderr,
          flush=True)


def build_context(args: argparse.Namespace) -> OrchestrationContext:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return OrchestrationContext(
        jobs=args.jobs,
        cache=cache,
        progress=_progress_line if args.progress else None,
    )


def main(argv=None) -> int:
    args = _parse_args(sys.argv[1:] if argv is None else argv)
    names = args.names or sorted(EXPERIMENTS)
    overrides = {
        field: value
        for field, value in (
            ("seed", args.seed),
            ("n_mixes", args.n_mixes),
            ("requests_per_core", args.requests_per_core),
        )
        if value is not None
    }
    scale = replace(ExperimentScale(), **overrides)
    explicit = frozenset(overrides)
    with build_context(args) as orch:
        for name in names:
            if name not in EXPERIMENTS:
                print(
                    f"unknown experiment {name!r}; "
                    f"known: {sorted(EXPERIMENTS)}"
                )
                return 1
            print("=" * 72)
            result = EXPERIMENTS[name](scale, orch, explicit)
            print(result.render())
            print()
        if orch.stats.submitted:
            where = (
                f"cache at {orch.cache.directory}"
                if orch.cache is not None
                else "cache disabled"
            )
            print(
                f"[orchestration] {orch.stats.submitted} tasks: "
                f"{orch.stats.hits} cache hits, "
                f"{orch.stats.executed} executed "
                f"({orch.jobs} job{'s' if orch.jobs != 1 else ''}, {where})",
                file=sys.stderr,
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
