"""Run all (or selected) experiments and print their paper-style output.

Usage::

    python -m repro.experiments.runner            # every experiment
    python -m repro.experiments.runner fig5 fig12 # a subset
"""

from __future__ import annotations

import sys
from dataclasses import replace
from typing import Callable, Dict

from repro.experiments import (
    ablation_bins,
    fig3_ber_distribution,
    fig4_ber_location,
    fig5_hcfirst_distribution,
    fig6_hcfirst_location,
    fig7_rowpress,
    fig8_subarray_silhouette,
    fig9_spatial_features,
    fig10_aging,
    fig12_performance,
    fig13_adversarial,
    sec64_hardware_cost,
    table3_features,
    table5_modules,
)
from repro.experiments.common import ExperimentScale


def _fig12_quick(scale: ExperimentScale):
    """Fig 12 at a reduced grid so the full runner stays interactive."""
    quick = replace(
        scale,
        hc_first_values=(4096, 256, 64),
        svard_profiles=("S0",),
        n_mixes=1,
    )
    return fig12_performance.run(quick)


EXPERIMENTS: Dict[str, Callable[[ExperimentScale], object]] = {
    "fig3": lambda scale: fig3_ber_distribution.run(scale),
    "fig4": lambda scale: fig4_ber_location.run(scale),
    "fig5": lambda scale: fig5_hcfirst_distribution.run(scale),
    "fig6": lambda scale: fig6_hcfirst_location.run(scale),
    "fig7": lambda scale: fig7_rowpress.run(scale),
    "fig8": lambda scale: fig8_subarray_silhouette.run(scale),
    "fig9": lambda scale: fig9_spatial_features.run(scale),
    "fig10": lambda scale: fig10_aging.run(scale),
    "fig12": _fig12_quick,
    "fig13": lambda scale: fig13_adversarial.run(scale),
    "table3": lambda scale: table3_features.run(scale),
    "table5": lambda scale: table5_modules.run(scale),
    "sec64": lambda scale: sec64_hardware_cost.run(),
    "ablation-bins": lambda scale: ablation_bins.run(
        replace(scale, requests_per_core=2500)
    ),
}


def main(argv=None) -> int:
    names = (argv if argv is not None else sys.argv[1:]) or sorted(EXPERIMENTS)
    scale = ExperimentScale()
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
            return 1
        print("=" * 72)
        result = EXPERIMENTS[name](scale)
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
