"""Fig 5: distribution of HC_first across DRAM rows.

For each module the paper histograms measured HC_first over the 14
tested hammer counts, with error bars for min/max across banks and a
red line at the module's minimum.  This harness regenerates the
histograms and compares each module's minimum against Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


from repro.characterization.metrics import hc_first_histogram
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize,
)
from repro.faults.modules import module_by_label
from repro.faults.variation import HC_GRID

TITLE = "Fig 5: HC_first distribution across rows"


@dataclass
class Fig5Result:
    #: (module -> (grid value -> fraction of rows)), over all banks.
    histograms: Dict[str, Dict[int, float]]
    #: (module -> (grid value -> (min, max) fraction across banks)).
    bank_spread: Dict[str, Dict[int, Tuple[float, float]]]
    minima: Dict[str, int]
    paper_minima: Dict[str, int]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig5Result) -> ResultSet:
    display_rows = []
    minima_rows = []
    histogram_rows = []
    for label in sorted(result.histograms):
        hist = result.histograms[label]
        populated = {k: v for k, v in hist.items() if v > 0}
        summary = " ".join(
            f"{k // 1024}K:{v:.2f}" for k, v in sorted(populated.items())
        )
        display_rows.append(
            (
                label,
                f"{result.minima[label] // 1024}K",
                f"{result.paper_minima[label] // 1024}K",
                summary,
            )
        )
        minima_rows.append(
            (label, result.minima[label], result.paper_minima[label])
        )
        spread = result.bank_spread.get(label, {})
        for grid_value, fraction in sorted(hist.items()):
            low, high = spread.get(grid_value, (fraction, fraction))
            histogram_rows.append(
                (label, int(grid_value), float(fraction), float(low),
                 float(high))
            )
    return ResultSet(
        experiment="fig5",
        title=TITLE,
        tables=(
            ResultTable(
                name="histogram",
                headers=(
                    "module", "hc_first", "fraction", "bank_min", "bank_max",
                ),
                rows=histogram_rows,
            ),
            ResultTable(
                name="minima",
                headers=("module", "measured_min", "paper_min"),
                rows=minima_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=(
                    "module", "min (measured)", "min (Table 5)", "histogram",
                ),
                rows=display_rows,
            ),
        ),
        plots=(
            PlotSpec(
                name="histogram",
                kind="bar",
                table="histogram",
                x="hc_first",
                y=("fraction",),
                series="module",
                title=TITLE,
                xlabel="HC_first",
                ylabel="fraction of rows",
            ),
        ),
    )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig5Result:
    histograms: Dict[str, Dict[int, float]] = {}
    spreads: Dict[str, Dict[int, Tuple[float, float]]] = {}
    minima: Dict[str, int] = {}
    paper_minima: Dict[str, int] = {}
    for label in scale.modules:
        chars = characterize(label, scale)
        histograms[label] = hc_first_histogram(chars.all_hc_first(), HC_GRID)
        per_bank = [
            hc_first_histogram(profile.measured_hc_first, HC_GRID)
            for profile in chars.banks.values()
        ]
        spreads[label] = {
            grid_value: (
                min(h[grid_value] for h in per_bank),
                max(h[grid_value] for h in per_bank),
            )
            for grid_value in HC_GRID
        }
        minima[label] = chars.min_hc_first()
        paper_minima[label] = module_by_label(label).hc_min
    return Fig5Result(
        histograms=histograms,
        bank_spread=spreads,
        minima=minima,
        paper_minima=paper_minima,
    )


@register
class Fig5Experiment(Experiment):
    name = "fig5"
    description = "HC_first distribution across rows"
    paper_ref = "Fig. 5"

    def build_tasks(self, scale, orch):
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        absorb_characterizations(scale.modules, scale, outputs)
        return run(scale)

    def result_set(self, result):
        return result_set(result)
