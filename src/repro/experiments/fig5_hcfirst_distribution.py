"""Fig 5: distribution of HC_first across DRAM rows.

For each module the paper histograms measured HC_first over the 14
tested hammer counts, with error bars for min/max across banks and a
red line at the module's minimum.  This harness regenerates the
histograms and compares each module's minimum against Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.characterization.metrics import hc_first_histogram
from repro.experiments.common import ExperimentScale, characterize, format_table
from repro.faults.modules import module_by_label
from repro.faults.variation import HC_GRID


@dataclass
class Fig5Result:
    #: (module -> (grid value -> fraction of rows)), over all banks.
    histograms: Dict[str, Dict[int, float]]
    #: (module -> (grid value -> (min, max) fraction across banks)).
    bank_spread: Dict[str, Dict[int, Tuple[float, float]]]
    minima: Dict[str, int]
    paper_minima: Dict[str, int]

    def render(self) -> str:
        rows = []
        for label in sorted(self.histograms):
            hist = self.histograms[label]
            populated = {k: v for k, v in hist.items() if v > 0}
            summary = " ".join(
                f"{k // 1024}K:{v:.2f}" for k, v in sorted(populated.items())
            )
            rows.append(
                [
                    label,
                    f"{self.minima[label] // 1024}K",
                    f"{self.paper_minima[label] // 1024}K",
                    summary,
                ]
            )
        return "Fig 5: HC_first distribution across rows\n\n" + format_table(
            ["module", "min (measured)", "min (Table 5)", "histogram"], rows
        )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig5Result:
    histograms: Dict[str, Dict[int, float]] = {}
    spreads: Dict[str, Dict[int, Tuple[float, float]]] = {}
    minima: Dict[str, int] = {}
    paper_minima: Dict[str, int] = {}
    for label in scale.modules:
        chars = characterize(label, scale)
        histograms[label] = hc_first_histogram(chars.all_hc_first(), HC_GRID)
        per_bank = [
            hc_first_histogram(profile.measured_hc_first, HC_GRID)
            for profile in chars.banks.values()
        ]
        spreads[label] = {
            grid_value: (
                min(h[grid_value] for h in per_bank),
                max(h[grid_value] for h in per_bank),
            )
            for grid_value in HC_GRID
        }
        minima[label] = chars.min_hc_first()
        paper_minima[label] = module_by_label(label).hc_min
    return Fig5Result(
        histograms=histograms,
        bank_spread=spreads,
        minima=minima,
        paper_minima=paper_minima,
    )
