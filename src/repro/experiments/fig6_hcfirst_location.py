"""Fig 6: HC_first versus relative row location.

Unlike BER (Fig 4), HC_first shows *no* regular location trend
(Obsv 9): the per-location variation is dominated by row-to-row
noise.  This harness bins HC_first (normalized to the bank minimum)
by location and reports both the binned curve and an irregularity
statistic (lag-1 autocorrelation of per-row values), which should be
near zero for the uncorrelated modules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize,
)

TITLE = "Fig 6: HC_first vs relative row location (irregular, Obsv 9)"


@dataclass
class Fig6Result:
    #: module -> binned mean of HC_first normalized to the bank min.
    binned: Dict[str, np.ndarray]
    #: module -> lag-1 autocorrelation of per-row HC_first.
    autocorrelation: Dict[str, float]
    #: module -> max/min of the normalized values (spread, e.g. 8-20x).
    spread: Dict[str, float]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig6Result) -> ResultSet:
    stat_rows = [
        (label, result.autocorrelation[label], result.spread[label])
        for label in sorted(result.binned)
    ]
    curve_rows = [
        (label, index, float(value))
        for label in sorted(result.binned)
        for index, value in enumerate(result.binned[label])
    ]
    return ResultSet(
        experiment="fig6",
        title=TITLE,
        tables=(
            ResultTable(
                name="statistics",
                headers=("module", "lag1_autocorrelation", "spread"),
                rows=stat_rows,
            ),
            ResultTable(
                name="binned",
                headers=("module", "bin", "normalized_hc_first"),
                rows=curve_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=("module", "lag-1 autocorr", "max/min HC_first"),
                rows=[
                    (label, f"{autocorrelation:+.3f}", f"{spread:.1f}x")
                    for label, autocorrelation, spread in stat_rows
                ],
            ),
        ),
        plots=(
            PlotSpec(
                name="binned",
                kind="line",
                table="binned",
                x="bin",
                y=("normalized_hc_first",),
                series="module",
                title=TITLE,
                xlabel="location bin",
                ylabel="HC_first / bank min",
            ),
        ),
    )


def run(
    scale: ExperimentScale = ExperimentScale(), *, n_bins: int = 64
) -> Fig6Result:
    binned: Dict[str, np.ndarray] = {}
    autocorrelation: Dict[str, float] = {}
    spread: Dict[str, float] = {}
    for label in scale.modules:
        chars = characterize(label, scale)
        bank = chars.banks[scale.banks[0]]
        values = bank.measured_hc_first.astype(np.float64)
        normalized = values / values.min()
        x = bank.relative_locations()
        indices = np.minimum((x * n_bins).astype(int), n_bins - 1)
        sums = np.bincount(indices, weights=normalized, minlength=n_bins)
        counts = np.maximum(np.bincount(indices, minlength=n_bins), 1)
        binned[label] = sums / counts
        centered = normalized - normalized.mean()
        denom = float((centered**2).sum())
        autocorrelation[label] = (
            float((centered[:-1] * centered[1:]).sum() / denom) if denom else 0.0
        )
        spread[label] = float(normalized.max())
    return Fig6Result(binned=binned, autocorrelation=autocorrelation, spread=spread)


@register
class Fig6Experiment(Experiment):
    name = "fig6"
    description = "HC_first vs relative row location"
    paper_ref = "Fig. 6"

    def build_tasks(self, scale, orch):
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        absorb_characterizations(scale.modules, scale, outputs)
        return run(scale)

    def result_set(self, result):
        return result_set(result)
