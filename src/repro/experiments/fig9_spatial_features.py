"""Fig 9: fraction of spatial features vs F1-score threshold.

For every module, every address-bit feature predicts the binarized
HC_first class; the figure plots, per module, the fraction of
features whose F1 exceeds a sweep of thresholds.  The paper's
observations: the fraction drops drastically between 0.6 and 0.7, no
feature exceeds 0.8, and only S0/S1/S3/S4 keep features above 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.correlation import FeatureCorrelation, correlate_features
from repro.analysis.features import extract_features
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize,
)
from repro.faults.modules import module_by_label

#: The figure sweeps thresholds 0.0 .. 1.0 in steps of 0.1.
F1_THRESHOLDS: Tuple[float, ...] = tuple(round(t / 10, 1) for t in range(11))

TITLE = "Fig 9: fraction of spatial features above F1 threshold"


@dataclass
class Fig9Result:
    #: module -> threshold -> fraction of features above it.
    fractions: Dict[str, Dict[float, float]]
    correlations: Dict[str, List[FeatureCorrelation]]

    def modules_with_strong_features(self, threshold: float = 0.7) -> List[str]:
        return sorted(
            label
            for label, curve in self.fractions.items()
            if curve[threshold] > 0
        )

    def max_f1(self) -> float:
        return max(
            c.f1 for cs in self.correlations.values() for c in cs
        )

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig9Result) -> ResultSet:
    strong = ", ".join(result.modules_with_strong_features()) or "none"
    fraction_rows = [
        (label, float(threshold), float(result.fractions[label][threshold]))
        for label in sorted(result.fractions)
        for threshold in F1_THRESHOLDS
    ]
    correlation_rows = [
        (label, c.feature.short_name, float(c.f1))
        for label in sorted(result.correlations)
        for c in result.correlations[label]
    ]
    return ResultSet(
        experiment="fig9",
        title=TITLE,
        scalars={
            "max_f1": result.max_f1(),
            "strong_modules": strong,
        },
        tables=(
            ResultTable(
                name="fractions",
                headers=("module", "threshold", "fraction"),
                rows=fraction_rows,
            ),
            ResultTable(
                name="correlations",
                headers=("module", "feature", "f1"),
                rows=correlation_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=("module",)
                + tuple(f"{t:.1f}" for t in F1_THRESHOLDS),
                rows=[
                    (label,)
                    + tuple(
                        f"{result.fractions[label][t]:.2f}"
                        for t in F1_THRESHOLDS
                    )
                    for label in sorted(result.fractions)
                ],
            ),
            TextBlock(
                f"\n\nmodules with F1 > 0.7 features: {strong}"
                f"\nmaximum F1 observed: {result.max_f1():.3f}"
            ),
        ),
        plots=(
            PlotSpec(
                name="fractions",
                kind="line",
                table="fractions",
                x="threshold",
                y=("fraction",),
                series="module",
                title=TITLE,
                xlabel="F1 threshold",
                ylabel="fraction of features",
            ),
        ),
    )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig9Result:
    fractions: Dict[str, Dict[float, float]] = {}
    correlations: Dict[str, List[FeatureCorrelation]] = {}
    for label in scale.modules:
        spec = module_by_label(label)
        chars = characterize(label, scale)
        measured = np.concatenate(
            [chars.banks[bank].measured_hc_first for bank in sorted(chars.banks)]
        )
        params = spec.variation_params(scale.rows_for(label))
        features, matrix, _ = extract_features(
            scale.rows_for(label), params.subarray_rows, tuple(sorted(chars.banks))
        )
        result = correlate_features(features, matrix, measured)
        correlations[label] = result
        f1s = np.array([c.f1 for c in result])
        fractions[label] = {
            t: float(np.mean(f1s > t)) for t in F1_THRESHOLDS
        }
    return Fig9Result(fractions=fractions, correlations=correlations)


@register
class Fig9Experiment(Experiment):
    name = "fig9"
    description = "fraction of spatial features above F1 threshold"
    paper_ref = "Fig. 9"

    def build_tasks(self, scale, orch):
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        absorb_characterizations(scale.modules, scale, outputs)
        return run(scale)

    def result_set(self, result):
        return result_set(result)
