"""Fig 9: fraction of spatial features vs F1-score threshold.

For every module, every address-bit feature predicts the binarized
HC_first class; the figure plots, per module, the fraction of
features whose F1 exceeds a sweep of thresholds.  The paper's
observations: the fraction drops drastically between 0.6 and 0.7, no
feature exceeds 0.8, and only S0/S1/S3/S4 keep features above 0.7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.correlation import FeatureCorrelation, correlate_features
from repro.analysis.features import extract_features
from repro.experiments.common import ExperimentScale, characterize, format_table
from repro.faults.modules import module_by_label

#: The figure sweeps thresholds 0.0 .. 1.0 in steps of 0.1.
F1_THRESHOLDS: Tuple[float, ...] = tuple(round(t / 10, 1) for t in range(11))


@dataclass
class Fig9Result:
    #: module -> threshold -> fraction of features above it.
    fractions: Dict[str, Dict[float, float]]
    correlations: Dict[str, List[FeatureCorrelation]]

    def modules_with_strong_features(self, threshold: float = 0.7) -> List[str]:
        return sorted(
            label
            for label, curve in self.fractions.items()
            if curve[threshold] > 0
        )

    def max_f1(self) -> float:
        return max(
            c.f1 for cs in self.correlations.values() for c in cs
        )

    def render(self) -> str:
        rows = []
        for label in sorted(self.fractions):
            curve = self.fractions[label]
            rows.append(
                [label]
                + [f"{curve[t]:.2f}" for t in F1_THRESHOLDS]
            )
        headers = ["module"] + [f"{t:.1f}" for t in F1_THRESHOLDS]
        strong = ", ".join(self.modules_with_strong_features()) or "none"
        return (
            "Fig 9: fraction of spatial features above F1 threshold\n\n"
            + format_table(headers, rows)
            + f"\n\nmodules with F1 > 0.7 features: {strong}"
            + f"\nmaximum F1 observed: {self.max_f1():.3f}"
        )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig9Result:
    fractions: Dict[str, Dict[float, float]] = {}
    correlations: Dict[str, List[FeatureCorrelation]] = {}
    for label in scale.modules:
        spec = module_by_label(label)
        chars = characterize(label, scale)
        measured = np.concatenate(
            [chars.banks[bank].measured_hc_first for bank in sorted(chars.banks)]
        )
        params = spec.variation_params(scale.rows_per_bank)
        features, matrix, _ = extract_features(
            scale.rows_per_bank, params.subarray_rows, tuple(sorted(chars.banks))
        )
        result = correlate_features(features, matrix, measured)
        correlations[label] = result
        f1s = np.array([c.f1 for c in result])
        fractions[label] = {
            t: float(np.mean(f1s > t)) for t in F1_THRESHOLDS
        }
    return Fig9Result(fractions=fractions, correlations=correlations)
