"""The recipe-sweep engine shared by the CLI and the HTTP service.

``runner recipe run`` and the experiment service's submission manager
execute the same loop: for every ``(experiment, seed, scale)`` cell of
a :class:`~repro.experiments.recipes.Recipe`, run the experiment
through an :class:`~repro.orchestration.OrchestrationContext`, stamp
``meta.recipe`` + ``meta.provenance``, emit the artifact, and finally
aggregate the seed matrix into one ``report.html``.  This module is
the single home of that loop and of the artifact-layout and report
conventions, so a sweep submitted over HTTP produces artifacts
**byte-identical** (modulo the ``meta.provenance`` execution record,
which deliberately says *how* each artifact was computed) to the same
recipe run from the command line.

Artifact layout under a sweep's output directory::

    <out>/seed<seed>/<experiment>.json     one ResultSet per cell
    <out>/seed<seed>/<device>/...          with a recipe `devices` axis
    <out>/report.html                      aggregated across seeds

All files are published with atomic renames
(:func:`repro.experiments.render.atomic_write_text`), so HTTP readers
polling a directory mid-sweep see complete artifacts or none.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.experiments.api import ExperimentError, all_experiments
from repro.experiments.recipes import Recipe
from repro.experiments.render import atomic_write_text, get_renderer
from repro.orchestration import OrchestrationContext

__all__ = [
    "SweepOutcome",
    "recipe_out_dir",
    "run_recipe_sweep",
    "stamp_provenance",
    "stats_snapshot",
    "write_recipe_report",
]


def stats_snapshot(orch: OrchestrationContext) -> tuple:
    """Orchestration counters *now*; pair with :func:`stamp_provenance`."""
    provenance_seen = (
        len(orch.cache.provenance_events) if orch.cache is not None else 0
    )
    return (
        orch.stats.submitted,
        orch.stats.hits,
        orch.stats.executed,
        provenance_seen,
    )


def stamp_provenance(
    result_set, orch: OrchestrationContext, before: tuple
) -> None:
    """Record how this ResultSet was computed (shown by the report).

    ``before`` is the :func:`stats_snapshot` taken just before the
    experiment ran, so the task counts are per-experiment even though
    the context is shared by the whole CLI invocation.  When a cache
    is attached, ``workers`` maps each worker label (``host:pid``)
    that computed one of this experiment's results -- this process,
    a pool worker's parent, or any ``runner worker`` on any host --
    to its result count, straight from the per-entry provenance
    stamps in the cache; ``profile`` summarizes the per-task timing
    stamps (:data:`~repro.orchestration.PROFILE_FIELDS`) of the
    entries this experiment touched that carry them.
    """
    submitted, hits, executed, provenance_before = before
    now_submitted, now_hits, now_executed, _ = stats_snapshot(orch)
    provenance = {
        "backend": orch.backend.describe(),
        "cache_dir": (
            str(orch.cache.directory) if orch.cache is not None else None
        ),
        "tasks": {
            "submitted": now_submitted - submitted,
            "cache_hits": now_hits - hits,
            "executed": now_executed - executed,
        },
    }
    if orch.cache is not None:
        # Slice the append-only event log, not the first-seen dict:
        # a repeated experiment's cache hits re-log already-seen
        # entry keys, so its slice is never empty.  Dedup keys within
        # the slice (a store immediately re-read counts once) and
        # resolve worker labels through the dict, which the queue
        # backend blanks for foreign submitters' entries.
        workers: dict = {}
        profiles: list = []
        events = orch.cache.provenance_events[provenance_before:]
        for entry_key in dict.fromkeys(events):
            worker = orch.cache.provenance_seen.get(entry_key)
            if worker is not None:
                workers[worker] = workers.get(worker, 0) + 1
            profile = orch.cache.profile_seen.get(entry_key)
            if profile is not None:
                profiles.append(profile)
        provenance["workers"] = {
            worker: workers[worker] for worker in sorted(workers)
        }
        if profiles:
            from repro.orchestration.status import summarize_profiles

            provenance["profile"] = summarize_profiles(profiles)
    result_set.meta["provenance"] = provenance


def recipe_out_dir(
    out_dir: Path, recipe: Recipe, seed: int, *, device: Optional[str] = None
) -> Path:
    """Deterministic artifact layout: one subdirectory per seed.

    Recipes with a ``devices`` axis nest one more level
    (``seed0/lpddr4-3200/...``) so a multi-generation sweep never
    collides the same experiment's artifacts.
    """
    seed_dir = out_dir / f"seed{seed}"
    if device is None:
        return seed_dir
    return seed_dir / device.lower()


def write_recipe_report(
    recipe: Recipe, smoke: bool, completed: List[tuple], out_dir: Path
) -> Path:
    """``<out>/report.html`` for the cells of one recipe run.

    The cells aggregate **in memory** (per experiment and device,
    across the seed matrix), so the report works with any ``--format``
    -- the on-disk artifacts need not be JSON.  ``completed`` holds
    ``(experiment_name, seed, device, result_set)`` tuples (``device``
    is ``None`` without a devices axis).  The page is published
    atomically so an HTTP reader never sees half a report.
    """
    from repro.experiments.aggregate import ResultSetAggregate
    from repro.experiments.report import build_report

    sections = []
    for experiment_name in recipe.experiments:
        # One section per (experiment, device) cell group: a devices
        # axis must not aggregate DDR4 numbers with DDR5 numbers.
        for device in recipe.devices or (None,):
            members = [
                (seed, result_set)
                for name, seed, cell_device, result_set in completed
                if name == experiment_name and cell_device == device
            ]
            if not members:
                continue  # every seed of this cell group failed
            if len(members) == 1:
                sections.append(members[0][1])
            else:
                sections.append(ResultSetAggregate.from_result_sets(
                    [result_set for _, result_set in members],
                    [seed for seed, _ in members],
                ).to_result_set())
    seeds = ", ".join(str(seed) for seed in recipe.seeds)
    html = build_report(
        sections,
        title=f"{recipe.name} v{recipe.version}",
        subtitle=f"{recipe.description} -- seeds {seeds}"
                 + (" (smoke scale)" if smoke else ""),
    )
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / "report.html"
    atomic_write_text(path, html)
    return path


@dataclass
class SweepOutcome:
    """What one :func:`run_recipe_sweep` call produced."""

    #: ``experiment@seedN`` labels of cells that raised ExperimentError.
    failed_cells: List[str] = field(default_factory=list)
    #: Artifact files written, in completion order.
    artifacts: List[Path] = field(default_factory=list)
    #: ``<out>/report.html`` (``None`` when every cell failed or the
    #: seed matrices misaligned -- the per-cell artifacts survive).
    report_path: Optional[Path] = None
    #: Why the report is missing despite completed cells, if so.
    report_error: Optional[str] = None


def run_recipe_sweep(
    recipe: Recipe,
    orch: OrchestrationContext,
    out_dir: Path,
    *,
    smoke: bool = False,
    report: bool = True,
    format_name: str = "json",
    log: Optional[Callable[[str], None]] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> SweepOutcome:
    """Execute every cell of ``recipe`` and write its artifact tree.

    The service's submission manager calls this with a queue-backend
    context; the cells publish through the shared cache exactly like
    ``runner recipe run --backend queue``.  Backend failures
    (a task that died on a worker, misconfiguration) propagate --
    the whole sweep is wrong, not one cell; per-cell
    :class:`ExperimentError` is recorded and the sweep continues,
    mirroring the CLI.

    ``progress(cells_done, cells_total)`` is called once per finished
    cell (failed cells count as done -- it tracks sweep position, not
    success), so callers like the experiment service can surface live
    completion counts without parsing the log stream.
    """
    log = log or (lambda message: None)
    recipe.validate_experiments()
    runs = recipe.runs(smoke=smoke)
    experiments = all_experiments()
    renderer = get_renderer(format_name)
    renderer.check_available()
    out_dir = Path(out_dir)
    outcome = SweepOutcome()
    completed: List[Tuple[str, int, Optional[str], object]] = []
    cells_total = len(runs)
    if progress is not None:
        progress(0, cells_total)

    for cells_done, (experiment_name, seed, scale) in enumerate(runs, 1):
        cell = f"{experiment_name}@seed{seed}"
        if scale.device is not None:
            cell = f"{cell}/{scale.device}"
        log(f"[recipe {recipe.name} v{recipe.version}] {cell}")
        before = stats_snapshot(orch)
        try:
            result_set = experiments[experiment_name].run_result_set(
                scale, orch
            )
        except ExperimentError as error:
            log(f"error: {cell}: {error}")
            outcome.failed_cells.append(cell)
            if progress is not None:
                progress(cells_done, cells_total)
            continue
        if scale.device is not None:
            result_set.title = f"{result_set.title} [{scale.device}]"
        result_set.meta["recipe"] = {
            "name": recipe.name,
            "version": recipe.version,
            "seed": seed,
            "smoke": smoke,
        }
        stamp_provenance(result_set, orch, before)
        outcome.artifacts.extend(
            renderer.write(
                result_set,
                recipe_out_dir(out_dir, recipe, seed, device=scale.device),
            )
        )
        if report:
            completed.append((experiment_name, seed, scale.device, result_set))
        if progress is not None:
            progress(cells_done, cells_total)

    if report and completed:
        from repro.experiments.aggregate import AggregationError

        try:
            outcome.report_path = write_recipe_report(
                recipe, smoke, completed, out_dir
            )
        except AggregationError as error:
            # The per-seed artifacts are all on disk by now; losing
            # the report must not look like losing the sweep.
            outcome.report_error = str(error)
            log(f"error: report aggregation failed: {error}")
    return outcome
