"""Tables 1 and 5: the tested-module registry with measured HC_first.

Regenerates the appendix table: module identity (vendor, density, die
revision, organization, speed) plus the minimum/average/maximum
measured HC_first, and compares the measured statistics against the
paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.common import (
    ExperimentScale,
    characterize_modules,
    format_table,
)
from repro.faults.modules import MODULES, module_by_label
from repro.orchestration import OrchestrationContext


@dataclass
class Table5Row:
    label: str
    vendor: str
    freq_mts: int
    density_gb: int
    die_revision: str
    organization: str
    rows_per_bank: int
    measured_min: int
    measured_avg: float
    measured_max: int
    paper_min: int
    paper_avg: int
    paper_max: int


@dataclass
class Table5Result:
    rows: Dict[str, Table5Row]

    def render(self) -> str:
        table_rows = []
        for label in sorted(self.rows):
            row = self.rows[label]
            table_rows.append(
                [
                    row.label,
                    row.vendor,
                    f"{row.density_gb}Gb-{row.die_revision}",
                    row.organization,
                    f"{row.measured_min // 1024}K",
                    f"{row.measured_avg / 1024:.1f}K",
                    f"{row.measured_max // 1024}K",
                    f"{row.paper_min // 1024}K",
                    f"{row.paper_avg / 1024:.1f}K",
                    f"{row.paper_max // 1024}K",
                ]
            )
        return (
            "Table 5: tested modules, measured vs paper HC_first\n\n"
            + format_table(
                [
                    "module", "vendor", "die", "org",
                    "min", "avg", "max",
                    "min(p)", "avg(p)", "max(p)",
                ],
                table_rows,
            )
        )


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    orchestration: Optional[OrchestrationContext] = None,
) -> Table5Result:
    # One task per (module, bank): the whole registry characterizes in
    # parallel instead of module-by-module.
    characterizations = characterize_modules(
        scale.modules, scale, orchestration=orchestration
    )
    rows: Dict[str, Table5Row] = {}
    for label in scale.modules:
        spec = module_by_label(label)
        chars = characterizations[label]
        measured = chars.all_hc_first()
        rows[label] = Table5Row(
            label=label,
            vendor=spec.manufacturer.display_name,
            freq_mts=spec.freq_mts,
            density_gb=spec.density_gb,
            die_revision=spec.die_revision,
            organization=spec.organization,
            rows_per_bank=spec.rows_per_bank,
            measured_min=int(measured.min()),
            measured_avg=float(measured.mean()),
            measured_max=int(measured.max()),
            paper_min=spec.hc_min,
            paper_avg=spec.hc_avg,
            paper_max=spec.hc_max,
        )
    return Table5Result(rows=rows)
