"""Tables 1 and 5: the tested-module registry with measured HC_first.

Regenerates the appendix table: module identity (vendor, density, die
revision, organization, speed) plus the minimum/average/maximum
measured HC_first, and compares the measured statistics against the
paper's published values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize_modules,
)
from repro.faults.modules import module_by_label
from repro.orchestration import OrchestrationContext

TITLE = "Table 5: tested modules, measured vs paper HC_first"


@dataclass
class Table5Row:
    label: str
    vendor: str
    freq_mts: int
    density_gb: int
    die_revision: str
    organization: str
    rows_per_bank: int
    measured_min: int
    measured_avg: float
    measured_max: int
    paper_min: int
    paper_avg: int
    paper_max: int


@dataclass
class Table5Result:
    rows: Dict[str, Table5Row]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Table5Result) -> ResultSet:
    display_rows = []
    data_rows = []
    for label in sorted(result.rows):
        row = result.rows[label]
        display_rows.append(
            (
                row.label,
                row.vendor,
                f"{row.density_gb}Gb-{row.die_revision}",
                row.organization,
                f"{row.measured_min // 1024}K",
                f"{row.measured_avg / 1024:.1f}K",
                f"{row.measured_max // 1024}K",
                f"{row.paper_min // 1024}K",
                f"{row.paper_avg / 1024:.1f}K",
                f"{row.paper_max // 1024}K",
            )
        )
        data_rows.append(
            (
                row.label,
                row.vendor,
                row.freq_mts,
                row.density_gb,
                row.die_revision,
                row.organization,
                row.rows_per_bank,
                row.measured_min,
                row.measured_avg,
                row.measured_max,
                row.paper_min,
                row.paper_avg,
                row.paper_max,
            )
        )
    return ResultSet(
        experiment="table5",
        title=TITLE,
        tables=(
            ResultTable(
                name="modules",
                headers=(
                    "module", "vendor", "freq_mts", "density_gb",
                    "die_revision", "organization", "rows_per_bank",
                    "measured_min", "measured_avg", "measured_max",
                    "paper_min", "paper_avg", "paper_max",
                ),
                rows=data_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=(
                    "module", "vendor", "die", "org",
                    "min", "avg", "max",
                    "min(p)", "avg(p)", "max(p)",
                ),
                rows=display_rows,
            ),
        ),
        plots=(
            PlotSpec(
                name="hc_first",
                kind="bar",
                table="modules",
                x="module",
                y=("measured_avg", "paper_avg"),
                title=TITLE,
                ylabel="average HC_first",
            ),
        ),
    )


def _assemble(
    scale: ExperimentScale, characterizations
) -> Table5Result:
    rows: Dict[str, Table5Row] = {}
    for label in scale.modules:
        spec = module_by_label(label)
        chars = characterizations[label]
        measured = chars.all_hc_first()
        rows[label] = Table5Row(
            label=label,
            vendor=spec.manufacturer.display_name,
            freq_mts=spec.freq_mts,
            density_gb=spec.density_gb,
            die_revision=spec.die_revision,
            organization=spec.organization,
            rows_per_bank=spec.rows_per_bank,
            measured_min=int(measured.min()),
            measured_avg=float(measured.mean()),
            measured_max=int(measured.max()),
            paper_min=spec.hc_min,
            paper_avg=spec.hc_avg,
            paper_max=spec.hc_max,
        )
    return Table5Result(rows=rows)


@register
class Table5Experiment(Experiment):
    name = "table5"
    description = "tested-module registry, measured vs paper HC_first"
    paper_ref = "Table 5"

    def build_tasks(self, scale, orch):
        # One task per (module, bank): the whole registry characterizes
        # in parallel instead of module-by-module.
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        characterizations = absorb_characterizations(
            scale.modules, scale, outputs
        )
        return _assemble(scale, characterizations)

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    orchestration: Optional[OrchestrationContext] = None,
) -> Table5Result:
    characterizations = characterize_modules(
        scale.modules, scale, orchestration=orchestration
    )
    return _assemble(scale, characterizations)
