"""Fig 4: BER versus relative row location.

The paper plots each row's BER at HC = 128K, normalized to the
module's minimum, against the row's relative location in its bank,
with min/max shading across banks.  This harness bins locations and
regenerates the per-module curves, verifying the Obsv 4 periodicity
and the Obsv 5 chunk effect for M1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize,
)

TITLE = "Fig 4: normalized BER vs relative row location"


@dataclass
class LocationCurve:
    """Binned normalized-BER curve for one module."""

    centers: np.ndarray
    mean: np.ndarray
    minimum: np.ndarray
    maximum: np.ndarray

    def peak_to_trough(self) -> float:
        return float(self.mean.max() / self.mean.min())


@dataclass
class Fig4Result:
    curves: Dict[str, LocationCurve]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig4Result) -> ResultSet:
    lines = [TITLE, ""]
    curve_rows = []
    summary_rows = []
    for label, curve in sorted(result.curves.items()):
        stride = len(curve.centers) // 10 or 1
        sampled = ", ".join(
            f"{x:.2f}:{y:.2f}"
            for x, y in zip(curve.centers[::stride], curve.mean[::stride])
        )
        lines.append(
            f"{label}: peak/trough={curve.peak_to_trough():.2f}  {sampled}"
        )
        summary_rows.append((label, curve.peak_to_trough()))
        curve_rows.extend(
            (label, float(x), float(mean), float(lo), float(hi))
            for x, mean, lo, hi in zip(
                curve.centers, curve.mean, curve.minimum, curve.maximum
            )
        )
    return ResultSet(
        experiment="fig4",
        title=TITLE,
        tables=(
            ResultTable(
                name="curves",
                headers=("module", "center", "mean", "min", "max"),
                rows=curve_rows,
            ),
            ResultTable(
                name="peak_to_trough",
                headers=("module", "ratio"),
                rows=summary_rows,
            ),
        ),
        layout=(TextBlock("\n".join(lines)),),
        plots=(
            PlotSpec(
                name="curves",
                kind="line",
                table="curves",
                x="center",
                y=("mean",),
                series="module",
                title=TITLE,
                xlabel="relative row location",
                ylabel="BER / module minimum",
            ),
        ),
    )


def run(
    scale: ExperimentScale = ExperimentScale(), *, n_bins: int = 64
) -> Fig4Result:
    curves: Dict[str, LocationCurve] = {}
    for label in scale.modules:
        chars = characterize(label, scale)
        # Normalize to the module-wide minimum across all tested banks,
        # exactly as the figure's y-axis specifies.
        module_min = min(p.ber_at_128k.min() for p in chars.banks.values())
        per_bank_binned: List[np.ndarray] = []
        centers = (np.arange(n_bins) + 0.5) / n_bins
        for profile in chars.banks.values():
            x = profile.relative_locations()
            normalized = profile.ber_at_128k / module_min
            indices = np.minimum((x * n_bins).astype(int), n_bins - 1)
            sums = np.bincount(indices, weights=normalized, minlength=n_bins)
            counts = np.maximum(np.bincount(indices, minlength=n_bins), 1)
            per_bank_binned.append(sums / counts)
        stack = np.stack(per_bank_binned)
        curves[label] = LocationCurve(
            centers=centers,
            mean=stack.mean(axis=0),
            minimum=stack.min(axis=0),
            maximum=stack.max(axis=0),
        )
    return Fig4Result(curves=curves)


@register
class Fig4Experiment(Experiment):
    name = "fig4"
    description = "normalized BER vs relative row location"
    paper_ref = "Fig. 4"

    def build_tasks(self, scale, orch):
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        absorb_characterizations(scale.modules, scale, outputs)
        return run(scale)

    def result_set(self, result):
        return result_set(result)
