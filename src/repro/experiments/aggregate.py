"""Multi-seed aggregation of ResultSet artifacts.

A recipe run over a seed matrix leaves one artifact tree per seed
(``<out>/seed0/fig12.json``, ``<out>/seed1/fig12.json``, ...; see
EXPERIMENTS.md).  This module turns those per-seed ResultSets into
**one** ResultSet with variance statistics:

* tables are aligned row-by-row across seeds; every numeric column
  whose values differ between seeds is replaced by four columns --
  ``<name>_mean``, ``<name>_stddev`` (population), ``<name>_min``,
  ``<name>_max`` -- while identical columns (keys and axes such as
  ``defense`` or ``hc_first``) pass through unchanged;
* scalars aggregate the same way (``n_mixes`` stays a plain number,
  a seed-dependent headline becomes ``<name>_mean`` etc.);
* every PlotSpec is rewritten to plot the mean column and gains a
  ``ybands`` min--max envelope, which both the SVG plotter and the
  mpl renderer shade behind the mean line;
* the layout is regenerated generically (aggregated artifacts get
  uniform stats tables rather than each harness's bespoke text), so
  the existing text/CSV/LaTeX renderers all show the stats columns.

Because the output is an ordinary :class:`ResultSet`, everything
downstream -- ``--format text|csv|latex|html``, the HTML report, the
JSON round-trip -- works on aggregates with no special cases.

The entry points are :meth:`ResultSetAggregate.from_result_sets` (in
memory, used by ``recipe run --report``) and
:func:`collect_report_sections` (walks an artifact tree on disk, used
by ``runner report``).
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.api import (
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    format_scalar,
    is_number,
)

__all__ = [
    "AggregationError",
    "ResultSetAggregate",
    "collect_report_sections",
    "discover_result_sets",
]

#: The four statistics appended per aggregated column, in order.
STAT_SUFFIXES = ("mean", "stddev", "min", "max")

#: Path components recognized as seed partitions of a recipe tree.
_SEED_DIR = re.compile(r"^seed(-?\d+)$")


class AggregationError(ValueError):
    """Artifacts cannot be aligned (user-facing, one-line)."""


_is_number = is_number


def _stats(values: Sequence[float]) -> Tuple[float, float, float, float]:
    """(mean, population stddev, min, max) of the non-None samples."""
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return (mean, math.sqrt(variance), min(values), max(values))


@dataclass(frozen=True)
class ResultSetAggregate:
    """One experiment's ResultSets across a seed matrix, aligned.

    ``members`` are ordered by seed; ``seeds`` is parallel to it
    (``None`` when a member's seed could not be determined).
    """

    experiment: str
    members: Tuple[ResultSet, ...]
    seeds: Tuple[Optional[int], ...]

    @classmethod
    def from_result_sets(
        cls,
        members: Sequence[ResultSet],
        seeds: Optional[Sequence[Optional[int]]] = None,
    ) -> "ResultSetAggregate":
        members = tuple(members)
        if not members:
            raise AggregationError("nothing to aggregate")
        names = {m.experiment for m in members}
        if len(names) != 1:
            raise AggregationError(
                f"cannot aggregate across experiments: {sorted(names)}"
            )
        if seeds is None:
            seeds = [_member_seed(m) for m in members]
        seeds = tuple(seeds)
        if len(seeds) != len(members):
            raise AggregationError("seeds and members differ in length")
        order = sorted(
            range(len(members)),
            key=lambda i: (seeds[i] is None, seeds[i]),
        )
        return cls(
            experiment=members[0].experiment,
            members=tuple(members[i] for i in order),
            seeds=tuple(seeds[i] for i in order),
        )

    # ------------------------------------------------------------------

    def to_result_set(self) -> ResultSet:
        """The aggregated artifact (see the module docstring)."""
        first = self.members[0]
        reference_names = tuple(t.name for t in first.tables)
        for member, seed in zip(self.members[1:], self.seeds[1:]):
            names = tuple(t.name for t in member.tables)
            if names != reference_names:
                # Keying alignment on the first member alone would
                # silently drop tables the first seed lacks.
                raise AggregationError(
                    f"{self.experiment}: table sets differ across "
                    f"seeds: {reference_names} vs {names} (seed "
                    f"{seed}); artifacts come from different code "
                    "versions"
                )
        # Align (and validate) each table across seeds exactly once.
        aligned = {
            table.name: self._aligned_tables(table.name)
            for table in first.tables
        }
        varying = self._varying_columns(aligned)
        tables = tuple(
            self._aggregate_table(name, aligned[name], varying[name])
            for name in aligned
        )
        aggregated = {
            (table_name, column)
            for table_name, columns in varying.items()
            for column in columns
        }
        scalars = self._aggregate_scalars()
        plots = tuple(
            self._rewrite_plot(plot, aggregated) for plot in first.plots
        )
        result = ResultSet(
            experiment=self.experiment,
            title=first.title,
            scalars=scalars,
            tables=tables,
            plots=tuple(p for p in plots if p is not None),
            meta=self._merge_meta(),
        )
        result.layout = _generic_layout(result, len(self.members))
        return result

    # ------------------------------------------------------------------
    # Table alignment
    # ------------------------------------------------------------------

    def _aligned_tables(self, name: str) -> List[ResultTable]:
        tables = []
        for member, seed in zip(self.members, self.seeds):
            try:
                tables.append(member.table(name))
            except KeyError:
                raise AggregationError(
                    f"{self.experiment}: seed {seed} artifact has no "
                    f"table {name!r}"
                ) from None
        reference = tables[0]
        for table, seed in zip(tables[1:], self.seeds[1:]):
            if table.headers != reference.headers:
                raise AggregationError(
                    f"{self.experiment}.{name}: headers differ across "
                    f"seeds: {reference.headers} vs {table.headers} "
                    f"(seed {seed})"
                )
            if len(table.rows) != len(reference.rows):
                raise AggregationError(
                    f"{self.experiment}.{name}: row counts differ "
                    f"across seeds ({len(reference.rows)} vs "
                    f"{len(table.rows)}, seed {seed}); artifacts were "
                    "produced at different scales"
                )
        return tables

    def _varying_columns(
        self, aligned: Dict[str, List[ResultTable]]
    ) -> Dict[str, List[str]]:
        """``{table: [column, ...]}`` of seed-dependent columns."""
        varying: Dict[str, List[str]] = {}
        for name, tables in aligned.items():
            columns = []
            for index, header in enumerate(tables[0].headers):
                cells = [
                    (row[index] for row in member.rows)
                    for member in tables
                ]
                if any(len(set(values)) > 1 for values in zip(*cells)):
                    columns.append(header)
            varying[name] = columns
        return varying

    def _aggregate_table(
        self,
        name: str,
        aligned: List[ResultTable],
        varying_columns: Sequence[str],
    ) -> ResultTable:
        reference = aligned[0]
        varying = set(varying_columns)

        headers: List[str] = []
        for header in reference.headers:
            if header in varying:
                headers.extend(
                    f"{header}_{suffix}" for suffix in STAT_SUFFIXES
                )
            else:
                headers.append(header)

        rows = []
        for row_index in range(len(reference.rows)):
            row: List = []
            for column_index, header in enumerate(reference.headers):
                values = [
                    member.rows[row_index][column_index]
                    for member in aligned
                ]
                if header not in varying:
                    row.append(values[0])
                    continue
                samples = [v for v in values if v is not None]
                if not all(_is_number(v) for v in samples):
                    if len(set(values)) == 1:
                        # A constant non-numeric cell inside a column
                        # that varies in *other* rows (e.g. an "n/a"
                        # sentinel): it aligns fine, it just has no
                        # spread -- carry it in the mean slot.
                        row.extend((values[0], None, None, None))
                        continue
                    raise AggregationError(
                        f"{self.experiment}.{name}: column {header!r} "
                        f"differs across seeds but is not numeric "
                        f"(row {row_index}: {values!r}); artifacts do "
                        "not align"
                    )
                row.extend(_stats(samples) if samples else (None,) * 4)
            rows.append(tuple(row))
        return ResultTable(
            name=name, headers=tuple(headers), rows=tuple(rows)
        )

    # ------------------------------------------------------------------
    # Scalars, plots, meta
    # ------------------------------------------------------------------

    def _aggregate_scalars(self) -> Dict[str, Any]:
        keys = {frozenset(m.scalars) for m in self.members}
        if len(keys) != 1:
            names = sorted(set.union(*(set(k) for k in keys)))
            raise AggregationError(
                f"{self.experiment}: scalar keys differ across seeds "
                f"(union: {names})"
            )
        scalars: Dict[str, Any] = {}
        for key in self.members[0].scalars:
            values = [m.scalars[key] for m in self.members]
            if len(set(values)) == 1:
                scalars[key] = values[0]
                continue
            samples = [v for v in values if v is not None]
            if not all(_is_number(v) for v in samples):
                raise AggregationError(
                    f"{self.experiment}: scalar {key!r} differs across "
                    f"seeds but is not numeric: {values!r}"
                )
            stats = _stats(samples) if samples else (None,) * 4
            for suffix, value in zip(STAT_SUFFIXES, stats):
                scalars[f"{key}_{suffix}"] = value
        return scalars

    def _rewrite_plot(
        self, plot: PlotSpec, aggregated: set
    ) -> Optional[PlotSpec]:
        """Point the spec at mean columns; attach min--max bands."""
        if (plot.table, plot.x) in aggregated:
            # The x axis itself is seed-dependent (no stable domain to
            # plot against); drop the chart rather than draw nonsense.
            return None
        series = plot.series
        if series is not None and (plot.table, series) in aggregated:
            series = None
        ys, ybands = [], []
        for y in plot.y:
            if (plot.table, y) in aggregated:
                ys.append(f"{y}_mean")
                ybands.append((f"{y}_mean", f"{y}_min", f"{y}_max"))
            else:
                ys.append(y)
        return replace(
            plot, y=tuple(ys), series=series, ybands=tuple(ybands)
        )

    def _merge_meta(self) -> Dict[str, Any]:
        merged = _merge_values([m.meta for m in self.members])
        if not isinstance(merged, dict):
            merged = {"per_seed": merged}
        # _merge_values returns the first member's dict *itself* when
        # all metas are equal; copy before stamping or the input
        # ResultSet grows aggregate provenance.
        merged = dict(merged)
        merged["aggregate"] = {
            "n_seeds": len(self.members),
            "seeds": list(self.seeds),
            "stddev": "population",
        }
        return merged


def _merge_values(values: List[Any]) -> Any:
    """Collapse equal values; merge dicts per key; list the rest."""
    if all(value == values[0] for value in values[1:]):
        return values[0]
    if all(isinstance(value, dict) for value in values):
        keys: List[str] = []
        for value in values:
            keys.extend(k for k in value if k not in keys)
        return {
            key: _merge_values([value.get(key) for value in values])
            for key in keys
        }
    return list(values)


def _member_seed(member: ResultSet) -> Optional[int]:
    for path in (("recipe", "seed"), ("scale", "seed")):
        value: Any = member.meta
        for key in path:
            value = value.get(key) if isinstance(value, dict) else None
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


_display = format_scalar


def _generic_layout(result: ResultSet, n_seeds: int) -> tuple:
    """A uniform presentation program for an aggregated artifact."""
    blocks: List = [
        TextBlock(
            f"{result.title}\n"
            f"(aggregated over {n_seeds} seed"
            f"{'s' if n_seeds != 1 else ''}; stddev is population)\n"
        )
    ]
    if result.scalars:
        blocks.append(TextBlock("\nscalars:\n"))
        blocks.append(TableBlock(
            headers=("scalar", "value"),
            rows=[
                (key, _display(value))
                for key, value in sorted(result.scalars.items())
            ],
        ))
    for table in result.tables:
        blocks.append(TextBlock(f"\n{table.name}:\n"))
        blocks.append(TableBlock(
            headers=table.headers,
            rows=[
                tuple(_display(cell) for cell in row)
                for row in table.rows
            ],
        ))
    return tuple(blocks)


# ----------------------------------------------------------------------
# Artifact-tree discovery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactRef:
    """One ResultSet JSON artifact found under a report root."""

    path: Path
    result_set: ResultSet
    #: Seed parsed from the first ``seed<N>`` path component, falling
    #: back to the artifact's own meta; ``None`` when neither exists.
    seed: Optional[int]
    #: Grouping key: the relative path with seed components masked,
    #: so ``seed0/fig12.json`` and ``seed1/fig12.json`` aggregate
    #: while equal-named artifacts under unrelated parents do not.
    group: Tuple[str, ...]


def _load_result_set(path: Path) -> Optional[ResultSet]:
    """The artifact at ``path``; None for *valid* non-ResultSet JSON.

    Unreadable/corrupt JSON, and JSON that looks like a ResultSet but
    fails to deserialize, raise :class:`AggregationError` -- silently
    skipping a truncated seed artifact would render a "multi-seed"
    report that quietly lost a seed (no stddev, no warning).  Other
    well-formed JSON (recipe manifests, bench output) skips silently.
    """
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise AggregationError(
            f"cannot read {path}: {error} (corrupt artifact? remove "
            "or regenerate it, or point `runner report` elsewhere)"
        )
    if not isinstance(data, dict):
        return None
    if "experiment" not in data or "title" not in data:
        return None  # a recipe manifest, bench output, ... -- skip
    try:
        return ResultSet.from_json_dict(data)
    except (KeyError, TypeError, ValueError) as error:
        raise AggregationError(
            f"{path} looks like a ResultSet artifact but does not "
            f"deserialize: {error}"
        )


def discover_result_sets(root: Path) -> List[ArtifactRef]:
    """Every ResultSet JSON under ``root`` (or ``root`` itself)."""
    root = Path(root)
    paths = (
        [root] if root.is_file() else sorted(root.rglob("*.json"))
    )
    refs = []
    for path in paths:
        result_set = _load_result_set(path)
        if result_set is None:
            continue
        relative = (
            path.relative_to(root).parts if path != root else (path.name,)
        )
        seed = None
        group = []
        for part in relative:
            match = _SEED_DIR.match(part)
            if match and seed is None:
                seed = int(match.group(1))
                group.append("<seed>")
            else:
                group.append(part)
        if seed is None:
            seed = _member_seed(result_set)
        refs.append(ArtifactRef(
            path=path,
            result_set=result_set,
            seed=seed,
            group=tuple(group),
        ))
    return refs


def collect_report_sections(
    root: Path, *, aggregate: bool = True
) -> List[ResultSet]:
    """Report-ready sections for an artifact tree.

    Artifacts that share a group (same place in the tree, seed
    directories masked) are aggregated into one section when
    ``aggregate`` is on; everything else passes through unchanged, in
    path order.
    """
    refs = discover_result_sets(root)
    groups: Dict[Tuple[str, ...], List[ArtifactRef]] = {}
    for ref in refs:
        groups.setdefault(ref.group, []).append(ref)
    sections = []
    for members in groups.values():
        if aggregate and len(members) > 1:
            sections.append(ResultSetAggregate.from_result_sets(
                [m.result_set for m in members],
                [m.seed for m in members],
            ).to_result_set())
        else:
            sections.extend(m.result_set for m in members)
    return sections
