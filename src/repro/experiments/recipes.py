"""Declarative sweep recipes: named, versioned experiment manifests.

A :class:`Recipe` captures what used to be an ad-hoc pile of CLI flags
-- *which* experiments to run, at *what* scale, over *which* seeds --
as a registered, versioned manifest that is diffable, shareable, and
runnable on any execution backend::

    python -m repro.experiments.runner recipe list
    python -m repro.experiments.runner recipe run fig12-paper-grid \\
        --backend queue --queue-wait --out results/     # workers drain it
    python -m repro.experiments.runner recipe run fig12-paper-grid --smoke

Because every task a recipe submits flows through the sha256-keyed
result cache, a recipe run is **resumable purely from cache state**:
interrupt it anywhere, re-run the same command, and only missing
tasks execute.  Combined with the queue backend this is the "run the
paper grid on K workers overnight, re-render instantly from cache"
one-liner the ROADMAP asks for.

Manifest format (JSON, ``recipe show`` / ``from_manifest``)::

    {
      "format": 1,
      "name": "fig12-paper-grid",
      "version": 1,
      "description": "...",
      "experiments": ["fig12"],
      "overrides": {"n_mixes": 120},
      "seeds": [0],
      "smoke_overrides": {"n_mixes": 1, ...}
    }

``overrides``/``smoke_overrides`` name :class:`ExperimentScale`
fields; unknown fields or experiments fail at validation, not halfway
through a sweep.  ``version`` is bumped whenever a recipe's manifest
changes meaning, so result directories can be attributed to the exact
grid that produced them (each ResultSet's ``meta.recipe`` echoes
name, version, and seed).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.dram.timing import device_for
from repro.experiments.api import all_experiments
from repro.experiments.common import ExperimentScale

#: Bumped when the manifest envelope changes shape.
MANIFEST_FORMAT = 1

_SCALE_FIELDS = frozenset(f.name for f in fields(ExperimentScale))


class RecipeError(ValueError):
    """A malformed recipe or manifest (user-facing, one-line)."""


def _freeze(value: Any) -> Any:
    """Lists (from JSON manifests) become tuples, recursively."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _check_overrides(overrides: Mapping[str, Any], where: str) -> Dict[str, Any]:
    unknown = sorted(set(overrides) - _SCALE_FIELDS)
    if unknown:
        raise RecipeError(
            f"{where}: unknown ExperimentScale field(s) {unknown}; "
            f"known: {sorted(_SCALE_FIELDS)}"
        )
    return {name: _freeze(value) for name, value in overrides.items()}


@dataclass(frozen=True)
class Recipe:
    """One declarative sweep: experiments x scale overrides x seeds."""

    name: str
    version: int
    description: str
    experiments: Tuple[str, ...]
    #: ``ExperimentScale`` field overrides defining the full-scale grid.
    overrides: Mapping[str, Any] = field(default_factory=dict)
    #: The seed matrix: the whole grid runs once per seed.
    seeds: Tuple[int, ...] = (0,)
    #: Extra overrides applied on top for ``--smoke`` runs (tiny scale,
    #: used by ``make recipes-smoke`` to cross-check backends).
    smoke_overrides: Mapping[str, Any] = field(default_factory=dict)
    #: Device-generation axis: when non-empty, the whole grid runs once
    #: per device spec (``ExperimentScale.device`` set per cell).
    #: Empty keeps the single implicit DDR4-3200 run.
    devices: Tuple[str, ...] = ()
    paper_ref: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise RecipeError("recipe must have a name")
        if self.version < 1:
            raise RecipeError(f"recipe {self.name}: version must be >= 1")
        if not self.experiments:
            raise RecipeError(f"recipe {self.name}: no experiments listed")
        object.__setattr__(self, "experiments", tuple(self.experiments))
        if not self.seeds:
            raise RecipeError(f"recipe {self.name}: empty seed matrix")
        seeds = tuple(int(seed) for seed in self.seeds)
        if len(set(seeds)) != len(seeds):
            raise RecipeError(f"recipe {self.name}: duplicate seeds {seeds}")
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(
            self,
            "overrides",
            _check_overrides(self.overrides, f"recipe {self.name}"),
        )
        object.__setattr__(
            self,
            "smoke_overrides",
            _check_overrides(
                self.smoke_overrides, f"recipe {self.name} (smoke)"
            ),
        )
        devices = tuple(str(device) for device in self.devices)
        if len(set(devices)) != len(devices):
            raise RecipeError(
                f"recipe {self.name}: duplicate devices {devices}"
            )
        for device in devices:
            try:
                device_for(device)
            except ValueError as error:
                raise RecipeError(f"recipe {self.name}: {error}")
        object.__setattr__(self, "devices", devices)

    # ------------------------------------------------------------------

    def validate_experiments(self) -> None:
        """Check the experiment names against the live registry.

        Deferred out of ``__post_init__`` so building a Recipe object
        never forces every harness module to import.
        """
        known = all_experiments()
        unknown = [name for name in self.experiments if name not in known]
        if unknown:
            raise RecipeError(
                f"recipe {self.name}: unknown experiment(s) {unknown}; "
                f"known: {list(known)}"
            )

    def scale(
        self, seed: int, *, smoke: bool = False, device: str = None
    ) -> ExperimentScale:
        """The ExperimentScale for one cell of the seed matrix."""
        overrides = dict(self.overrides)
        if smoke:
            overrides.update(self.smoke_overrides)
        overrides["seed"] = int(seed)
        if device is not None:
            overrides["device"] = device
        try:
            return replace(ExperimentScale(), **overrides)
        except (KeyError, TypeError, ValueError) as error:
            # TypeError covers wrong-typed manifest values (e.g. a JSON
            # string where a number belongs) hitting scale validation.
            raise RecipeError(f"recipe {self.name}: invalid scale: {error}")

    def runs(self, *, smoke: bool = False) -> List[Tuple[str, int, ExperimentScale]]:
        """Every ``(experiment, seed, scale)`` cell, in manifest order.

        With a ``devices`` axis the grid repeats per device (the spec
        rides in ``scale.device``); without one, the single pass keeps
        ``scale.device`` unset.
        """
        return [
            (experiment, seed, self.scale(seed, smoke=smoke, device=device))
            for seed in self.seeds
            for device in (self.devices or (None,))
            for experiment in self.experiments
        ]

    # ------------------------------------------------------------------
    # Manifest round-trip
    # ------------------------------------------------------------------

    def to_manifest(self) -> Dict[str, Any]:
        def plain(value: Any) -> Any:
            if isinstance(value, tuple):
                return [plain(item) for item in value]
            return value

        return {
            "format": MANIFEST_FORMAT,
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "experiments": list(self.experiments),
            "overrides": {k: plain(v) for k, v in sorted(self.overrides.items())},
            "seeds": list(self.seeds),
            "smoke_overrides": {
                k: plain(v) for k, v in sorted(self.smoke_overrides.items())
            },
            "devices": list(self.devices),
            "paper_ref": self.paper_ref,
        }

    @classmethod
    def from_manifest(cls, data: Mapping[str, Any]) -> "Recipe":
        if not isinstance(data, Mapping) or data.get("format") != MANIFEST_FORMAT:
            raise RecipeError(
                f"unrecognized recipe manifest (want format {MANIFEST_FORMAT}): "
                f"{data!r:.120}"
            )
        try:
            return cls(
                name=data["name"],
                version=data["version"],
                description=data.get("description", ""),
                experiments=tuple(data["experiments"]),
                overrides=data.get("overrides", {}),
                seeds=tuple(data.get("seeds", (0,))),
                smoke_overrides=data.get("smoke_overrides", {}),
                devices=tuple(data.get("devices", ())),
                paper_ref=data.get("paper_ref", ""),
            )
        except KeyError as error:
            raise RecipeError(f"recipe manifest missing key {error}")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_RECIPES: Dict[str, Recipe] = {}


def register_recipe(recipe: Recipe) -> Recipe:
    existing = _RECIPES.get(recipe.name)
    if existing is not None and existing != recipe:
        raise RecipeError(f"recipe name {recipe.name!r} already registered")
    _RECIPES[recipe.name] = recipe
    return recipe


def get_recipe(name_or_path: Union[str, Path]) -> Recipe:
    """A registered recipe by name, or a manifest loaded from a path.

    Anything that does not match a registered name is treated as a
    JSON manifest file, so ad-hoc grids can be run without editing
    this module: ``runner recipe run my-sweep.json``.
    """
    name = str(name_or_path)
    if name in _RECIPES:
        return _RECIPES[name]
    path = Path(name)
    if path.suffix == ".json" or path.exists():
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise RecipeError(
                f"unknown recipe {name!r} (and no such manifest file); "
                f"known: {sorted(_RECIPES)}"
            )
        except (OSError, json.JSONDecodeError) as error:
            raise RecipeError(f"cannot load recipe manifest {name}: {error}")
        return Recipe.from_manifest(data)
    raise RecipeError(
        f"unknown recipe {name!r}; known: {sorted(_RECIPES)} "
        "(or pass a path to a manifest .json)"
    )


def all_recipes() -> Dict[str, Recipe]:
    """``{name: recipe}`` for every registered recipe, sorted by name."""
    return {name: _RECIPES[name] for name in sorted(_RECIPES)}


# ----------------------------------------------------------------------
# Checked-in recipes
# ----------------------------------------------------------------------

#: Fig 12 at paper scale: the full 120-workload-mix grid over all five
#: defenses, all three Svärd profiles, and the paper's seven HC_first
#: points -- the sweep behind the headline 1.2x+ speedup numbers.
#: ~14k simulation tasks at default geometry; run it on the queue
#: backend with as many workers as you have cores/hosts and let the
#: cache absorb interruptions.
FIG12_PAPER_GRID = register_recipe(Recipe(
    name="fig12-paper-grid",
    version=1,
    description="Fig 12 performance grid at paper scale (120 mixes)",
    experiments=("fig12",),
    overrides={"n_mixes": 120},
    seeds=(0,),
    smoke_overrides={
        "n_mixes": 1,
        "rows_per_bank": 512,
        "banks": (1,),
        "requests_per_core": 600,
        "hc_first_values": (64,),
        "svard_profiles": ("S0",),
    },
    paper_ref="Fig. 12",
))

#: The report pipeline's canary: two seeds over one cheap
#: characterization figure plus the (seed-independent) hardware-cost
#: table.  `make report-smoke` runs it at --smoke scale, builds the
#: HTML report, and asserts the page is self-contained; it doubles as
#: the smallest real example of seed-matrix aggregation (fig3's BER
#: stats vary across seeds, sec64's costs do not).
REPORT_SMOKE = register_recipe(Recipe(
    name="report-smoke",
    version=1,
    description="Two-seed micro-grid exercising report aggregation",
    experiments=("fig3", "sec64"),
    overrides={
        "rows_per_bank": 512,
        "banks": (1,),
        "modules": ("H1", "S0"),
    },
    seeds=(0, 1),
    smoke_overrides={
        "rows_per_bank": 256,
        "modules": ("H1",),
    },
    paper_ref="Fig. 3 / Sec. 6.4",
))

#: The cross-generation defense grid: Fig 12-style cells replayed on
#: DDR4-3200, LPDDR4-3200, and DDR5-4800 presets, answering how
#: preventive-refresh overheads move with device timing (LPDDR4's
#: slower single tRRD, DDR5's 32 ms refresh window).  Each device's
#: cells land in their own report section and results subdirectory.
DEFENSE_GRID_GENERATIONS = register_recipe(Recipe(
    name="defense-grid-generations",
    version=1,
    description="Fig 12 defense grid across DDR4/LPDDR4/DDR5 presets",
    experiments=("fig12",),
    overrides={
        "n_mixes": 2,
        "hc_first_values": (1024, 64),
        "svard_profiles": ("S0",),
    },
    seeds=(0,),
    smoke_overrides={
        "n_mixes": 1,
        "rows_per_bank": 512,
        "banks": (1,),
        "requests_per_core": 600,
        "hc_first_values": (64,),
        "svard_profiles": ("S0",),
    },
    devices=("DDR4-3200", "LPDDR4-3200", "DDR5-4800"),
    paper_ref="Fig. 12 (cross-generation)",
))

#: RowPress beyond Fig 7's three points: a log-spaced tAggOn sweep
#: from the minimum tRAS out to 8 us, per-module CVs included
#: (ROADMAP's "multi-tAggOn RowPress sweeps" item).
FIG7_TAGGON_SWEEP = register_recipe(Recipe(
    name="fig7-taggon-sweep",
    version=1,
    description="RowPress HC_first sweep over 8 tAggOn points (36 ns - 8 us)",
    experiments=("fig7",),
    overrides={
        "t_agg_on_sweep_ns": (
            36.0, 72.0, 150.0, 300.0, 500.0, 1000.0, 2000.0, 8000.0,
        ),
    },
    seeds=(0,),
    smoke_overrides={
        "rows_per_bank": 256,
        "banks": (1,),
        "modules": ("H1", "M0", "S0"),
        "t_agg_on_sweep_ns": (36.0, 2000.0),
    },
    paper_ref="Fig. 7 (extended)",
))
