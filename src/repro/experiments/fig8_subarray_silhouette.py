"""Fig 8: silhouette score of clustering rows into subarrays.

The paper sweeps k-means' k over candidate subarray counts and plots
the silhouette score: it rises to a global maximum (the inferred
subarray count) and decreases monotonically after it.  This harness
runs the full reverse-engineering pipeline (single-sided hammer
probes, RowClone validation, clustering) on the bender platform --
one orchestrated task per module, so the per-module inferences fan
out over workers and persist in the on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bender.infrastructure import TestPlatform
from repro.experiments.api import (
    Experiment,
    ExperimentError,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import ExperimentScale
from repro.faults.modules import module_by_label
from repro.orchestration import OrchestrationContext, Task, TaskGroup, make_task
from repro.reveng.subarray import SubarrayInference, SubarrayReverseEngineer

TITLE = "Fig 8: subarray reverse engineering via k-means silhouette"


@dataclass
class Fig8Result:
    inferences: Dict[str, SubarrayInference]
    true_subarrays: Dict[str, int]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig8Result) -> ResultSet:
    display_rows = []
    inference_rows = []
    silhouette_rows = []
    for label in sorted(result.inferences):
        inference = result.inferences[label]
        sizes = inference.subarray_sizes()
        peak = max(inference.silhouette_by_k.values())
        display_rows.append(
            (
                label,
                str(inference.inferred_k),
                str(result.true_subarrays[label]),
                f"{min(sizes)}..{max(sizes)}",
                f"{peak:.3f}",
            )
        )
        inference_rows.append(
            (
                label,
                inference.inferred_k,
                result.true_subarrays[label],
                min(sizes),
                max(sizes),
                float(peak),
            )
        )
        silhouette_rows.extend(
            (label, int(k), float(score))
            for k, score in sorted(inference.silhouette_by_k.items())
        )
    return ResultSet(
        experiment="fig8",
        title=TITLE,
        tables=(
            ResultTable(
                name="inference",
                headers=(
                    "module", "inferred_k", "true_k",
                    "min_subarray_rows", "max_subarray_rows", "peak_score",
                ),
                rows=inference_rows,
            ),
            ResultTable(
                name="silhouette",
                headers=("module", "k", "score"),
                rows=silhouette_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=(
                    "module", "inferred k", "true k", "subarray sizes",
                    "peak score",
                ),
                rows=display_rows,
            ),
        ),
        plots=(
            PlotSpec(
                name="silhouette",
                kind="line",
                table="silhouette",
                x="k",
                y=("score",),
                series="module",
                title=TITLE,
                xlabel="k (candidate subarray count)",
                ylabel="silhouette score",
            ),
        ),
    )


def _subarray_task(task: Task) -> Tuple[SubarrayInference, int]:
    """Orchestrated unit: the full inference pipeline for one module."""
    label, rows_per_bank, seed = task.params
    spec = module_by_label(label)
    platform = TestPlatform(spec, rows_per_bank=rows_per_bank, seed=seed)
    platform.device.rowclone_success_rate = 1.0
    engineer = SubarrayReverseEngineer(platform, seed=seed)
    inference = engineer.infer(0)
    subarray_rows = platform.geometry.subarray_rows
    true_count = -(-rows_per_bank // subarray_rows)
    return inference, true_count


def _labels(scale: ExperimentScale, modules: Optional[Sequence[str]]) -> List[str]:
    """Defaults to the Samsung modules (the figure's subject)."""
    if modules is not None:
        labels = list(modules)
        if not labels:
            raise ExperimentError("fig8: the explicit module list is empty")
        return labels
    labels = [label for label in scale.modules if label.startswith("S")]
    if not labels:
        raise ExperimentError(
            "fig8 needs at least one Samsung (S*) module to "
            f"reverse-engineer; the selection {tuple(scale.modules)} "
            "contains none"
        )
    return labels


@register
class Fig8Experiment(Experiment):
    name = "fig8"
    description = "subarray reverse engineering (k-means silhouette)"
    paper_ref = "Fig. 8"

    def __init__(self, modules: Optional[Sequence[str]] = None) -> None:
        self.modules = modules

    def build_tasks(self, scale, orch):
        # One group per module: the fingerprint carries exactly the
        # inputs the inference depends on, so cache entries survive
        # unrelated scale changes and module-subset changes.
        return [
            TaskGroup(
                tasks=(
                    make_task(
                        ("fig8", "subarray", label),
                        _subarray_task,
                        (label, scale.rows_for(label), scale.seed),
                        base_seed=scale.seed,
                    ),
                ),
                fingerprint=("fig8", scale.rows_for(label), scale.seed),
            )
            for label in _labels(scale, self.modules)
        ]

    def reduce(self, scale, outputs):
        inferences: Dict[str, SubarrayInference] = {}
        true_counts: Dict[str, int] = {}
        for label in _labels(scale, self.modules):
            inference, true_count = outputs[("fig8", "subarray", label)]
            inferences[label] = inference
            true_counts[label] = true_count
        return Fig8Result(inferences=inferences, true_subarrays=true_counts)

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    modules: Optional[Sequence[str]] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> Fig8Result:
    return Fig8Experiment(modules=modules).run(scale, orchestration)
