"""Fig 8: silhouette score of clustering rows into subarrays.

The paper sweeps k-means' k over candidate subarray counts and plots
the silhouette score: it rises to a global maximum (the inferred
subarray count) and decreases monotonically after it.  This harness
runs the full reverse-engineering pipeline (single-sided hammer
probes, RowClone validation, clustering) on the bender platform.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.bender.infrastructure import TestPlatform
from repro.experiments.common import ExperimentScale, format_table
from repro.faults.modules import module_by_label
from repro.reveng.subarray import SubarrayInference, SubarrayReverseEngineer


@dataclass
class Fig8Result:
    inferences: Dict[str, SubarrayInference]
    true_subarrays: Dict[str, int]

    def render(self) -> str:
        rows = []
        for label in sorted(self.inferences):
            inference = self.inferences[label]
            sizes = inference.subarray_sizes()
            rows.append(
                [
                    label,
                    str(inference.inferred_k),
                    str(self.true_subarrays[label]),
                    f"{min(sizes)}..{max(sizes)}",
                    f"{max(inference.silhouette_by_k.values()):.3f}",
                ]
            )
        return (
            "Fig 8: subarray reverse engineering via k-means silhouette\n\n"
            + format_table(
                ["module", "inferred k", "true k", "subarray sizes", "peak score"],
                rows,
            )
        )


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    modules: Optional[Sequence[str]] = None,
) -> Fig8Result:
    """Defaults to the Samsung modules (the figure's subject)."""
    labels = list(modules) if modules is not None else [
        label for label in scale.modules if label.startswith("S")
    ]
    inferences: Dict[str, SubarrayInference] = {}
    true_counts: Dict[str, int] = {}
    for label in labels:
        spec = module_by_label(label)
        platform = TestPlatform(
            spec, rows_per_bank=scale.rows_per_bank, seed=scale.seed
        )
        platform.device.rowclone_success_rate = 1.0
        engineer = SubarrayReverseEngineer(platform, seed=scale.seed)
        inferences[label] = engineer.infer(0)
        subarray_rows = platform.geometry.subarray_rows
        true_counts[label] = -(-scale.rows_per_bank // subarray_rows)
    return Fig8Result(inferences=inferences, true_subarrays=true_counts)
