"""Many-sided (N-aggressor) hammering versus the preventive defenses.

The ROADMAP's "richer attack patterns" item: round-robin N-sided
RowHammer (TRRespass-style) against the probabilistic and
tracking-based defenses at a worst-case HC_first of 64.  Spreading the
same activation rate over more aggressor rows dilutes per-row
activation counts, which is precisely the regime where sampling
defenses (PARA) keep paying per-activation while trackers
(BlockHammer) relax -- and where Svärd's per-row thresholds shift the
balance.  Reported like Fig 13: slowdown versus the no-defense
baseline, normalized to No Svärd per (defense, N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import SvardThresholds, ThresholdProvider
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    NO_SVARD,
    ExperimentScale,
    scaled_profile,
    svard_configurations,
)
from repro.experiments.fig13_adversarial import HC_FIRST
from repro.orchestration import (
    OrchestrationContext,
    Task,
    TaskGroup,
    make_task,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.workloads.adversarial import ManySidedHammerTrace

#: The aggressor-count sweep: double-sided, the common many-sided
#: escalation, and a cache/tracker-straining wide rotation.
N_SIDES_SWEEP = (2, 8, 32)


@dataclass
class ManySidedResult:
    #: (defense, n_sides, configuration) -> slowdown normalized to
    #: No Svärd at the same (defense, n_sides).
    normalized_slowdown: Dict[Tuple[str, int, str], float]
    #: (defense, n_sides, configuration) -> raw slowdown vs no-defense.
    raw_slowdown: Dict[Tuple[str, int, str], float]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: ManySidedResult) -> ResultSet:
    title = (
        f"Many-sided hammering at HC_first = {HC_FIRST}: "
        "N-aggressor rotation vs preventive defenses"
    )
    data_rows = [
        (
            defense,
            n_sides,
            config,
            result.raw_slowdown[(defense, n_sides, config)],
            value,
        )
        for (defense, n_sides, config), value in sorted(
            result.normalized_slowdown.items()
        )
    ]
    return ResultSet(
        experiment="attack-manysided",
        title=title,
        scalars={"hc_first": HC_FIRST},
        tables=(
            ResultTable(
                name="slowdown",
                headers=(
                    "defense", "n_sides", "config", "raw_slowdown",
                    "normalized_slowdown",
                ),
                rows=data_rows,
            ),
        ),
        layout=(
            TextBlock(title + "\n\n"),
            TableBlock(
                headers=(
                    "defense", "N", "config", "slowdown",
                    "norm. to No Svärd",
                ),
                rows=[
                    (
                        defense, str(n_sides), config,
                        f"{raw:.2f}", f"{normalized:.3f}",
                    )
                    for defense, n_sides, config, raw, normalized in data_rows
                ],
            ),
        ),
        plots=(
            PlotSpec(
                name="slowdown",
                kind="bar",
                table="slowdown",
                x="n_sides",
                y=("normalized_slowdown",),
                series="config",
                title=title,
                ylabel="slowdown normalized to No Svärd",
            ),
        ),
    )


def _attack_traces(n_sides: int, config: SystemConfig) -> List:
    # One aggressor set per core, in separate banks, phased within the
    # rotation so simultaneous cores do not ride each other's row
    # buffer; stride 2 is the generalized double-sided sandwich.
    return [
        ManySidedHammerTrace(
            n_sides=n_sides,
            base_row=(1000 + 4096 * core) % config.rows_per_bank,
            bank=core % config.total_banks,
            rows_per_bank=config.rows_per_bank,
            start_offset=core * 3,
        )
        for core in range(config.cores)
    ]


def _baseline_task(task: Task) -> List[float]:
    """No-defense finish times under one N-sided rotation."""
    n_sides, config = task.params
    return MemorySystem(
        config, _attack_traces(n_sides, config)
    ).run().finish_times()


def _attack_task(task: Task) -> List[float]:
    """Finish times of one (defense, N, Svärd configuration) cell."""
    defense_name, n_sides, configuration, scale, config = task.params
    thresholds: Optional[ThresholdProvider] = None
    if configuration != NO_SVARD:
        profile = scaled_profile(
            configuration.removeprefix("Svärd-"), HC_FIRST, scale
        )
        thresholds = SvardThresholds(Svard.build(profile))
    kwargs = dict(rows_per_bank=config.rows_per_bank, seed=scale.seed)
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    defense = DEFENSE_CLASSES[defense_name](HC_FIRST, **kwargs)
    return MemorySystem(
        config, _attack_traces(n_sides, config), defense=defense
    ).run().finish_times()


@register
class ManySidedExperiment(Experiment):
    name = "attack-manysided"
    description = "Many-sided (N-aggressor) hammering vs PARA/BlockHammer"
    paper_ref = "Sec. 7.3 (extended)"

    DEFENSE_NAMES = ("PARA", "BlockHammer")

    quick_overrides = {"requests_per_core": 3000}

    def __init__(self, system_config: Optional[SystemConfig] = None) -> None:
        self.system_config = system_config

    def _config(self, scale: ExperimentScale) -> SystemConfig:
        return self.system_config or scale.system_config(
            requests_per_core=max(scale.requests_per_core, 6_000),
            defense_epoch_ns=1_000_000.0,
        )

    def build_tasks(self, scale, orch):
        config = self._config(scale)
        tasks = [
            make_task(
                ("attack-manysided", "baseline", n_sides),
                _baseline_task,
                (n_sides, config),
                base_seed=scale.seed,
            )
            for n_sides in N_SIDES_SWEEP
        ]
        tasks += [
            make_task(
                ("attack-manysided", "attack", defense_name, n_sides,
                 configuration),
                _attack_task,
                (defense_name, n_sides, configuration, scale, config),
                base_seed=scale.seed,
            )
            for defense_name in self.DEFENSE_NAMES
            for n_sides in N_SIDES_SWEEP
            for configuration in svard_configurations(scale)
        ]
        return [TaskGroup(
            tasks=tuple(tasks),
            fingerprint=("attack-manysided", scale, config),
        )]

    def reduce(self, scale, outputs):
        configurations = svard_configurations(scale)
        raw: Dict[Tuple[str, int, str], float] = {}
        normalized: Dict[Tuple[str, int, str], float] = {}
        for defense_name in self.DEFENSE_NAMES:
            for n_sides in N_SIDES_SWEEP:
                base_times = np.array(
                    outputs[("attack-manysided", "baseline", n_sides)]
                )
                for configuration in configurations:
                    times = outputs[(
                        "attack-manysided", "attack", defense_name, n_sides,
                        configuration,
                    )]
                    raw[(defense_name, n_sides, configuration)] = float(
                        np.mean(np.array(times) / base_times)
                    )
                reference = raw[(defense_name, n_sides, NO_SVARD)]
                for configuration in configurations:
                    normalized[(defense_name, n_sides, configuration)] = (
                        raw[(defense_name, n_sides, configuration)]
                        / reference
                    )
        return ManySidedResult(
            normalized_slowdown=normalized, raw_slowdown=raw
        )

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    system_config: Optional[SystemConfig] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> ManySidedResult:
    return ManySidedExperiment(system_config=system_config).run(
        scale, orchestration
    )
