"""The unified Experiment API: registry, ResultSet artifacts, renderers.

Every paper figure/table harness is a registered :class:`Experiment`.
An experiment declares *what* to compute (``build_tasks`` decomposes
the sweep into orchestrated :class:`~repro.orchestration.TaskGroup`\\ s)
and *how* to assemble the outputs (``reduce`` returns the harness's
rich result object); ``result_set`` then converts that rich result
into a :class:`ResultSet` -- a structured, JSON-round-trippable
artifact that any registered renderer (``text``, ``json``, ``mpl``;
see :mod:`repro.experiments.render`) can consume.

The split keeps three consumers happy at once:

* the CLI (``python -m repro.experiments.runner``) runs experiments by
  name and renders in any format;
* tests and downstream analysis keep the rich result objects
  (``Fig12Result.improvement(...)`` etc.) returned by ``reduce``;
* artifacts on disk are typed tables + scalars, not strings.

Registering a new experiment::

    @register
    class MyExperiment(Experiment):
        name = "myexp"
        description = "one-line summary"
        paper_ref = "Fig. 99"

        def build_tasks(self, scale, orch):
            return [TaskGroup(tasks, fingerprint=("myexp", scale))]

        def reduce(self, scale, outputs):
            return MyRichResult(...)

        def result_set(self, result):
            return ResultSet(experiment=self.name, ...)

See EXPERIMENTS.md for the full walkthrough.
"""

from __future__ import annotations

import importlib
import pkgutil
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.orchestration import OrchestrationContext, TaskGroup, serial_context

class ExperimentError(RuntimeError):
    """A user-facing configuration problem (bad selection, bad scale).

    Experiments raise this for conditions the CLI should report as a
    clean one-line error; genuine defects keep their natural exception
    types (and tracebacks).
    """


#: Cell/scalar values allowed in a ResultSet (JSON-representable).
Scalar = Union[str, int, float, bool, None]

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _check_scalar(value: Any, where: str) -> Scalar:
    if not isinstance(value, _SCALAR_TYPES):
        raise TypeError(
            f"{where}: {value!r} is not a JSON scalar "
            "(str/int/float/bool/None)"
        )
    return value


def is_number(value: Any) -> bool:
    """True for int/float data values (bool is a flag, not a number)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def format_scalar(value: Any) -> str:
    """The one display formatting for cell/scalar values.

    Shared by the aggregation layout, the HTML report, and the SVG
    plotter's ticks/tooltips so the same value never renders two
    different ways on one page: ``None`` is a dash, integral floats
    drop the point, other floats get 4 significant digits.
    """
    if value is None:
        return "-"
    if isinstance(value, float) and not isinstance(value, bool):
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


# ----------------------------------------------------------------------
# ResultSet: the structured artifact
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ResultTable:
    """One typed table of rows: the machine-readable data."""

    name: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[Scalar, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", tuple(self.headers))
        rows = tuple(tuple(row) for row in self.rows)
        for row in rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"table {self.name!r}: row {row!r} does not match "
                    f"headers {self.headers!r}"
                )
            for cell in row:
                _check_scalar(cell, f"table {self.name!r}")
        object.__setattr__(self, "rows", rows)

    def column(self, header: str) -> List[Scalar]:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


@dataclass(frozen=True)
class PlotSpec:
    """A declarative chart over one table (consumed by the mpl renderer).

    ``kind`` is one of ``line``, ``bar``, ``scatter``.  ``x`` and ``y``
    name columns of ``table``; ``series`` optionally names a column to
    group rows into one plotted series per distinct value.

    ``ybands`` optionally attaches an error band to a ``y`` column:
    each entry is ``(y_column, low_column, high_column)``, all naming
    columns of ``table``.  The seed-matrix aggregation layer
    (:mod:`repro.experiments.aggregate`) emits these so the SVG and
    mpl renderers can shade min--max envelopes around mean lines.
    """

    name: str
    kind: str
    table: str
    x: str
    y: Tuple[str, ...]
    series: Optional[str] = None
    title: str = ""
    xlabel: str = ""
    ylabel: str = ""
    logx: bool = False
    logy: bool = False
    ybands: Tuple[Tuple[str, str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("line", "bar", "scatter"):
            raise ValueError(f"unknown plot kind {self.kind!r}")
        ys = (self.y,) if isinstance(self.y, str) else tuple(self.y)
        object.__setattr__(self, "y", ys)
        bands = tuple(tuple(band) for band in self.ybands)
        for band in bands:
            if len(band) != 3 or not all(isinstance(c, str) for c in band):
                raise ValueError(
                    f"plot {self.name!r}: ybands entries must be "
                    f"(y, low, high) column-name triples, got {band!r}"
                )
        object.__setattr__(self, "ybands", bands)

    def band_for(self, y_column: str) -> Optional[Tuple[str, str]]:
        """The ``(low, high)`` band columns for ``y_column``, if any."""
        for y, low, high in self.ybands:
            if y == y_column:
                return (low, high)
        return None


def split_series(table: "ResultTable", spec: "PlotSpec") -> Dict[str, list]:
    """Group a table's rows into plotted series per the spec.

    The single definition both chart paths (the mpl renderer and the
    pure-python SVG plotter) draw from, so an SVG chart and a PNG of
    the same artifact can never disagree on what the series are.
    """
    if spec.series is None:
        return {"": list(table.rows)}
    index = table.headers.index(spec.series)
    series: Dict[str, list] = {}
    for row in table.rows:
        series.setdefault(str(row[index]), []).append(row)
    return series


@dataclass(frozen=True)
class TextBlock:
    """Verbatim text in the rendered layout (includes its own newlines)."""

    text: str


@dataclass(frozen=True)
class TableBlock:
    """A preformatted fixed-width table in the rendered layout.

    Cells are display strings (units, precision, and suffixes already
    applied); the corresponding *typed* values live in
    ``ResultSet.tables``.  Keeping presentation separate from data is
    what lets the text renderer reproduce the paper-style tables
    byte-for-byte while the json/mpl renderers consume typed rows.
    """

    headers: Tuple[str, ...]
    rows: Tuple[Tuple[str, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "headers", tuple(self.headers))
        rows = tuple(tuple(str(c) for c in row) for row in self.rows)
        for row in rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"display row {row!r} does not match headers "
                    f"{self.headers!r}"
                )
        object.__setattr__(self, "rows", rows)


Block = Union[TextBlock, TableBlock]


def display_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render a fixed-width text table (the paper-style output)."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]

    def line(cells):
        return "  ".join(
            cell.ljust(width) for cell, width in zip(cells, widths)
        )

    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), separator, *[line(row) for row in rows]])


@dataclass
class ResultSet:
    """The structured output artifact of one experiment run.

    * ``tables`` / ``scalars`` -- typed data (JSON scalars only).
    * ``layout`` -- the presentation program replayed by the text
      renderer: text blocks are emitted verbatim, table blocks through
      :func:`display_table`.
    * ``plots`` -- declarative chart specs for the mpl renderer.
    * ``meta`` -- run context (experiment scale echo etc.), JSON-safe.

    ``to_json_dict``/``from_json_dict`` round-trip exactly (verified by
    the API test suite), so a ResultSet written with ``--format json``
    can be reloaded and re-rendered later.
    """

    experiment: str
    title: str
    scalars: Dict[str, Scalar] = field(default_factory=dict)
    tables: Tuple[ResultTable, ...] = ()
    layout: Tuple[Block, ...] = ()
    plots: Tuple[PlotSpec, ...] = ()
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.tables = tuple(self.tables)
        self.layout = tuple(self.layout)
        self.plots = tuple(self.plots)
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names in {self.experiment}")
        for key, value in self.scalars.items():
            _check_scalar(value, f"scalar {key!r}")

    def table(self, name: str) -> ResultTable:
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(f"{self.experiment} has no table {name!r}")

    def render_text(self) -> str:
        """The paper-style fixed-width text output."""
        parts = []
        for block in self.layout:
            if isinstance(block, TextBlock):
                parts.append(block.text)
            else:
                parts.append(display_table(block.headers, block.rows))
        return "".join(parts)

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "title": self.title,
            "scalars": dict(self.scalars),
            "tables": [
                {
                    "name": t.name,
                    "headers": list(t.headers),
                    "rows": [list(row) for row in t.rows],
                }
                for t in self.tables
            ],
            "layout": [
                {"kind": "text", "text": b.text}
                if isinstance(b, TextBlock)
                else {
                    "kind": "table",
                    "headers": list(b.headers),
                    "rows": [list(row) for row in b.rows],
                }
                for b in self.layout
            ],
            "plots": [
                {
                    "name": p.name,
                    "kind": p.kind,
                    "table": p.table,
                    "x": p.x,
                    "y": list(p.y),
                    "series": p.series,
                    "title": p.title,
                    "xlabel": p.xlabel,
                    "ylabel": p.ylabel,
                    "logx": p.logx,
                    "logy": p.logy,
                    # Emitted only when present so pre-band artifacts
                    # (and their goldens) keep their exact shape.
                    **(
                        {"ybands": [list(band) for band in p.ybands]}
                        if p.ybands
                        else {}
                    ),
                }
                for p in self.plots
            ],
            "meta": json_safe(self.meta),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, Any]) -> "ResultSet":
        return cls(
            experiment=data["experiment"],
            title=data["title"],
            scalars=dict(data.get("scalars", {})),
            tables=tuple(
                ResultTable(
                    name=t["name"],
                    headers=tuple(t["headers"]),
                    rows=tuple(tuple(row) for row in t["rows"]),
                )
                for t in data.get("tables", [])
            ),
            layout=tuple(
                TextBlock(text=b["text"])
                if b["kind"] == "text"
                else TableBlock(
                    headers=tuple(b["headers"]),
                    rows=tuple(tuple(row) for row in b["rows"]),
                )
                for b in data.get("layout", [])
            ),
            plots=tuple(
                PlotSpec(
                    name=p["name"],
                    kind=p["kind"],
                    table=p["table"],
                    x=p["x"],
                    y=tuple(p["y"]),
                    series=p.get("series"),
                    title=p.get("title", ""),
                    xlabel=p.get("xlabel", ""),
                    ylabel=p.get("ylabel", ""),
                    logx=p.get("logx", False),
                    logy=p.get("logy", False),
                    ybands=tuple(
                        tuple(band) for band in p.get("ybands", ())
                    ),
                )
                for p in data.get("plots", [])
            ),
            meta=dict(data.get("meta", {})),
        )


def json_safe(value: Any) -> Any:
    """Recursively convert tuples/dataclass-free structures for JSON.

    Tuples become lists (matching what ``json.loads`` produces, so a
    ResultSet whose ``meta`` went through :func:`json_safe` compares
    equal after a round-trip); scalars pass through; anything else is
    rejected.
    """
    if isinstance(value, _SCALAR_TYPES):
        return value
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    raise TypeError(f"{value!r} is not JSON-safe")


# ----------------------------------------------------------------------
# The Experiment protocol and registry
# ----------------------------------------------------------------------


class Experiment(ABC):
    """One paper figure/table as a declarative, orchestrated unit.

    Subclasses set the class attributes and implement the three hooks.
    The base ``run``/``run_result_set`` drive the common lifecycle:
    submit every task group through the orchestration context (process
    pool + on-disk cache), then reduce the outputs.
    """

    #: Registry key and CLI name, e.g. ``"fig12"``.
    name: str = ""
    #: One-line summary shown by ``runner list``.
    description: str = ""
    #: Where in the paper the artifact lives, e.g. ``"Fig. 12"``.
    paper_ref: str = ""
    #: ``ExperimentScale`` field overrides the runner applies by
    #: default so the full suite stays interactive; explicit CLI flags
    #: and ``--full`` win over these.
    quick_overrides: Mapping[str, Any] = {}

    def build_tasks(
        self, scale: "ExperimentScale", orch: OrchestrationContext
    ) -> Sequence[TaskGroup]:
        """Decompose the run into orchestrated task groups (may be empty)."""
        return []

    @abstractmethod
    def reduce(self, scale: "ExperimentScale", outputs: Dict) -> Any:
        """Assemble the rich result object from ``{task.key: result}``."""

    @abstractmethod
    def result_set(self, result: Any) -> ResultSet:
        """Convert the rich result into the structured artifact."""

    # ------------------------------------------------------------------

    def run(
        self,
        scale: Optional["ExperimentScale"] = None,
        orchestration: Optional[OrchestrationContext] = None,
    ) -> Any:
        """Execute the experiment; returns the rich result object.

        All task groups go through one batched submission
        (:meth:`OrchestrationContext.run_groups`): fingerprints scope
        the cache per group, while every cache miss -- across all
        groups, e.g. fig8's one-group-per-module or the per-geometry
        characterization groups under ``--paper-rows`` -- fans out over
        the ``--jobs`` pool together.
        """
        from repro.experiments.common import ExperimentScale

        scale = scale if scale is not None else ExperimentScale()
        orch = orchestration or serial_context()
        outputs = orch.run_groups(list(self.build_tasks(scale, orch)))
        return self.reduce(scale, outputs)

    def run_result_set(
        self,
        scale: Optional["ExperimentScale"] = None,
        orchestration: Optional[OrchestrationContext] = None,
    ) -> ResultSet:
        """Execute and convert; stamps the scale echo into ``meta``."""
        import dataclasses

        from repro.experiments.common import ExperimentScale
        from repro.orchestration import OMIT_IF_NONE

        scale = scale if scale is not None else ExperimentScale()
        result_set = self.result_set(self.run(scale, orchestration))
        # Mirror canonicalize()'s OMIT_IF_NONE rule so optional
        # dimensions (scale.device) never perturb the artifact bytes
        # or displayed scale hash of runs that leave them unset.
        echo = {
            f.name: getattr(scale, f.name)
            for f in dataclasses.fields(scale)
            if not (
                f.metadata.get(OMIT_IF_NONE)
                and getattr(scale, f.name) is None
            )
        }
        result_set.meta.setdefault("scale", json_safe(echo))
        result_set.meta.setdefault("paper_ref", self.paper_ref)
        return result_set


_REGISTRY: Dict[str, Experiment] = {}


def register(cls):
    """Class decorator: instantiate and add to the central registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"{cls.__name__} must set a non-empty name")
    existing = _REGISTRY.get(instance.name)
    if existing is not None and type(existing) is not cls:
        raise ValueError(
            f"experiment name {instance.name!r} already registered "
            f"by {type(existing).__name__}"
        )
    _REGISTRY[instance.name] = instance
    return cls


def get_experiment(name: str) -> Experiment:
    load_all()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def all_experiments() -> Dict[str, Experiment]:
    """``{name: experiment}`` for every registered experiment, sorted."""
    load_all()
    return {name: _REGISTRY[name] for name in sorted(_REGISTRY)}


#: Module-name prefixes that identify harness modules within
#: ``repro.experiments`` (one registered experiment per module).
HARNESS_PREFIXES = ("fig", "table", "ablation", "sec64", "attack")

_LOADED = False


def harness_module_names() -> List[str]:
    """Discover harness modules under :mod:`repro.experiments`."""
    import repro.experiments as pkg

    return sorted(
        f"repro.experiments.{info.name}"
        for info in pkgutil.iter_modules(pkg.__path__)
        if info.name.startswith(HARNESS_PREFIXES)
    )


def load_all() -> None:
    """Import every harness module so its experiment registers."""
    global _LOADED
    if _LOADED:
        return
    for module_name in harness_module_names():
        importlib.import_module(module_name)
    _LOADED = True
