"""Fig 3: distribution of BER across DRAM rows and banks.

For each module and each representative bank, the paper draws the
box-and-whisker distribution of per-row BER at HC = 128K (WCDP,
tAggOn = 36 ns) and annotates the coefficient of variation across
rows.  This harness regenerates those rows and checks the paper's
Obsvs 1-3: rows vary, banks agree, modules differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.characterization.metrics import (
    BoxStats,
    bank_agreement_ratio,
    box_stats,
    coefficient_of_variation_pct,
)
from repro.experiments.common import ExperimentScale, characterize, format_table
from repro.faults.modules import module_by_label


@dataclass
class Fig3Result:
    """Per-(module, bank) BER box stats plus per-module CV."""

    boxes: Dict[Tuple[str, int], BoxStats]
    cv_pct: Dict[str, float]
    paper_cv_pct: Dict[str, float]
    bank_agreement: Dict[str, float]

    def render(self) -> str:
        rows = []
        for (label, bank), stats in sorted(self.boxes.items()):
            rows.append(
                [
                    label,
                    str(bank),
                    f"{stats.mean:.3e}",
                    f"{stats.q1:.3e}",
                    f"{stats.median:.3e}",
                    f"{stats.q3:.3e}",
                ]
            )
        table = format_table(
            ["module", "bank", "mean BER", "Q1", "median", "Q3"], rows
        )
        cv_rows = [
            [
                label,
                f"{self.cv_pct[label]:.2f}%",
                f"{self.paper_cv_pct[label]:.2f}%",
                f"{self.bank_agreement[label]:.3f}",
            ]
            for label in sorted(self.cv_pct)
        ]
        cv_table = format_table(
            ["module", "CV (measured)", "CV (paper)", "bank max/min"], cv_rows
        )
        return (
            "Fig 3: BER distribution across rows and banks (HC=128K)\n\n"
            + table
            + "\n\nPer-module coefficient of variation across rows:\n\n"
            + cv_table
        )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig3Result:
    boxes: Dict[Tuple[str, int], BoxStats] = {}
    cv: Dict[str, float] = {}
    paper_cv: Dict[str, float] = {}
    agreement: Dict[str, float] = {}
    for label in scale.modules:
        chars = characterize(label, scale)
        per_bank_cv = []
        for bank, profile in chars.banks.items():
            boxes[(label, bank)] = box_stats(profile.ber_at_128k)
            per_bank_cv.append(coefficient_of_variation_pct(profile.ber_at_128k))
        cv[label] = float(np.mean(per_bank_cv))
        paper_cv[label] = module_by_label(label).ber_cv_pct
        agreement[label] = bank_agreement_ratio(chars.per_bank_mean_ber())
    return Fig3Result(
        boxes=boxes, cv_pct=cv, paper_cv_pct=paper_cv, bank_agreement=agreement
    )
