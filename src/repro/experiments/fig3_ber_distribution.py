"""Fig 3: distribution of BER across DRAM rows and banks.

For each module and each representative bank, the paper draws the
box-and-whisker distribution of per-row BER at HC = 128K (WCDP,
tAggOn = 36 ns) and annotates the coefficient of variation across
rows.  This harness regenerates those rows and checks the paper's
Obsvs 1-3: rows vary, banks agree, modules differ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.characterization.metrics import (
    BoxStats,
    bank_agreement_ratio,
    box_stats,
    coefficient_of_variation_pct,
)
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize,
)
from repro.faults.modules import module_by_label

TITLE = "Fig 3: BER distribution across rows and banks (HC=128K)"


@dataclass
class Fig3Result:
    """Per-(module, bank) BER box stats plus per-module CV."""

    boxes: Dict[Tuple[str, int], BoxStats]
    cv_pct: Dict[str, float]
    paper_cv_pct: Dict[str, float]
    bank_agreement: Dict[str, float]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig3Result) -> ResultSet:
    box_rows = [
        (label, bank, stats.mean, stats.q1, stats.median, stats.q3)
        for (label, bank), stats in sorted(result.boxes.items())
    ]
    cv_rows = [
        (
            label,
            result.cv_pct[label],
            result.paper_cv_pct[label],
            result.bank_agreement[label],
        )
        for label in sorted(result.cv_pct)
    ]
    box_display = TableBlock(
        headers=("module", "bank", "mean BER", "Q1", "median", "Q3"),
        rows=[
            (label, str(bank), f"{mean:.3e}", f"{q1:.3e}", f"{median:.3e}",
             f"{q3:.3e}")
            for label, bank, mean, q1, median, q3 in box_rows
        ],
    )
    cv_display = TableBlock(
        headers=("module", "CV (measured)", "CV (paper)", "bank max/min"),
        rows=[
            (label, f"{cv:.2f}%", f"{paper:.2f}%", f"{agreement:.3f}")
            for label, cv, paper, agreement in cv_rows
        ],
    )
    return ResultSet(
        experiment="fig3",
        title=TITLE,
        tables=(
            ResultTable(
                name="ber_boxes",
                headers=("module", "bank", "mean", "q1", "median", "q3"),
                rows=box_rows,
            ),
            ResultTable(
                name="cv",
                headers=(
                    "module", "cv_measured_pct", "cv_paper_pct",
                    "bank_agreement",
                ),
                rows=cv_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            box_display,
            TextBlock(
                "\n\nPer-module coefficient of variation across rows:\n\n"
            ),
            cv_display,
        ),
        plots=(
            PlotSpec(
                name="mean_ber",
                kind="bar",
                table="ber_boxes",
                x="module",
                y=("mean",),
                series="bank",
                title="Fig 3: mean BER per module and bank (HC=128K)",
                ylabel="mean BER",
                logy=True,
            ),
            PlotSpec(
                name="cv",
                kind="bar",
                table="cv",
                x="module",
                y=("cv_measured_pct", "cv_paper_pct"),
                title="Fig 3: BER coefficient of variation across rows",
                ylabel="CV (%)",
            ),
        ),
    )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig3Result:
    boxes: Dict[Tuple[str, int], BoxStats] = {}
    cv: Dict[str, float] = {}
    paper_cv: Dict[str, float] = {}
    agreement: Dict[str, float] = {}
    for label in scale.modules:
        chars = characterize(label, scale)
        per_bank_cv = []
        for bank, profile in chars.banks.items():
            boxes[(label, bank)] = box_stats(profile.ber_at_128k)
            per_bank_cv.append(coefficient_of_variation_pct(profile.ber_at_128k))
        cv[label] = float(np.mean(per_bank_cv))
        paper_cv[label] = module_by_label(label).ber_cv_pct
        agreement[label] = bank_agreement_ratio(chars.per_bank_mean_ber())
    return Fig3Result(
        boxes=boxes, cv_pct=cv, paper_cv_pct=paper_cv, bank_agreement=agreement
    )


@register
class Fig3Experiment(Experiment):
    name = "fig3"
    description = "BER distribution across rows and banks"
    paper_ref = "Fig. 3"

    def build_tasks(self, scale, orch):
        return characterization_groups(scale.modules, scale)

    def reduce(self, scale, outputs):
        absorb_characterizations(scale.modules, scale, outputs)
        return run(scale)

    def result_set(self, result):
        return result_set(result)
