"""Pluggable renderers for :class:`~repro.experiments.api.ResultSet`.

Six renderers ship with the repository:

* ``text`` -- the paper-style fixed-width tables (byte-identical to
  the pre-API ``render()`` output; pinned by the parity snapshots in
  ``tests/golden/text/``).
* ``json`` -- the full structured artifact, round-trippable through
  :meth:`ResultSet.from_json_dict`.
* ``csv`` -- the typed tables as RFC-4180 CSV, one file per
  ``ResultTable`` under ``--out`` (stdout mode concatenates them with
  ``# table:`` separators).
* ``latex`` -- one ``table``/``tabular`` environment per
  ``ResultTable``, cells escaped, ready to ``\\input`` into a paper.
* ``html`` -- a self-contained single-page report (inline SVG charts,
  no matplotlib, no external URLs); the same engine
  (:mod:`repro.experiments.report`) stitches whole artifact trees via
  ``runner report`` -- see REPORTS.md.
* ``mpl`` -- matplotlib paper figures (PNG + SVG) driven by the
  declarative :class:`~repro.experiments.api.PlotSpec` entries.
  matplotlib is imported lazily; on hosts without it the renderer
  raises :class:`RendererUnavailable` with an actionable message
  instead of breaking import of the package.

Add a custom renderer with :func:`register_renderer`::

    class CsvRenderer(Renderer):
        format_name = "csv"
        suffix = ".csv"
        def render(self, result_set): ...

    register_renderer(CsvRenderer())
"""

from __future__ import annotations

import csv
import io
import json
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Dict, List, Sequence

from repro.experiments.api import (
    PlotSpec,
    ResultSet,
    ResultTable,
    split_series,
)


class RendererUnavailable(RuntimeError):
    """The renderer's backing library is not installed."""


def atomic_write_text(path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` via temp file + ``os.replace``.

    Artifacts are served over HTTP by the experiment service while
    sweeps are still writing them; a same-directory rename means a
    concurrent reader sees the complete old file or the complete new
    one, never a truncated write -- the same guarantee the result
    cache makes for pickles.
    """
    import os
    import tempfile

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".tmp-{path.name}-"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class Renderer(ABC):
    """Turns a ResultSet into human- or machine-consumable output."""

    #: Registry key and ``--format`` value.
    format_name: str = ""
    #: Suffix of files written by :meth:`write`.
    suffix: str = ""

    def check_available(self) -> None:
        """Raise :class:`RendererUnavailable` if a dependency is missing.

        Called by the CLI before any experiment executes, so a missing
        backend fails in milliseconds instead of after minutes of
        simulation.
        """

    @abstractmethod
    def render(self, result_set: ResultSet) -> str:
        """The artifact as a string (raise if inherently file-based)."""

    def write(self, result_set: ResultSet, out_dir: Path) -> List[Path]:
        """Write the artifact under ``out_dir``; return created paths."""
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{result_set.experiment}{self.suffix}"
        atomic_write_text(path, self.render(result_set) + "\n")
        return [path]


class TextRenderer(Renderer):
    format_name = "text"
    suffix = ".txt"

    def render(self, result_set: ResultSet) -> str:
        return result_set.render_text()


class JsonRenderer(Renderer):
    format_name = "json"
    suffix = ".json"

    def render(self, result_set: ResultSet) -> str:
        return json.dumps(
            result_set.to_json_dict(), indent=2, sort_keys=True
        )


class CsvRenderer(Renderer):
    """The typed tables as CSV -- the analysis-pipeline format.

    ``write`` produces one file per table
    (``<experiment>.<table>.csv``); ``render`` (stdout mode)
    concatenates them behind ``# table: <name>`` comment lines so the
    output stays a single document.  Scalars travel as a synthetic
    two-column ``scalars`` table when present.
    """

    format_name = "csv"
    suffix = ".csv"

    def render(self, result_set: ResultSet) -> str:
        parts = [
            f"# table: {name}\n{body}"
            for name, body in self._documents(result_set)
        ]
        return "\n".join(parts).rstrip("\n")

    def write(self, result_set: ResultSet, out_dir: Path) -> List[Path]:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths: List[Path] = []
        for name, body in self._documents(result_set):
            path = out_dir / f"{result_set.experiment}.{name}{self.suffix}"
            atomic_write_text(path, body)
            paths.append(path)
        return paths

    def _documents(self, result_set: ResultSet) -> List[tuple]:
        documents = []
        if result_set.scalars:
            documents.append(
                ("scalars", self._csv(
                    ("scalar", "value"),
                    sorted(result_set.scalars.items()),
                ))
            )
        documents.extend(
            (table.name, self._csv(table.headers, table.rows))
            for table in result_set.tables
        )
        return documents

    @staticmethod
    def _csv(headers: Sequence, rows: Sequence[Sequence]) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        writer.writerows(rows)
        return buffer.getvalue()


class LatexRenderer(Renderer):
    """One ``table`` environment per ResultTable, paper-paste ready."""

    format_name = "latex"
    suffix = ".tex"

    #: LaTeX special characters, escaped in cell/caption text.
    _ESCAPES = {
        "\\": r"\textbackslash{}",
        "&": r"\&",
        "%": r"\%",
        "$": r"\$",
        "#": r"\#",
        "_": r"\_",
        "{": r"\{",
        "}": r"\}",
        "~": r"\textasciitilde{}",
        "^": r"\textasciicircum{}",
    }

    def render(self, result_set: ResultSet) -> str:
        blocks = [f"% {result_set.experiment}: {result_set.title}"]
        if result_set.scalars:
            # Headline scalars travel as a synthetic two-column table,
            # mirroring CsvRenderer -- dropping them silently would
            # lose e.g. fig12's mean-improvement numbers.
            blocks.append(self._table(result_set, ResultTable(
                name="scalars",
                headers=("scalar", "value"),
                rows=tuple(sorted(result_set.scalars.items())),
            )))
        for table in result_set.tables:
            blocks.append(self._table(result_set, table))
        return "\n\n".join(blocks)

    # ------------------------------------------------------------------

    def _table(self, result_set: ResultSet, table: ResultTable) -> str:
        columns = "l" * len(table.headers)
        header = " & ".join(
            rf"\textbf{{{self._escape(h)}}}" for h in table.headers
        )
        body = "\n".join(
            "    " + " & ".join(self._cell(cell) for cell in row) + r" \\"
            for row in table.rows
        )
        caption = self._escape(f"{result_set.title} -- {table.name}")
        label = f"tab:{result_set.experiment}-{table.name}"
        return "\n".join([
            r"\begin{table}[h]",
            r"  \centering",
            rf"  \caption{{{caption}}}",
            rf"  \label{{{label}}}",
            rf"  \begin{{tabular}}{{{columns}}}",
            r"    \hline",
            f"    {header} \\\\",
            r"    \hline",
            body,
            r"    \hline",
            r"  \end{tabular}",
            r"\end{table}",
        ])

    def _cell(self, value) -> str:
        if value is None:
            return "--"
        if isinstance(value, float):
            return f"{value:.6g}"
        return self._escape(str(value))

    def _escape(self, text: str) -> str:
        return "".join(self._ESCAPES.get(ch, ch) for ch in text)


class HtmlRenderer(Renderer):
    """A single-ResultSet page of the self-contained HTML report.

    The heavy lifting lives in :mod:`repro.experiments.report`
    (imported lazily to keep this registry module dependency-light);
    charts come from the pure-python SVG plotter, so this renderer is
    available everywhere, matplotlib or not.
    """

    format_name = "html"
    suffix = ".html"

    def render(self, result_set: ResultSet) -> str:
        from repro.experiments.report import build_report

        return build_report(
            [result_set],
            title=result_set.title,
            subtitle=f"experiment: {result_set.experiment}",
        )


class MplRenderer(Renderer):
    """Paper figures via matplotlib, one file pair per PlotSpec."""

    format_name = "mpl"
    suffix = ".png"

    #: File formats written per plot.
    image_formats: Sequence[str] = ("png", "svg")

    def check_available(self) -> None:
        self._matplotlib()

    def render(self, result_set: ResultSet) -> str:
        raise RendererUnavailable(
            "the mpl renderer produces image files; use write(..., out_dir)"
        )

    def write(self, result_set: ResultSet, out_dir: Path) -> List[Path]:
        plt = self._matplotlib()
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        paths: List[Path] = []
        for spec in result_set.plots:
            figure = self._draw(plt, result_set, spec)
            for image_format in self.image_formats:
                path = (
                    out_dir
                    / f"{result_set.experiment}_{spec.name}.{image_format}"
                )
                figure.savefig(path, bbox_inches="tight", dpi=150)
                paths.append(path)
            plt.close(figure)
        return paths

    # ------------------------------------------------------------------

    @staticmethod
    def _matplotlib():
        try:
            import matplotlib
        except ImportError as error:
            raise RendererUnavailable(
                "matplotlib is not installed; install it (pip install "
                "matplotlib) to render paper figures, or use --format "
                "text/json"
            ) from error
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt

    def _draw(self, plt, result_set: ResultSet, spec: PlotSpec):
        table = result_set.table(spec.table)
        figure, axis = plt.subplots(figsize=(6.4, 3.6))
        series = self._split_series(table, spec)
        if spec.kind == "bar":
            self._bar(axis, series, table, spec)
        else:
            for label, rows in series.items():
                x_index = table.headers.index(spec.x)
                for y_column in spec.y:
                    y_index = table.headers.index(y_column)
                    # None cells are missing data points, not zeros.
                    points = [
                        (row[x_index], row[y_index])
                        for row in rows
                        if row[y_index] is not None
                    ]
                    xs = [x for x, _ in points]
                    ys = [y for _, y in points]
                    plot_label = (
                        label if len(spec.y) == 1 else
                        (f"{label} {y_column}" if label else y_column)
                    )
                    if spec.kind == "line":
                        (line,) = axis.plot(xs, ys, marker="o",
                                            markersize=3, label=plot_label)
                        band_color = line.get_color()
                    else:
                        path = axis.scatter(xs, ys, s=12, label=plot_label)
                        band_color = path.get_facecolor()[0]
                    band = spec.band_for(y_column)
                    if band is not None:
                        # Min--max envelope from the seed-matrix
                        # aggregation layer (see aggregate.py).
                        low_index = table.headers.index(band[0])
                        high_index = table.headers.index(band[1])
                        envelope = [
                            (row[x_index], row[low_index], row[high_index])
                            for row in rows
                            if row[low_index] is not None
                            and row[high_index] is not None
                        ]
                        if envelope:
                            axis.fill_between(
                                [e[0] for e in envelope],
                                [e[1] for e in envelope],
                                [e[2] for e in envelope],
                                color=band_color, alpha=0.15, linewidth=0,
                            )
        if spec.logx:
            axis.set_xscale("log")
        if spec.logy:
            axis.set_yscale("log")
        axis.set_title(spec.title or result_set.title, fontsize=9)
        axis.set_xlabel(spec.xlabel or spec.x)
        axis.set_ylabel(spec.ylabel or ", ".join(spec.y))
        if any(label for label in series) or len(spec.y) > 1:
            axis.legend(fontsize=7)
        axis.grid(True, alpha=0.3)
        return figure

    def _bar(self, axis, series, table: ResultTable, spec: PlotSpec):
        """Grouped bars: categories on x, one bar group per series/y."""
        categories: List = []
        for rows in series.values():
            for row in rows:
                value = row[table.headers.index(spec.x)]
                if value not in categories:
                    categories.append(value)
        groups = [
            (
                (f"{label} {y}" if label and len(spec.y) > 1 else
                 (label or y)),
                y,
                {row[table.headers.index(spec.x)]: row for row in rows},
            )
            for label, rows in series.items()
            for y in spec.y
        ]
        width = 0.8 / max(len(groups), 1)
        for offset, (label, y_column, by_category) in enumerate(groups):
            y_index = table.headers.index(y_column)
            positions = [
                index + offset * width for index in range(len(categories))
            ]
            # Absent categories and None cells both render as no bar.
            heights = [
                value
                if (row := by_category.get(c)) is not None
                and (value := row[y_index]) is not None
                else 0.0
                for c in categories
            ]
            axis.bar(positions, heights, width=width, label=label)
            band = spec.band_for(y_column)
            if band is not None:
                # Min--max whiskers from the seed-matrix aggregation
                # layer, matching the SVG plotter's bar bands.
                low_index = table.headers.index(band[0])
                high_index = table.headers.index(band[1])
                whiskers = [
                    (position, height, row[low_index], row[high_index])
                    for position, height, c in
                    zip(positions, heights, categories)
                    if (row := by_category.get(c)) is not None
                    and row[low_index] is not None
                    and row[high_index] is not None
                ]
                if whiskers:
                    axis.errorbar(
                        [w[0] for w in whiskers],
                        [w[1] for w in whiskers],
                        yerr=[
                            [w[1] - w[2] for w in whiskers],
                            [w[3] - w[1] for w in whiskers],
                        ],
                        fmt="none", ecolor="black", elinewidth=1,
                        capsize=2,
                    )
        axis.set_xticks(
            [
                index + width * (len(groups) - 1) / 2
                for index in range(len(categories))
            ]
        )
        axis.set_xticklabels([str(c) for c in categories], fontsize=7)

    #: Shared with the SVG plotter so both chart paths agree on what
    #: the series are (single definition in api.py).
    _split_series = staticmethod(split_series)


_RENDERERS: Dict[str, Renderer] = {}


def register_renderer(renderer: Renderer) -> Renderer:
    if not renderer.format_name:
        raise ValueError("renderer must set format_name")
    _RENDERERS[renderer.format_name] = renderer
    return renderer


def get_renderer(format_name: str) -> Renderer:
    try:
        return _RENDERERS[format_name]
    except KeyError:
        raise KeyError(
            f"unknown format {format_name!r}; known: {sorted(_RENDERERS)}"
        ) from None


def renderer_names() -> List[str]:
    return sorted(_RENDERERS)


register_renderer(TextRenderer())
register_renderer(JsonRenderer())
register_renderer(CsvRenderer())
register_renderer(LatexRenderer())
register_renderer(HtmlRenderer())
register_renderer(MplRenderer())
