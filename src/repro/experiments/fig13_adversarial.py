"""Fig 13: Hydra and RRS under adversarial access patterns.

At a worst-case HC_first of 64, the paper measures the slowdown of
Hydra under a counter-cache-thrashing pattern and of RRS under a
single-row hammer, for No Svärd and the three Svärd profiles,
normalized to No Svärd.  Svärd reduces both (Obsv 16), most with the
Mfr. S profile (Obsv 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import SvardThresholds, ThresholdProvider
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    NO_SVARD,
    ExperimentScale,
    scaled_profile,
    svard_configurations,
)
from repro.orchestration import (
    OrchestrationContext,
    Task,
    TaskGroup,
    make_task,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.workloads.adversarial import HydraAdversarialTrace, RrsAdversarialTrace

HC_FIRST = 64


@dataclass
class Fig13Result:
    #: (defense, configuration) -> slowdown normalized to No Svärd.
    normalized_slowdown: Dict[Tuple[str, str], float]
    #: (defense, configuration) -> raw slowdown vs no-defense baseline.
    raw_slowdown: Dict[Tuple[str, str], float]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig13Result) -> ResultSet:
    title = f"Fig 13: adversarial access patterns at HC_first = {HC_FIRST}"
    data_rows = [
        (
            defense,
            config,
            result.raw_slowdown[(defense, config)],
            value,
        )
        for (defense, config), value in sorted(
            result.normalized_slowdown.items()
        )
    ]
    return ResultSet(
        experiment="fig13",
        title=title,
        scalars={"hc_first": HC_FIRST},
        tables=(
            ResultTable(
                name="slowdown",
                headers=(
                    "defense", "config", "raw_slowdown",
                    "normalized_slowdown",
                ),
                rows=data_rows,
            ),
        ),
        layout=(
            TextBlock(title + "\n\n"),
            TableBlock(
                headers=(
                    "defense", "config", "slowdown", "norm. to No Svärd",
                ),
                rows=[
                    (defense, config, f"{raw:.2f}", f"{normalized:.3f}")
                    for defense, config, raw, normalized in data_rows
                ],
            ),
        ),
        plots=(
            PlotSpec(
                name="slowdown",
                kind="bar",
                table="slowdown",
                x="defense",
                y=("normalized_slowdown",),
                series="config",
                title=title,
                ylabel="slowdown normalized to No Svärd",
            ),
        ),
    )


#: Scaled-down row-count-cache capacity for the adversarial study:
#: the trace's working set must exceed it (see EXPERIMENTS.md).
HYDRA_RCC_ENTRIES = 512


def _adversarial_traces(defense_name: str, config: SystemConfig) -> List:
    if defense_name == "Hydra":
        # The attacker revisits each row often enough that its group
        # escalates to exact tracking even under Svärd's relaxed
        # thresholds -- Hydra's counter traffic is then threshold-
        # independent, which is the attack's point.
        return [
            HydraAdversarialTrace(
                n_rows=640,
                bank_stride=config.total_banks,
                rows_per_bank=config.rows_per_bank,
                start_offset=core * 80,
            )
            for core in range(config.cores)
        ]
    return [
        RrsAdversarialTrace(
            target_row=997 * (core + 1) % config.rows_per_bank,
            scratch_row=(997 * (core + 1) + 64) % config.rows_per_bank,
            bank=core % config.total_banks,
        )
        for core in range(config.cores)
    ]


def _baseline_task(task: Task) -> List[float]:
    """No-defense finish times under one adversarial pattern."""
    defense_name, config = task.params
    return MemorySystem(
        config, _adversarial_traces(defense_name, config)
    ).run().finish_times()


def _attack_task(task: Task) -> List[float]:
    """Finish times of one (defense, Svärd configuration) under attack."""
    defense_name, configuration, scale, config = task.params
    thresholds: Optional[ThresholdProvider] = None
    if configuration != NO_SVARD:
        profile = scaled_profile(
            configuration.removeprefix("Svärd-"), HC_FIRST, scale
        )
        thresholds = SvardThresholds(Svard.build(profile))
    kwargs = dict(rows_per_bank=config.rows_per_bank, seed=scale.seed)
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    if defense_name == "Hydra":
        kwargs["rcc_entries"] = HYDRA_RCC_ENTRIES
    defense = DEFENSE_CLASSES[defense_name](HC_FIRST, **kwargs)
    return MemorySystem(
        config, _adversarial_traces(defense_name, config), defense=defense
    ).run().finish_times()


@register
class Fig13Experiment(Experiment):
    name = "fig13"
    description = "Hydra and RRS under adversarial access patterns"
    paper_ref = "Fig. 13"

    DEFENSE_NAMES = ("Hydra", "RRS")

    def __init__(self, system_config: Optional[SystemConfig] = None) -> None:
        self.system_config = system_config

    def _config(self, scale: ExperimentScale) -> SystemConfig:
        return self.system_config or scale.system_config(
            requests_per_core=max(scale.requests_per_core, 12_000),
            defense_epoch_ns=1_000_000.0,
        )

    def build_tasks(self, scale, orch):
        config = self._config(scale)
        tasks = [
            make_task(
                ("fig13", "baseline", defense_name),
                _baseline_task,
                (defense_name, config),
                base_seed=scale.seed,
            )
            for defense_name in self.DEFENSE_NAMES
        ]
        tasks += [
            make_task(
                ("fig13", "attack", defense_name, configuration),
                _attack_task,
                (defense_name, configuration, scale, config),
                base_seed=scale.seed,
            )
            for defense_name in self.DEFENSE_NAMES
            for configuration in svard_configurations(scale)
        ]
        return [TaskGroup(tasks=tuple(tasks), fingerprint=("fig13", scale, config))]

    def reduce(self, scale, outputs):
        configurations = svard_configurations(scale)
        raw: Dict[Tuple[str, str], float] = {}
        normalized: Dict[Tuple[str, str], float] = {}
        for defense_name in self.DEFENSE_NAMES:
            base_times = np.array(outputs[("fig13", "baseline", defense_name)])
            for configuration in configurations:
                times = outputs[("fig13", "attack", defense_name, configuration)]
                raw[(defense_name, configuration)] = float(
                    np.mean(np.array(times) / base_times)
                )
            reference = raw[(defense_name, NO_SVARD)]
            for configuration in configurations:
                normalized[(defense_name, configuration)] = (
                    raw[(defense_name, configuration)] / reference
                )
        return Fig13Result(normalized_slowdown=normalized, raw_slowdown=raw)

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    system_config: Optional[SystemConfig] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> Fig13Result:
    return Fig13Experiment(system_config=system_config).run(scale, orchestration)
