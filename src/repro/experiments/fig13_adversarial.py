"""Fig 13: Hydra and RRS under adversarial access patterns.

At a worst-case HC_first of 64, the paper measures the slowdown of
Hydra under a counter-cache-thrashing pattern and of RRS under a
single-row hammer, for No Svärd and the three Svärd profiles,
normalized to No Svärd.  Svärd reduces both (Obsv 16), most with the
Mfr. S profile (Obsv 17).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import SvardThresholds, ThresholdProvider
from repro.experiments.common import (
    ExperimentScale,
    format_table,
    scaled_profile,
)
from repro.orchestration import OrchestrationContext, Task, make_task, serial_context
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.workloads.adversarial import HydraAdversarialTrace, RrsAdversarialTrace

NO_SVARD = "No Svärd"
HC_FIRST = 64


@dataclass
class Fig13Result:
    #: (defense, configuration) -> slowdown normalized to No Svärd.
    normalized_slowdown: Dict[Tuple[str, str], float]
    #: (defense, configuration) -> raw slowdown vs no-defense baseline.
    raw_slowdown: Dict[Tuple[str, str], float]

    def render(self) -> str:
        rows = [
            [defense, config, f"{self.raw_slowdown[(defense, config)]:.2f}",
             f"{value:.3f}"]
            for (defense, config), value in sorted(self.normalized_slowdown.items())
        ]
        return (
            f"Fig 13: adversarial access patterns at HC_first = {HC_FIRST}\n\n"
            + format_table(
                ["defense", "config", "slowdown", "norm. to No Svärd"], rows
            )
        )


#: Scaled-down row-count-cache capacity for the adversarial study:
#: the trace's working set must exceed it (see EXPERIMENTS.md).
HYDRA_RCC_ENTRIES = 512


def _adversarial_traces(defense_name: str, config: SystemConfig) -> List:
    if defense_name == "Hydra":
        # The attacker revisits each row often enough that its group
        # escalates to exact tracking even under Svärd's relaxed
        # thresholds -- Hydra's counter traffic is then threshold-
        # independent, which is the attack's point.
        return [
            HydraAdversarialTrace(
                n_rows=640,
                bank_stride=config.total_banks,
                rows_per_bank=config.rows_per_bank,
                start_offset=core * 80,
            )
            for core in range(config.cores)
        ]
    return [
        RrsAdversarialTrace(
            target_row=997 * (core + 1) % config.rows_per_bank,
            scratch_row=(997 * (core + 1) + 64) % config.rows_per_bank,
            bank=core % config.total_banks,
        )
        for core in range(config.cores)
    ]


def _baseline_task(task: Task) -> List[float]:
    """No-defense finish times under one adversarial pattern."""
    defense_name, config = task.params
    return MemorySystem(
        config, _adversarial_traces(defense_name, config)
    ).run().finish_times()


def _attack_task(task: Task) -> List[float]:
    """Finish times of one (defense, Svärd configuration) under attack."""
    defense_name, configuration, scale, config = task.params
    thresholds: Optional[ThresholdProvider] = None
    if configuration != NO_SVARD:
        profile = scaled_profile(
            configuration.removeprefix("Svärd-"), HC_FIRST, scale
        )
        thresholds = SvardThresholds(Svard.build(profile))
    kwargs = dict(rows_per_bank=config.rows_per_bank, seed=scale.seed)
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    if defense_name == "Hydra":
        kwargs["rcc_entries"] = HYDRA_RCC_ENTRIES
    defense = DEFENSE_CLASSES[defense_name](HC_FIRST, **kwargs)
    return MemorySystem(
        config, _adversarial_traces(defense_name, config), defense=defense
    ).run().finish_times()


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    system_config: Optional[SystemConfig] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> Fig13Result:
    orch = orchestration or serial_context()
    config = system_config or SystemConfig(
        requests_per_core=max(scale.requests_per_core, 12_000),
        defense_epoch_ns=1_000_000.0,
    )
    configurations = (NO_SVARD,) + tuple(
        f"Svärd-{label}" for label in scale.svard_profiles
    )
    defense_names = ("Hydra", "RRS")
    tasks = [
        make_task(
            ("fig13", "baseline", defense_name),
            _baseline_task,
            (defense_name, config),
            base_seed=scale.seed,
        )
        for defense_name in defense_names
    ]
    tasks += [
        make_task(
            ("fig13", "attack", defense_name, configuration),
            _attack_task,
            (defense_name, configuration, scale, config),
            base_seed=scale.seed,
        )
        for defense_name in defense_names
        for configuration in configurations
    ]
    outputs = orch.run(tasks, fingerprint=("fig13", scale, config))

    raw: Dict[Tuple[str, str], float] = {}
    normalized: Dict[Tuple[str, str], float] = {}
    for defense_name in defense_names:
        base_times = np.array(outputs[("fig13", "baseline", defense_name)])
        for configuration in configurations:
            times = outputs[("fig13", "attack", defense_name, configuration)]
            raw[(defense_name, configuration)] = float(
                np.mean(np.array(times) / base_times)
            )
        reference = raw[(defense_name, NO_SVARD)]
        for configuration in configurations:
            normalized[(defense_name, configuration)] = (
                raw[(defense_name, configuration)] / reference
            )
    return Fig13Result(normalized_slowdown=normalized, raw_slowdown=raw)
