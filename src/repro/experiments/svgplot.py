"""A pure-python SVG plotter for declarative :class:`PlotSpec`\\ s.

The mpl renderer needs matplotlib, which the CI container (and many
cluster hosts) does not ship.  This module renders the same three
spec kinds -- ``line``, ``bar``, ``scatter`` -- straight to SVG text
with nothing beyond the standard library, so the HTML paper report
(:mod:`repro.experiments.report`) stays fully self-contained.

Design notes:

* Series split, None-cell skipping, and grouped-bar layout mirror
  :class:`repro.experiments.render.MplRenderer` so the two chart
  paths agree on what the data means.
* Error bands: when a spec carries ``ybands`` entries (emitted by the
  seed-matrix aggregation layer), a shaded low--high envelope is
  drawn behind each mean line/point run.
* Colors follow a fixed eight-slot categorical palette (validated
  for adjacent-pair colorblind separation on a light surface); series
  beyond eight reuse the hues with dash patterns as the secondary
  encoding rather than inventing new colors.
* Every mark carries an SVG ``<title>`` child, so hovering in any
  browser shows the exact (series, x, y) values with no JavaScript.
"""

from __future__ import annotations

import math
from html import escape
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.api import (
    PlotSpec,
    ResultSet,
    ResultTable,
    format_scalar,
    is_number,
    split_series,
)

__all__ = ["SvgPlotError", "render_plot"]


class SvgPlotError(ValueError):
    """The spec cannot be drawn (missing columns, empty/invalid data)."""


#: Fixed categorical order (light-surface steps; see REPORTS.md).
PALETTE: Tuple[str, ...] = (
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
)

#: Dash patterns cycled when more than eight series share one chart
#: (hue + dash = composite encoding, never new hues).
DASHES: Tuple[Optional[str], ...] = (None, "6 3", "2 3")

_TEXT = "#0b0b0b"
_TEXT_MUTED = "#52514e"
_AXIS = "#b5b4ae"
_GRID = "#ececea"
_SURFACE = "#fcfcfb"

_WIDTH = 640
_HEIGHT = 340
_MARGIN_LEFT = 64
_MARGIN_RIGHT = 16
_MARGIN_TOP = 34
_MARGIN_BOTTOM = 52
_LEGEND_WIDTH = 190
_LEGEND_LINE = 16


_is_number = is_number
_fmt = format_scalar


def _tick_label(tick: float, step: float) -> str:
    """Tick text with precision derived from the tick spacing.

    A fixed significant-digit rule would collapse narrow
    high-magnitude domains (e.g. ticks 101234.2 and 101234.4 both as
    "1.012e+05") -- exactly what aggregated mean columns produce.
    ``_nice_ticks`` steps are 1/2/5 x 10^k, so ``ceil(-log10(step))``
    decimals always resolve adjacent ticks.
    """
    if step <= 0 or not math.isfinite(step):
        return _fmt(tick)
    decimals = max(0, math.ceil(-math.log10(step)))
    if decimals == 0:
        return str(int(round(tick)))
    return f"{tick:.{min(decimals, 12)}f}"


def _nice_ticks(lo: float, hi: float, target: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi] on a 1/2/5 grid."""
    if hi <= lo:
        return [lo]
    span = hi - lo
    raw_step = span / max(target - 1, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw_step))
    for factor in (1.0, 2.0, 5.0, 10.0):
        step = factor * magnitude
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    tick = first
    while tick <= hi + step * 1e-9:
        ticks.append(0.0 if abs(tick) < step * 1e-9 else tick)
        tick += step
    return ticks or [lo]


def _log_ticks(lo: float, hi: float) -> List[float]:
    """Decade ticks across [lo, hi]; 1-2-5 mantissas on narrow ranges."""
    decades = range(
        math.floor(math.log10(lo)), math.ceil(math.log10(hi)) + 1
    )
    ticks = [10.0 ** d for d in decades]
    if len([t for t in ticks if lo <= t <= hi]) < 2:
        ticks = sorted(
            m * 10.0 ** d for d in decades for m in (1.0, 2.0, 5.0)
        )
    return [t for t in ticks if lo * (1 - 1e-9) <= t <= hi * (1 + 1e-9)]


class _Scale:
    """Maps data values onto a pixel interval, linear or log."""

    def __init__(
        self, lo: float, hi: float, px_lo: float, px_hi: float, log: bool
    ) -> None:
        if log:
            if lo <= 0:
                raise SvgPlotError(
                    f"log scale requires positive values, got minimum {lo}"
                )
            lo, hi = math.log10(lo), math.log10(hi)
        if hi <= lo:  # degenerate domain (single distinct value)
            pad = abs(lo) * 0.05 or 0.5
            lo, hi = lo - pad, hi + pad
        self.lo, self.hi, self.px_lo, self.px_hi = lo, hi, px_lo, px_hi
        self.log = log

    def __call__(self, value: float) -> float:
        v = math.log10(value) if self.log else float(value)
        fraction = (v - self.lo) / (self.hi - self.lo)
        return self.px_lo + fraction * (self.px_hi - self.px_lo)

    def domain(self) -> Tuple[float, float]:
        if self.log:
            return (10.0 ** self.lo, 10.0 ** self.hi)
        return (self.lo, self.hi)


_split_series = split_series


def _column_index(table: ResultTable, column: str, spec: PlotSpec) -> int:
    try:
        return table.headers.index(column)
    except ValueError:
        raise SvgPlotError(
            f"plot {spec.name!r}: table {table.name!r} has no column "
            f"{column!r} (headers: {list(table.headers)})"
        ) from None


def _series_label(label: str, y_column: str, spec: PlotSpec) -> str:
    if len(spec.y) == 1:
        return label or y_column
    return f"{label} {y_column}" if label else y_column


def _style(slot: int) -> Tuple[str, Optional[str]]:
    color = PALETTE[slot % len(PALETTE)]
    dash = DASHES[(slot // len(PALETTE)) % len(DASHES)]
    return color, dash


def render_plot(
    result_set: ResultSet,
    spec: PlotSpec,
    *,
    width: int = _WIDTH,
    height: int = _HEIGHT,
) -> str:
    """One PlotSpec as a standalone ``<svg>`` element (a string)."""
    table = result_set.table(spec.table)
    if not table.rows:
        raise SvgPlotError(
            f"plot {spec.name!r}: table {spec.table!r} has no rows"
        )
    if spec.kind == "bar":
        return _BarChart(result_set, spec, table, width, height).render()
    return _XYChart(result_set, spec, table, width, height).render()


class _Chart:
    """Shared frame: surface, title, axes, grid, legend, assembly."""

    def __init__(self, result_set, spec, table, width, height) -> None:
        self.result_set = result_set
        self.spec = spec
        self.table = table
        self.plot_w = width
        self.height = height
        self.left = _MARGIN_LEFT
        self.right = width - _MARGIN_RIGHT
        self.top = _MARGIN_TOP
        self.bottom = height - _MARGIN_BOTTOM
        self.series = _split_series(table, spec)
        self.legend_entries: List[Tuple[str, str, Optional[str]]] = []
        self.body: List[str] = []

    # -- frame pieces --------------------------------------------------

    def _title(self) -> str:
        text = escape(self.spec.title or self.result_set.title)
        return (
            f'<text x="{self.left}" y="18" fill="{_TEXT}" '
            f'font-size="12" font-weight="600">{text}</text>'
        )

    def _axis_labels(self) -> List[str]:
        xlabel = escape(self.spec.xlabel or self.spec.x)
        ylabel = escape(self.spec.ylabel or ", ".join(self.spec.y))
        mid_x = (self.left + self.right) / 2
        mid_y = (self.top + self.bottom) / 2
        return [
            f'<text x="{mid_x:.1f}" y="{self.height - 10}" '
            f'fill="{_TEXT_MUTED}" font-size="11" '
            f'text-anchor="middle">{xlabel}</text>',
            f'<text x="14" y="{mid_y:.1f}" fill="{_TEXT_MUTED}" '
            f'font-size="11" text-anchor="middle" '
            f'transform="rotate(-90 14 {mid_y:.1f})">{ylabel}</text>',
        ]

    def _frame(self) -> str:
        return (
            f'<path d="M {self.left} {self.top} V {self.bottom} '
            f'H {self.right}" fill="none" stroke="{_AXIS}" '
            f'stroke-width="1"/>'
        )

    @staticmethod
    def _labels(ticks: Sequence[float], log: bool) -> List[str]:
        """Step-aware labels for linear ticks, compact for decades."""
        if log or len(ticks) < 2:
            return [_fmt(tick) for tick in ticks]
        step = min(b - a for a, b in zip(ticks, ticks[1:]))
        return [_tick_label(tick, step) for tick in ticks]

    def _y_grid(self, scale: _Scale, ticks: Sequence[float]) -> None:
        for tick, label in zip(ticks, self._labels(ticks, scale.log)):
            py = scale(tick)
            self.body.append(
                f'<line x1="{self.left}" y1="{py:.1f}" '
                f'x2="{self.right}" y2="{py:.1f}" stroke="{_GRID}" '
                f'stroke-width="1"/>'
            )
            self.body.append(
                f'<text x="{self.left - 6}" y="{py + 3.5:.1f}" '
                f'fill="{_TEXT_MUTED}" font-size="10" '
                f'text-anchor="end">{escape(label)}</text>'
            )

    def _x_tick(self, px: float, label: str) -> None:
        self.body.append(
            f'<line x1="{px:.1f}" y1="{self.bottom}" x2="{px:.1f}" '
            f'y2="{self.bottom + 4}" stroke="{_AXIS}" stroke-width="1"/>'
        )
        self.body.append(
            f'<text x="{px:.1f}" y="{self.bottom + 16}" '
            f'fill="{_TEXT_MUTED}" font-size="10" '
            f'text-anchor="middle">{escape(label)}</text>'
        )

    def _legend(self) -> List[str]:
        if len(self.legend_entries) < 2:
            return []
        parts = []
        x = self.plot_w + 8
        y = self.top + 4
        for label, color, dash in self.legend_entries:
            dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
            parts.append(
                f'<line x1="{x}" y1="{y}" x2="{x + 18}" y2="{y}" '
                f'stroke="{color}" stroke-width="3"{dash_attr}/>'
            )
            parts.append(
                f'<text x="{x + 24}" y="{y + 3.5}" fill="{_TEXT}" '
                f'font-size="10">{escape(label)}</text>'
            )
            y += _LEGEND_LINE
        return parts

    def _assemble(self) -> str:
        legend = self._legend()
        total_w = self.plot_w + (_LEGEND_WIDTH if legend else 0)
        needed_h = (
            self.top + 4 + len(self.legend_entries) * _LEGEND_LINE + 8
            if legend
            else 0
        )
        total_h = max(self.height, needed_h)
        pieces = [
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{total_w}" height="{total_h}" '
            f'viewBox="0 0 {total_w} {total_h}" role="img" '
            f'font-family="system-ui, sans-serif">',
            f'<rect width="{total_w}" height="{total_h}" '
            f'fill="{_SURFACE}"/>',
            self._title(),
            *self.body,
            self._frame(),
            *self._axis_labels(),
            *legend,
            "</svg>",
        ]
        return "\n".join(pieces)

    def _tooltip(self, label: str, x_value, y_value) -> str:
        text = escape(
            f"{label + ': ' if label else ''}"
            f"{self.spec.x}={_fmt(x_value)}, {_fmt(y_value)}"
        )
        return f"<title>{text}</title>"


class _XYChart(_Chart):
    """``line`` and ``scatter`` kinds; numeric or categorical x."""

    def render(self) -> str:
        spec, table = self.spec, self.table
        x_index = _column_index(table, spec.x, spec)
        x_values = [row[x_index] for row in table.rows]
        categorical = not all(
            _is_number(v) for v in x_values if v is not None
        )
        if categorical and spec.logx:
            raise SvgPlotError(
                f"plot {spec.name!r}: logx needs a numeric x column"
            )
        categories: List = []
        if categorical:
            for value in x_values:
                # None x cells are skipped by _collect_runs; giving
                # them a tick would draw a phantom empty category.
                if value is not None and value not in categories:
                    categories.append(value)

        runs = self._collect_runs(x_index, categories)
        if not any(points for _, _, points, _ in runs):
            raise SvgPlotError(
                f"plot {spec.name!r}: no drawable points (all cells None?)"
            )

        x_scale, y_scale = self._scales(runs, categorical, categories)
        y_ticks = (
            _log_ticks(*y_scale.domain())
            if spec.logy
            else _nice_ticks(*y_scale.domain())
        )
        self._y_grid(y_scale, y_ticks)
        if categorical:
            for position, category in enumerate(categories):
                self._x_tick(x_scale(position), _fmt(category))
        else:
            lo, hi = x_scale.domain()
            ticks = _log_ticks(lo, hi) if spec.logx else _nice_ticks(lo, hi)
            for tick, label in zip(ticks, self._labels(ticks, spec.logx)):
                self._x_tick(x_scale(tick), label)

        for slot, (label, y_column, points, band) in enumerate(runs):
            color, dash = _style(slot)
            self.legend_entries.append((label, color, dash))
            self._draw_band(band, x_scale, y_scale, color)
            self._draw_run(label, points, x_scale, y_scale, color, dash)
        return self._assemble()

    # ------------------------------------------------------------------

    def _collect_runs(self, x_index: int, categories: List):
        """``(label, y_column, [(x, y, raw_x)], [(x, lo, hi)])`` per run."""
        spec, table = self.spec, self.table
        runs = []
        for label, rows in self.series.items():
            for y_column in spec.y:
                y_index = _column_index(table, y_column, spec)
                band_columns = spec.band_for(y_column)
                points, band = [], []
                for row in rows:
                    raw_x, y = row[x_index], row[y_index]
                    if raw_x is None or y is None:
                        continue  # missing data points, not zeros
                    if not _is_number(y):
                        raise SvgPlotError(
                            f"plot {spec.name!r}: non-numeric y value "
                            f"{y!r} in column {y_column!r}"
                        )
                    x = categories.index(raw_x) if categories else raw_x
                    points.append((x, y, raw_x))
                    if band_columns is not None:
                        low = row[_column_index(table, band_columns[0], spec)]
                        high = row[_column_index(table, band_columns[1], spec)]
                        if low is not None and high is not None:
                            band.append((x, low, high))
                runs.append(
                    (_series_label(label, y_column, spec), y_column,
                     points, band)
                )
        return runs

    def _scales(self, runs, categorical, categories):
        spec = self.spec
        ys = [y for _, _, points, _ in runs for _, y, _ in points]
        ys += [v for _, _, _, band in runs for _, lo, hi in band
               for v in (lo, hi)]
        if categorical:
            x_scale = _Scale(
                -0.5, len(categories) - 0.5, self.left, self.right, False
            )
        else:
            xs = [x for _, _, points, _ in runs for x, _, _ in points]
            x_scale = _Scale(
                min(xs), max(xs), self.left, self.right, spec.logx
            )
        y_scale = _Scale(
            min(ys), max(ys), self.bottom, self.top, spec.logy
        )
        return x_scale, y_scale

    def _draw_band(self, band, x_scale, y_scale, color) -> None:
        if len(band) < 2:
            return
        upper = [(x_scale(x), y_scale(hi)) for x, _, hi in band]
        lower = [(x_scale(x), y_scale(lo)) for x, lo, _ in reversed(band)]
        points = " ".join(f"{px:.1f},{py:.1f}" for px, py in upper + lower)
        self.body.append(
            f'<polygon points="{points}" fill="{color}" '
            f'fill-opacity="0.14" stroke="none"/>'
        )

    def _draw_run(self, label, points, x_scale, y_scale, color, dash):
        if not points:
            return
        coordinates = [
            (x_scale(x), y_scale(y), raw_x, y) for x, y, raw_x in points
        ]
        if self.spec.kind == "line" and len(coordinates) > 1:
            path = " ".join(
                f"{px:.1f},{py:.1f}" for px, py, _, _ in coordinates
            )
            dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
            self.body.append(
                f'<polyline points="{path}" fill="none" stroke="{color}" '
                f'stroke-width="2" stroke-linejoin="round"{dash_attr}/>'
            )
        radius = 3 if self.spec.kind == "line" else 4
        for px, py, raw_x, y in coordinates:
            self.body.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="{radius}" '
                f'fill="{color}" stroke="{_SURFACE}" stroke-width="1">'
                f"{self._tooltip(label, raw_x, y)}</circle>"
            )


class _BarChart(_Chart):
    """Grouped bars: categories on x, one bar group per series/y."""

    def render(self) -> str:
        spec, table = self.spec, self.table
        x_index = _column_index(table, spec.x, spec)
        categories: List = []
        for rows in self.series.values():
            for row in rows:
                if row[x_index] is not None and row[x_index] not in categories:
                    categories.append(row[x_index])

        groups = []  # (label, y_column, {category: row})
        for label, rows in self.series.items():
            for y_column in spec.y:
                y_index = _column_index(table, y_column, spec)
                by_category = {
                    row[x_index]: row
                    for row in rows
                    if row[x_index] is not None
                    and row[y_index] is not None
                }
                groups.append(
                    (_series_label(label, y_column, spec), y_column,
                     by_category)
                )
        values = [
            row[_column_index(table, y_column, spec)]
            for _, y_column, by in groups
            for row in by.values()
        ]
        # Whisker endpoints must fit inside the scale domain too.
        for _, y_column, by in groups:
            band_columns = spec.band_for(y_column)
            if band_columns is None:
                continue
            values += [
                row[_column_index(table, column, spec)]
                for row in by.values()
                for column in band_columns
                if row[_column_index(table, column, spec)] is not None
            ]
        if not values:
            raise SvgPlotError(
                f"plot {spec.name!r}: no drawable bars (all cells None?)"
            )
        for value in values:
            if not _is_number(value):
                raise SvgPlotError(
                    f"plot {spec.name!r}: non-numeric bar value {value!r}"
                )

        if spec.logy:
            # Log bars have no zero: anchor them at the axis floor,
            # half a decade below the smallest value (mpl's behavior).
            if min(values) <= 0:
                raise SvgPlotError(
                    f"plot {spec.name!r}: logy bars need positive values"
                )
            y_scale = _Scale(
                min(values) / math.sqrt(10.0), max(values),
                self.bottom, self.top, True,
            )
            y_ticks = _log_ticks(*y_scale.domain())
        else:
            y_scale = _Scale(
                min(0.0, min(values)), max(0.0, max(values)),
                self.bottom, self.top, False,
            )
            y_ticks = _nice_ticks(*y_scale.domain())
        self._y_grid(y_scale, y_ticks)

        slot_width = (self.right - self.left) / max(len(categories), 1)
        bar_width = max(
            (slot_width * 0.8 - 2 * (len(groups) - 1)) / max(len(groups), 1),
            2.0,
        )
        baseline = self.bottom if spec.logy else y_scale(0.0)
        for slot, (label, y_column, by_category) in enumerate(groups):
            color, _ = _style(slot)
            self.legend_entries.append((label, color, None))
            y_index = _column_index(table, y_column, spec)
            band_columns = spec.band_for(y_column)
            for position, category in enumerate(categories):
                row = by_category.get(category)
                if row is None:
                    continue  # absent category: no bar, not a zero bar
                value = row[y_index]
                group_left = (
                    self.left + position * slot_width + slot_width * 0.1
                )
                px = group_left + slot * (bar_width + 2)
                py = y_scale(value)
                top, bottom = min(py, baseline), max(py, baseline)
                bar_height = max(bottom - top, 1.0)
                self.body.append(
                    f'<rect x="{px:.1f}" y="{top:.1f}" '
                    f'width="{bar_width:.1f}" height="{bar_height:.1f}" '
                    f'rx="2" fill="{color}">'
                    f"{self._tooltip(label, category, value)}</rect>"
                )
                self._whisker(row, band_columns, px + bar_width / 2,
                              y_scale)
        for position, category in enumerate(categories):
            self._x_tick(
                self.left + (position + 0.5) * slot_width, _fmt(category)
            )
        return self._assemble()

    def _whisker(self, row, band_columns, px, y_scale) -> None:
        """A low--high error whisker at one bar's center."""
        if band_columns is None:
            return
        low = row[_column_index(self.table, band_columns[0], self.spec)]
        high = row[_column_index(self.table, band_columns[1], self.spec)]
        if low is None or high is None or low == high:
            return
        y_low, y_high = y_scale(low), y_scale(high)
        for py in (y_low, y_high):
            self.body.append(
                f'<line x1="{px - 3:.1f}" y1="{py:.1f}" '
                f'x2="{px + 3:.1f}" y2="{py:.1f}" stroke="{_TEXT}" '
                f'stroke-width="1.5"/>'
            )
        self.body.append(
            f'<line x1="{px:.1f}" y1="{y_low:.1f}" x2="{px:.1f}" '
            f'y2="{y_high:.1f}" stroke="{_TEXT}" stroke-width="1.5"/>'
        )
