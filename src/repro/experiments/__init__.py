"""Experiment harnesses: one module per paper figure/table.

Every harness module registers exactly one
:class:`~repro.experiments.api.Experiment` with the central registry
(:func:`repro.experiments.api.all_experiments`), and keeps a
module-level ``run(scale)`` returning a rich result object whose
``render()`` emits the paper-style text table.  The Experiment API
additionally yields a structured
:class:`~repro.experiments.api.ResultSet` artifact that the ``text``,
``json``, and ``mpl`` renderers consume -- see EXPERIMENTS.md.

:class:`repro.experiments.common.ExperimentScale` carries the scale
knobs; defaults are laptop-scale, and paper-scale values are
documented in EXPERIMENTS.md.

| Paper artifact | Module |
|---|---|
| Fig 3 (BER boxes + CV)          | :mod:`repro.experiments.fig3_ber_distribution` |
| Fig 4 (BER vs location)         | :mod:`repro.experiments.fig4_ber_location` |
| Fig 5 (HC_first histogram)      | :mod:`repro.experiments.fig5_hcfirst_distribution` |
| Fig 6 (HC_first vs location)    | :mod:`repro.experiments.fig6_hcfirst_location` |
| Fig 7 (RowPress tAggOn)         | :mod:`repro.experiments.fig7_rowpress` |
| Fig 8 (subarray silhouette)     | :mod:`repro.experiments.fig8_subarray_silhouette` |
| Fig 9 (spatial features vs F1)  | :mod:`repro.experiments.fig9_spatial_features` |
| Fig 10 (aging)                  | :mod:`repro.experiments.fig10_aging` |
| Fig 12 (Svärd performance)      | :mod:`repro.experiments.fig12_performance` |
| Fig 13 (adversarial patterns)   | :mod:`repro.experiments.fig13_adversarial` |
| Table 3 (strong features)       | :mod:`repro.experiments.table3_features` |
| Table 5 (module registry)       | :mod:`repro.experiments.table5_modules` |
| Section 6.4 (hardware cost)     | :mod:`repro.experiments.sec64_hardware_cost` |
| Bin-count ablation              | :mod:`repro.experiments.ablation_bins` |
"""

from repro.experiments.common import ExperimentScale

__all__ = ["ExperimentScale"]
