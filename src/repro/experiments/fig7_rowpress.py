"""Fig 7: effect of the aggressor row's on-time (RowPress) on HC_first.

Per manufacturer, the paper shows HC_first box distributions at
tAggOn of 36 ns, 0.5 us, and 2 us: the boxes shift down roughly an
order of magnitude (Obsv 10) while large row-to-row variation remains
(Obsv 11).

The sweep points come from ``ExperimentScale.t_agg_on_sweep_ns``
(default: the paper's three points), so recipes -- e.g. the
checked-in ``fig7-taggon-sweep`` -- can densify the sweep without
touching this harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.characterization.metrics import BoxStats, box_stats, coefficient_of_variation_pct
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    ExperimentScale,
    absorb_characterizations,
    characterization_groups,
    characterize,
)
from repro.faults.modules import MODULES, Manufacturer

TITLE = "Fig 7: HC_first vs aggressor on-time (RowPress)"


@dataclass
class Fig7Result:
    #: (manufacturer code, tAggOn) -> HC_first box stats.
    boxes: Dict[Tuple[str, float], BoxStats]
    #: (module, tAggOn) -> CV% (Obsv 11's examples).
    cv_pct: Dict[Tuple[str, float], float]

    def render(self) -> str:
        return result_set(self).render_text()

    def reduction_factor(self, mfr: str) -> float:
        """Mean HC_first at 36 ns over mean at 2 us."""
        return self.boxes[(mfr, 36.0)].mean / self.boxes[(mfr, 2000.0)].mean


def result_set(result: Fig7Result) -> ResultSet:
    box_rows = [
        (mfr, float(t_on), stats.mean, stats.q1, stats.q3)
        for (mfr, t_on), stats in sorted(result.boxes.items())
    ]
    cv_rows = [
        (label, float(t_on), cv)
        for (label, t_on), cv in sorted(result.cv_pct.items())
    ]
    return ResultSet(
        experiment="fig7",
        title=TITLE,
        tables=(
            ResultTable(
                name="boxes",
                headers=("mfr", "t_agg_on_ns", "mean", "q1", "q3"),
                rows=box_rows,
            ),
            ResultTable(
                name="cv",
                headers=("module", "t_agg_on_ns", "cv_pct"),
                rows=cv_rows,
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=("mfr", "tAggOn", "mean", "Q1", "Q3"),
                rows=[
                    (
                        mfr,
                        f"{t_on:.0f} ns",
                        f"{mean / 1024:.1f}K",
                        f"{q1 / 1024:.1f}K",
                        f"{q3 / 1024:.1f}K",
                    )
                    for mfr, t_on, mean, q1, q3 in box_rows
                ],
            ),
        ),
        plots=(
            PlotSpec(
                name="boxes",
                kind="line",
                table="boxes",
                x="t_agg_on_ns",
                y=("mean",),
                series="mfr",
                title=TITLE,
                xlabel="tAggOn (ns)",
                ylabel="mean HC_first",
                logx=True,
                logy=True,
            ),
        ),
    )


def run(scale: ExperimentScale = ExperimentScale()) -> Fig7Result:
    boxes: Dict[Tuple[str, float], BoxStats] = {}
    cv: Dict[Tuple[str, float], float] = {}
    for manufacturer in Manufacturer:
        labels = [
            label for label in scale.modules
            if MODULES[label].manufacturer is manufacturer
        ]
        if not labels:
            continue
        for t_on in scale.t_agg_on_sweep_ns:
            values = []
            for label in labels:
                chars = characterize(label, scale, t_agg_on_ns=t_on)
                measured = chars.all_hc_first()
                values.append(measured)
                cv[(label, t_on)] = coefficient_of_variation_pct(measured)
            boxes[(manufacturer.value, t_on)] = box_stats(np.concatenate(values))
    return Fig7Result(boxes=boxes, cv_pct=cv)


@register
class Fig7Experiment(Experiment):
    name = "fig7"
    description = "HC_first vs aggressor on-time (RowPress)"
    paper_ref = "Fig. 7"

    def build_tasks(self, scale, orch):
        return [
            group
            for t_on in scale.t_agg_on_sweep_ns
            for group in characterization_groups(
                scale.modules, scale, t_agg_on_ns=t_on
            )
        ]

    def reduce(self, scale, outputs):
        for t_on in scale.t_agg_on_sweep_ns:
            absorb_characterizations(
                scale.modules, scale, outputs, t_agg_on_ns=t_on
            )
        return run(scale)

    def result_set(self, result):
        return result_set(result)
