"""Fig 7: effect of the aggressor row's on-time (RowPress) on HC_first.

Per manufacturer, the paper shows HC_first box distributions at
tAggOn of 36 ns, 0.5 us, and 2 us: the boxes shift down roughly an
order of magnitude (Obsv 10) while large row-to-row variation remains
(Obsv 11).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.characterization.metrics import BoxStats, box_stats, coefficient_of_variation_pct
from repro.characterization.rowpress import T_AGG_ON_SWEEP_NS
from repro.experiments.common import ExperimentScale, characterize, format_table
from repro.faults.modules import MODULES, Manufacturer, module_by_label


@dataclass
class Fig7Result:
    #: (manufacturer code, tAggOn) -> HC_first box stats.
    boxes: Dict[Tuple[str, float], BoxStats]
    #: (module, tAggOn) -> CV% (Obsv 11's examples).
    cv_pct: Dict[Tuple[str, float], float]

    def render(self) -> str:
        rows = []
        for (mfr, t_on), stats in sorted(self.boxes.items()):
            rows.append(
                [
                    mfr,
                    f"{t_on:.0f} ns",
                    f"{stats.mean / 1024:.1f}K",
                    f"{stats.q1 / 1024:.1f}K",
                    f"{stats.q3 / 1024:.1f}K",
                ]
            )
        return (
            "Fig 7: HC_first vs aggressor on-time (RowPress)\n\n"
            + format_table(["mfr", "tAggOn", "mean", "Q1", "Q3"], rows)
        )

    def reduction_factor(self, mfr: str) -> float:
        """Mean HC_first at 36 ns over mean at 2 us."""
        return self.boxes[(mfr, 36.0)].mean / self.boxes[(mfr, 2000.0)].mean


def run(scale: ExperimentScale = ExperimentScale()) -> Fig7Result:
    boxes: Dict[Tuple[str, float], BoxStats] = {}
    cv: Dict[Tuple[str, float], float] = {}
    for manufacturer in Manufacturer:
        labels = [
            label for label in scale.modules
            if MODULES[label].manufacturer is manufacturer
        ]
        if not labels:
            continue
        for t_on in T_AGG_ON_SWEEP_NS:
            values = []
            for label in labels:
                chars = characterize(label, scale, t_agg_on_ns=t_on)
                measured = chars.all_hc_first()
                values.append(measured)
                cv[(label, t_on)] = coefficient_of_variation_pct(measured)
            boxes[(manufacturer.value, t_on)] = box_stats(np.concatenate(values))
    return Fig7Result(boxes=boxes, cv_pct=cv)
