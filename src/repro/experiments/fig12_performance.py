"""Fig 12: performance of five defenses with and without Svärd.

For each defense (AQUA, BlockHammer, Hydra, PARA, RRS), each Svärd
configuration (No Svärd, Svärd-H1, Svärd-M0, Svärd-S0), and each
worst-case HC_first (4K down to 64), the harness simulates the
multiprogrammed mixes and reports weighted speedup, harmonic speedup,
and maximum slowdown, normalized to a no-defense baseline -- the
same three rows of subplots as the paper's figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import Defense, SvardThresholds, ThresholdProvider
from repro.experiments.common import (
    ExperimentScale,
    format_table,
    mix_baseline_task,
    scaled_profile,
)
from repro.orchestration import OrchestrationContext, Task, make_task, serial_context
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.sim.metrics import MultiProgramMetrics, compute_metrics
from repro.workloads.mixes import WorkloadMix, build_traces, generate_mixes

#: Compressed defense-epoch used by the simulated slice (see
#: EXPERIMENTS.md, "time compression").
DEFENSE_EPOCH_NS = 1_000_000.0

#: Fig 12 configurations: No Svärd plus one profile per manufacturer.
NO_SVARD = "No Svärd"


@dataclass
class Fig12Result:
    """Averaged metrics per (defense, configuration, HC_first)."""

    metrics: Dict[Tuple[str, str, int], MultiProgramMetrics]
    configurations: Tuple[str, ...]
    hc_values: Tuple[int, ...]
    n_mixes: int

    def weighted_speedup(self, defense: str, config: str, hc: int) -> float:
        return self.metrics[(defense, config, hc)].weighted_speedup

    def improvement(self, defense: str, config: str, hc: int) -> float:
        """Svärd's speedup ratio over No Svärd (the paper's 1.23x etc.)."""
        return (
            self.metrics[(defense, config, hc)].weighted_speedup
            / self.metrics[(defense, NO_SVARD, hc)].weighted_speedup
        )

    def mean_improvement(self, defense: str, hc: int) -> float:
        """Average improvement across the Svärd profiles at one HC."""
        svard_configs = [c for c in self.configurations if c != NO_SVARD]
        return float(
            np.mean([self.improvement(defense, c, hc) for c in svard_configs])
        )

    def render(self) -> str:
        sections = []
        for metric_name in ("weighted_speedup", "harmonic_speedup", "max_slowdown"):
            rows = []
            for (defense, config, hc), metrics in sorted(self.metrics.items()):
                rows.append(
                    [
                        defense,
                        config,
                        str(hc),
                        f"{getattr(metrics, metric_name):.3f}",
                    ]
                )
            sections.append(
                f"{metric_name} (normalized to no-defense baseline):\n"
                + format_table(["defense", "config", "HC_first", "value"], rows)
            )
        return "Fig 12: Svärd performance evaluation\n\n" + "\n\n".join(sections)


def _svard_provider(
    profile_label: str, hc_first: int, scale: ExperimentScale
) -> ThresholdProvider:
    return SvardThresholds(
        Svard.build(scaled_profile(profile_label, hc_first, scale))
    )


def _make_defense(
    name: str,
    hc_first: int,
    config: SystemConfig,
    thresholds: Optional[ThresholdProvider],
    seed: int,
) -> Defense:
    kwargs = dict(rows_per_bank=config.rows_per_bank, seed=seed)
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    if name == "BlockHammer":
        kwargs["epoch_ns"] = config.defense_epoch_ns or DEFENSE_EPOCH_NS
    return DEFENSE_CLASSES[name](hc_first, **kwargs)


def _mean_metrics(values: Sequence[MultiProgramMetrics]) -> MultiProgramMetrics:
    return MultiProgramMetrics(
        weighted_speedup=float(np.mean([v.weighted_speedup for v in values])),
        harmonic_speedup=float(np.mean([v.harmonic_speedup for v in values])),
        max_slowdown=float(np.mean([v.max_slowdown for v in values])),
    )


#: Per-process memo for Svärd threshold providers: building one walks
#: the full vulnerability profile, and every defense at the same
#: (profile, HC_first) shares it -- worth keeping warm inside each
#: pool worker.  Providers are pure functions of their key, so the
#: memo never changes results.
_PROVIDER_MEMO: Dict[tuple, ThresholdProvider] = {}


def _cached_provider(
    profile_label: str, hc_first: int, scale: ExperimentScale
) -> ThresholdProvider:
    key = (
        profile_label, hc_first,
        scale.banks, scale.rows_per_bank, scale.seed,
    )
    if key not in _PROVIDER_MEMO:
        _PROVIDER_MEMO[key] = _svard_provider(profile_label, hc_first, scale)
    return _PROVIDER_MEMO[key]


def _simulation_task(task: Task) -> List[float]:
    """One defended simulation; returns raw per-core finish times.

    Normalization happens in the parent so that this task depends on
    nothing but its own parameters (all configurations of a mix
    replay the same traces, seeded from the experiment scale).
    """
    mix, defense_name, configuration, hc, scale, config = task.params
    thresholds = None
    if configuration != NO_SVARD:
        thresholds = _cached_provider(
            configuration.removeprefix("Svärd-"), hc, scale
        )
    defense = _make_defense(defense_name, hc, config, thresholds, scale.seed)
    result = MemorySystem(
        config, build_traces(mix, config), defense=defense
    ).run()
    return result.finish_times()


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    defenses: Optional[Sequence[str]] = None,
    system_config: Optional[SystemConfig] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> Fig12Result:
    orch = orchestration or serial_context()
    defense_names = sorted(defenses) if defenses else sorted(DEFENSE_CLASSES)
    config = system_config or SystemConfig(
        requests_per_core=scale.requests_per_core,
        defense_epoch_ns=DEFENSE_EPOCH_NS,
    )
    configurations = (NO_SVARD,) + tuple(
        f"Svärd-{label}" for label in scale.svard_profiles
    )
    mixes = generate_mixes(scale.n_mixes, cores=config.cores, seed=scale.seed)

    tasks = [
        make_task(
            ("fig12", "baseline", mix.name),
            mix_baseline_task,
            (mix, config),
            base_seed=scale.seed,
        )
        for mix in mixes
    ]
    tasks += [
        make_task(
            ("fig12", "sim", defense_name, configuration, hc, mix.name),
            _simulation_task,
            (mix, defense_name, configuration, hc, scale, config),
            base_seed=scale.seed,
        )
        for defense_name in defense_names
        for configuration in configurations
        for hc in scale.hc_first_values
        for mix in mixes
    ]
    outputs = orch.run(tasks, fingerprint=("fig12", scale, config))

    # Per-mix baselines: alone times (no defense) and shared baseline.
    alone_times: Dict[str, List[float]] = {}
    baseline: Dict[str, MultiProgramMetrics] = {}
    for mix in mixes:
        times = outputs[("fig12", "baseline", mix.name)]
        alone_times[mix.name] = times["alone"]
        baseline[mix.name] = compute_metrics(times["alone"], times["shared"])

    results: Dict[Tuple[str, str, int], MultiProgramMetrics] = {}
    for defense_name in defense_names:
        for configuration in configurations:
            for hc in scale.hc_first_values:
                per_mix = [
                    compute_metrics(
                        alone_times[mix.name],
                        outputs[
                            ("fig12", "sim", defense_name, configuration,
                             hc, mix.name)
                        ],
                    ).normalized_to(baseline[mix.name])
                    for mix in mixes
                ]
                results[(defense_name, configuration, hc)] = _mean_metrics(per_mix)
    return Fig12Result(
        metrics=results,
        configurations=configurations,
        hc_values=tuple(scale.hc_first_values),
        n_mixes=len(mixes),
    )
