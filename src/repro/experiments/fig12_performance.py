"""Fig 12: performance of five defenses with and without Svärd.

For each defense (AQUA, BlockHammer, Hydra, PARA, RRS), each Svärd
configuration (No Svärd, Svärd-H1, Svärd-M0, Svärd-S0), and each
worst-case HC_first (4K down to 64), the harness simulates the
multiprogrammed mixes and reports weighted speedup, harmonic speedup,
and maximum slowdown, normalized to a no-defense baseline -- the
same three rows of subplots as the paper's figure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import VulnerabilityProfile
from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import Defense, SvardThresholds, ThresholdProvider
from repro.experiments.common import ExperimentScale, format_table
from repro.faults.modules import module_by_label
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.sim.metrics import MultiProgramMetrics, compute_metrics
from repro.workloads.mixes import (
    WorkloadMix,
    build_alone_trace,
    build_traces,
    generate_mixes,
    single_core_config,
)

#: Compressed defense-epoch used by the simulated slice (see
#: EXPERIMENTS.md, "time compression").
DEFENSE_EPOCH_NS = 1_000_000.0

#: Fig 12 configurations: No Svärd plus one profile per manufacturer.
NO_SVARD = "No Svärd"


@dataclass
class Fig12Result:
    """Averaged metrics per (defense, configuration, HC_first)."""

    metrics: Dict[Tuple[str, str, int], MultiProgramMetrics]
    configurations: Tuple[str, ...]
    hc_values: Tuple[int, ...]
    n_mixes: int

    def weighted_speedup(self, defense: str, config: str, hc: int) -> float:
        return self.metrics[(defense, config, hc)].weighted_speedup

    def improvement(self, defense: str, config: str, hc: int) -> float:
        """Svärd's speedup ratio over No Svärd (the paper's 1.23x etc.)."""
        return (
            self.metrics[(defense, config, hc)].weighted_speedup
            / self.metrics[(defense, NO_SVARD, hc)].weighted_speedup
        )

    def mean_improvement(self, defense: str, hc: int) -> float:
        """Average improvement across the Svärd profiles at one HC."""
        svard_configs = [c for c in self.configurations if c != NO_SVARD]
        return float(
            np.mean([self.improvement(defense, c, hc) for c in svard_configs])
        )

    def render(self) -> str:
        sections = []
        for metric_name in ("weighted_speedup", "harmonic_speedup", "max_slowdown"):
            rows = []
            for (defense, config, hc), metrics in sorted(self.metrics.items()):
                rows.append(
                    [
                        defense,
                        config,
                        str(hc),
                        f"{getattr(metrics, metric_name):.3f}",
                    ]
                )
            sections.append(
                f"{metric_name} (normalized to no-defense baseline):\n"
                + format_table(["defense", "config", "HC_first", "value"], rows)
            )
        return "Fig 12: Svärd performance evaluation\n\n" + "\n\n".join(sections)


def _svard_provider(
    profile_label: str, hc_first: int, scale: ExperimentScale
) -> ThresholdProvider:
    profile = VulnerabilityProfile.from_ground_truth(
        module_by_label(profile_label),
        banks=scale.banks,
        rows_per_bank=scale.rows_per_bank,
        seed=scale.seed,
    ).scaled_to_worst_case(hc_first)
    return SvardThresholds(Svard.build(profile))


def _make_defense(
    name: str,
    hc_first: int,
    config: SystemConfig,
    thresholds: Optional[ThresholdProvider],
    seed: int,
) -> Defense:
    kwargs = dict(rows_per_bank=config.rows_per_bank, seed=seed)
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    if name == "BlockHammer":
        kwargs["epoch_ns"] = config.defense_epoch_ns or DEFENSE_EPOCH_NS
    return DEFENSE_CLASSES[name](hc_first, **kwargs)


def _mean_metrics(values: Sequence[MultiProgramMetrics]) -> MultiProgramMetrics:
    return MultiProgramMetrics(
        weighted_speedup=float(np.mean([v.weighted_speedup for v in values])),
        harmonic_speedup=float(np.mean([v.harmonic_speedup for v in values])),
        max_slowdown=float(np.mean([v.max_slowdown for v in values])),
    )


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    defenses: Optional[Sequence[str]] = None,
    system_config: Optional[SystemConfig] = None,
) -> Fig12Result:
    defense_names = sorted(defenses) if defenses else sorted(DEFENSE_CLASSES)
    config = system_config or SystemConfig(
        requests_per_core=scale.requests_per_core,
        defense_epoch_ns=DEFENSE_EPOCH_NS,
    )
    configurations = (NO_SVARD,) + tuple(
        f"Svärd-{label}" for label in scale.svard_profiles
    )
    mixes = generate_mixes(scale.n_mixes, cores=config.cores, seed=scale.seed)

    # Per-mix baselines: alone times (no defense) and shared baseline.
    alone_times: Dict[str, List[float]] = {}
    baseline: Dict[str, MultiProgramMetrics] = {}
    alone_config = single_core_config(config)
    for mix in mixes:
        alone_times[mix.name] = [
            MemorySystem(alone_config, build_alone_trace(mix, core, alone_config))
            .run()
            .cores[0]
            .finish_ns
            for core in range(config.cores)
        ]
        shared = MemorySystem(config, build_traces(mix, config)).run()
        baseline[mix.name] = compute_metrics(
            alone_times[mix.name], shared.finish_times()
        )

    providers: Dict[Tuple[str, int], ThresholdProvider] = {}
    results: Dict[Tuple[str, str, int], MultiProgramMetrics] = {}
    for defense_name in defense_names:
        for configuration in configurations:
            for hc in scale.hc_first_values:
                per_mix = []
                for mix in mixes:
                    thresholds = None
                    if configuration != NO_SVARD:
                        profile_label = configuration.removeprefix("Svärd-")
                        key = (profile_label, hc)
                        if key not in providers:
                            providers[key] = _svard_provider(
                                profile_label, hc, scale
                            )
                        thresholds = providers[key]
                    defense = _make_defense(
                        defense_name, hc, config, thresholds, scale.seed
                    )
                    result = MemorySystem(
                        config, build_traces(mix, config), defense=defense
                    ).run()
                    metrics = compute_metrics(
                        alone_times[mix.name], result.finish_times()
                    ).normalized_to(baseline[mix.name])
                    per_mix.append(metrics)
                results[(defense_name, configuration, hc)] = _mean_metrics(per_mix)
    return Fig12Result(
        metrics=results,
        configurations=configurations,
        hc_values=tuple(scale.hc_first_values),
        n_mixes=len(mixes),
    )
