"""Fig 12: performance of five defenses with and without Svärd.

For each defense (AQUA, BlockHammer, Hydra, PARA, RRS), each Svärd
configuration (No Svärd, Svärd-H1, Svärd-M0, Svärd-S0), and each
worst-case HC_first (4K down to 64), the harness simulates the
multiprogrammed mixes and reports weighted speedup, harmonic speedup,
and maximum slowdown, normalized to a no-defense baseline -- the
same three rows of subplots as the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.base import Defense, SvardThresholds, ThresholdProvider
from repro.experiments.api import (
    Experiment,
    ExperimentError,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import (
    NO_SVARD,
    ExperimentScale,
    mix_baseline_task,
    scaled_profile,
    svard_configurations,
)
from repro.orchestration import (
    OrchestrationContext,
    Task,
    TaskGroup,
    make_task,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.sim.metrics import MultiProgramMetrics, compute_metrics
from repro.workloads.mixes import WorkloadMix, build_traces, generate_mixes

#: Compressed defense-epoch used by the simulated slice (see
#: EXPERIMENTS.md, "time compression").
DEFENSE_EPOCH_NS = 1_000_000.0

TITLE = "Fig 12: Svärd performance evaluation"


@dataclass
class Fig12Result:
    """Averaged metrics per (defense, configuration, HC_first)."""

    metrics: Dict[Tuple[str, str, int], MultiProgramMetrics]
    configurations: Tuple[str, ...]
    hc_values: Tuple[int, ...]
    n_mixes: int

    def weighted_speedup(self, defense: str, config: str, hc: int) -> float:
        return self.metrics[(defense, config, hc)].weighted_speedup

    def improvement(self, defense: str, config: str, hc: int) -> float:
        """Svärd's speedup ratio over No Svärd (the paper's 1.23x etc.)."""
        return (
            self.metrics[(defense, config, hc)].weighted_speedup
            / self.metrics[(defense, NO_SVARD, hc)].weighted_speedup
        )

    def mean_improvement(self, defense: str, hc: int) -> float:
        """Average improvement across the Svärd profiles at one HC."""
        svard_configs = [c for c in self.configurations if c != NO_SVARD]
        return float(
            np.mean([self.improvement(defense, c, hc) for c in svard_configs])
        )

    def render(self) -> str:
        return result_set(self).render_text()


METRIC_NAMES = ("weighted_speedup", "harmonic_speedup", "max_slowdown")


def result_set(result: Fig12Result) -> ResultSet:
    metric_rows = [
        (
            defense,
            config,
            # One plotted line per (defense, config) pair -- series'ing
            # on either column alone would interleave unrelated rows.
            f"{defense} / {config}",
            int(hc),
            metrics.weighted_speedup,
            metrics.harmonic_speedup,
            metrics.max_slowdown,
        )
        for (defense, config, hc), metrics in sorted(result.metrics.items())
    ]
    layout: List = [TextBlock(TITLE + "\n\n")]
    for index, metric_name in enumerate(METRIC_NAMES):
        if index:
            layout.append(TextBlock("\n\n"))
        layout.append(
            TextBlock(
                f"{metric_name} (normalized to no-defense baseline):\n"
            )
        )
        # metric_rows columns: defense, config, defense_config,
        # hc_first, then one column per METRIC_NAMES entry.
        value_column = 4 + index
        layout.append(
            TableBlock(
                headers=("defense", "config", "HC_first", "value"),
                rows=[
                    (row[0], row[1], str(row[3]), f"{row[value_column]:.3f}")
                    for row in metric_rows
                ],
            )
        )
    return ResultSet(
        experiment="fig12",
        title=TITLE,
        scalars={"n_mixes": result.n_mixes},
        tables=(
            ResultTable(
                name="metrics",
                headers=(
                    "defense", "config", "defense_config", "hc_first",
                    "weighted_speedup", "harmonic_speedup", "max_slowdown",
                ),
                rows=metric_rows,
            ),
        ),
        layout=tuple(layout),
        plots=tuple(
            PlotSpec(
                name=metric_name,
                kind="line",
                table="metrics",
                x="hc_first",
                y=(metric_name,),
                series="defense_config",
                title=f"Fig 12: {metric_name} vs worst-case HC_first",
                xlabel="HC_first",
                ylabel=metric_name,
                logx=True,
            )
            for metric_name in METRIC_NAMES
        ),
    )


def _svard_provider(
    profile_label: str, hc_first: int, scale: ExperimentScale
) -> ThresholdProvider:
    return SvardThresholds(
        Svard.build(scaled_profile(profile_label, hc_first, scale))
    )


def _make_defense(
    name: str,
    hc_first: int,
    config: SystemConfig,
    thresholds: Optional[ThresholdProvider],
    seed: int,
) -> Defense:
    kwargs = dict(rows_per_bank=config.rows_per_bank, seed=seed)
    if thresholds is not None:
        kwargs["thresholds"] = thresholds
    if name == "BlockHammer":
        kwargs["epoch_ns"] = config.defense_epoch_ns or DEFENSE_EPOCH_NS
    return DEFENSE_CLASSES[name](hc_first, **kwargs)


def _mean_metrics(values: Sequence[MultiProgramMetrics]) -> MultiProgramMetrics:
    return MultiProgramMetrics(
        weighted_speedup=float(np.mean([v.weighted_speedup for v in values])),
        harmonic_speedup=float(np.mean([v.harmonic_speedup for v in values])),
        max_slowdown=float(np.mean([v.max_slowdown for v in values])),
    )


def _provider_setup(task: Task) -> ThresholdProvider:
    """Setup hook: the Svärd threshold provider this task needs.

    Building one walks the full vulnerability profile, and every
    defense at the same (profile, HC_first) shares it -- declared as
    the task's *setup context* so the execution layers build it once
    per ``setup_key`` per worker process and reuse it across a chunk
    (see ``SetupCache``).  Providers are pure functions of their key,
    so memoization never changes results.
    """
    _mix, _defense, configuration, hc, scale, _config = task.params
    return _svard_provider(configuration.removeprefix("Svärd-"), hc, scale)


def _provider_setup_key(
    configuration: str, hc_first: int, scale: ExperimentScale
) -> tuple:
    profile_label = configuration.removeprefix("Svärd-")
    return (
        "fig12-provider", profile_label, hc_first,
        scale.banks, scale.rows_for(profile_label), scale.seed,
    )


def _simulation_task(
    task: Task, thresholds: Optional[ThresholdProvider] = None
) -> List[float]:
    """One defended simulation; returns raw per-core finish times.

    Normalization happens in the parent so that this task depends on
    nothing but its own parameters (all configurations of a mix
    replay the same traces, seeded from the experiment scale).
    ``thresholds`` arrives from the setup hook for Svärd
    configurations and stays ``None`` for the No-Svärd rows (which
    declare no setup).
    """
    mix, defense_name, _configuration, hc, scale, config = task.params
    defense = _make_defense(defense_name, hc, config, thresholds, scale.seed)
    result = MemorySystem(
        config, build_traces(mix, config), defense=defense
    ).run()
    return result.finish_times()


@register
class Fig12Experiment(Experiment):
    name = "fig12"
    description = "defense performance with and without Svärd"
    paper_ref = "Fig. 12"
    #: The runner's quick grid: three HC values, one profile, one mix.
    quick_overrides = {
        "hc_first_values": (4096, 256, 64),
        "svard_profiles": ("S0",),
        "n_mixes": 1,
    }

    def __init__(
        self,
        defenses: Optional[Sequence[str]] = None,
        system_config: Optional[SystemConfig] = None,
    ) -> None:
        self.defenses = defenses
        self.system_config = system_config

    # ------------------------------------------------------------------

    def _defense_names(self) -> List[str]:
        if self.defenses is None:
            return sorted(DEFENSE_CLASSES)
        if not self.defenses:
            raise ExperimentError("fig12: the explicit defense list is empty")
        return sorted(self.defenses)

    def _config(self, scale: ExperimentScale) -> SystemConfig:
        return self.system_config or scale.system_config(
            requests_per_core=scale.requests_per_core,
            defense_epoch_ns=DEFENSE_EPOCH_NS,
        )

    @staticmethod
    def _mixes(scale: ExperimentScale, config: SystemConfig) -> List[WorkloadMix]:
        # Called from both build_tasks and reduce; mix generation must
        # stay a pure function of (scale, config) so the two sides
        # agree on task keys.
        return generate_mixes(
            scale.n_mixes, cores=config.cores, seed=scale.seed
        )

    # ------------------------------------------------------------------

    def build_tasks(self, scale, orch):
        config = self._config(scale)
        mixes = self._mixes(scale, config)
        tasks = [
            make_task(
                ("fig12", "baseline", mix.name),
                mix_baseline_task,
                (mix, config),
                base_seed=scale.seed,
            )
            for mix in mixes
        ]
        tasks += [
            make_task(
                ("fig12", "sim", defense_name, configuration, hc, mix.name),
                _simulation_task,
                (mix, defense_name, configuration, hc, scale, config),
                base_seed=scale.seed,
                setup=(
                    _provider_setup if configuration != NO_SVARD else None
                ),
                setup_key=(
                    _provider_setup_key(configuration, hc, scale)
                    if configuration != NO_SVARD else None
                ),
            )
            for defense_name in self._defense_names()
            for configuration in svard_configurations(scale)
            for hc in scale.hc_first_values
            for mix in mixes
        ]
        return [TaskGroup(tasks=tuple(tasks), fingerprint=("fig12", scale, config))]

    def reduce(self, scale, outputs):
        config = self._config(scale)
        mixes = self._mixes(scale, config)
        configurations = svard_configurations(scale)

        # Per-mix baselines: alone times (no defense) and shared baseline.
        alone_times: Dict[str, List[float]] = {}
        baseline: Dict[str, MultiProgramMetrics] = {}
        for mix in mixes:
            times = outputs[("fig12", "baseline", mix.name)]
            alone_times[mix.name] = times["alone"]
            baseline[mix.name] = compute_metrics(times["alone"], times["shared"])

        results: Dict[Tuple[str, str, int], MultiProgramMetrics] = {}
        for defense_name in self._defense_names():
            for configuration in configurations:
                for hc in scale.hc_first_values:
                    per_mix = [
                        compute_metrics(
                            alone_times[mix.name],
                            outputs[
                                ("fig12", "sim", defense_name, configuration,
                                 hc, mix.name)
                            ],
                        ).normalized_to(baseline[mix.name])
                        for mix in mixes
                    ]
                    results[(defense_name, configuration, hc)] = _mean_metrics(
                        per_mix
                    )
        return Fig12Result(
            metrics=results,
            configurations=configurations,
            hc_values=tuple(scale.hc_first_values),
            n_mixes=len(mixes),
        )

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    defenses: Optional[Sequence[str]] = None,
    system_config: Optional[SystemConfig] = None,
    orchestration: Optional[OrchestrationContext] = None,
) -> Fig12Result:
    return Fig12Experiment(
        defenses=defenses, system_config=system_config
    ).run(scale, orchestration)
