"""The self-contained HTML paper report.

:func:`build_report` stitches any number of ResultSets -- a single
run, a whole recipe artifact tree, or a multi-seed aggregate -- into
**one** HTML page: a table of contents, per-experiment sections with
scalar summary cards, the layout-aware presentation tables, inline
SVG charts rendered from the declarative PlotSpecs (pure python; see
:mod:`repro.experiments.svgplot`), and a provenance line per section
(recipe name/version, seeds, scale fingerprint, backend, cache hit
stats, and -- when the sweep stamped per-task timings -- a one-line
profile summary).

The page is **self-contained by construction**: one file, all CSS in
a ``<style>`` block, charts as inline SVG, no scripts, no external
URLs.  When matplotlib happens to be installed the charts can instead
be embedded as base64 PNGs (``prefer_mpl=True``, or automatically for
any spec the SVG plotter refuses); the page stays a single file
either way.  ``make report-smoke`` asserts these properties against
html.parser.

Entry points::

    runner report <artifact-dir> --out report.html   # stitch a tree
    runner recipe run NAME --out DIR --report        # + report.html
    runner run fig12 --format html                   # single page

See REPORTS.md for the pipeline walkthrough.
"""

from __future__ import annotations

import base64
import io
from html import escape
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.api import (
    PlotSpec,
    ResultSet,
    TableBlock,
    TextBlock,
    format_scalar,
)
from repro.experiments.svgplot import SvgPlotError, render_plot
from repro.orchestration.hashing import stable_hash

__all__ = ["REPORT_CSS", "build_report"]

_CSS = """\
:root { color-scheme: light; }
body {
  margin: 0; background: #f4f3f1; color: #0b0b0b;
  font: 15px/1.5 system-ui, sans-serif;
}
main { max-width: 980px; margin: 0 auto; padding: 24px 20px 64px; }
header.page h1 { font-size: 24px; margin: 8px 0 4px; }
header.page p.sub { color: #52514e; margin: 0 0 16px; }
nav.toc {
  background: #fcfcfb; border: 1px solid #e3e2de; border-radius: 8px;
  padding: 12px 16px; margin-bottom: 24px;
}
nav.toc ol { margin: 4px 0 0; padding-left: 22px; }
nav.toc a { color: #1c5cab; text-decoration: none; }
nav.toc a:hover { text-decoration: underline; }
section.experiment {
  background: #fcfcfb; border: 1px solid #e3e2de; border-radius: 8px;
  padding: 20px 24px; margin-bottom: 24px;
}
section.experiment h2 { font-size: 19px; margin: 0 0 2px; }
.chips { margin: 0 0 10px; }
.chip {
  display: inline-block; font-size: 12px; color: #52514e;
  background: #f0efec; border-radius: 999px; padding: 1px 10px;
  margin-right: 6px;
}
dl.provenance {
  display: grid; grid-template-columns: max-content 1fr;
  gap: 2px 14px; font-size: 12.5px; color: #52514e;
  border-left: 3px solid #e3e2de; padding-left: 12px; margin: 10px 0;
}
dl.provenance dt { font-weight: 600; }
dl.provenance dd { margin: 0; font-family: ui-monospace, monospace; }
.cards { display: flex; flex-wrap: wrap; gap: 10px; margin: 14px 0; }
.card {
  background: #f7f6f4; border: 1px solid #e9e8e4; border-radius: 8px;
  padding: 8px 14px; min-width: 110px;
}
.card .value {
  font-size: 19px; font-weight: 650; font-variant-numeric: tabular-nums;
}
.card .label { font-size: 11.5px; color: #52514e; }
table.result {
  border-collapse: collapse; font-size: 13px; margin: 12px 0;
  font-variant-numeric: tabular-nums;
}
table.result caption {
  caption-side: top; text-align: left; font-size: 12px;
  color: #52514e; padding-bottom: 4px;
}
table.result th {
  text-align: left; border-bottom: 2px solid #d8d7d2;
  padding: 3px 12px 3px 0; font-weight: 600;
}
table.result td {
  border-bottom: 1px solid #ececea; padding: 3px 12px 3px 0;
}
table.result tr:hover td { background: #f0efec; }
pre.note {
  font: 12.5px/1.45 ui-monospace, monospace; color: #0b0b0b;
  white-space: pre-wrap; margin: 10px 0;
}
figure.plot { margin: 16px 0; overflow-x: auto; }
figure.plot figcaption { font-size: 12px; color: #52514e; }
figure.plot img { max-width: 100%; }
p.plot-error { color: #9d3c00; font-size: 13px; }
footer { color: #52514e; font-size: 12.5px; text-align: center; }
"""

#: The report stylesheet, shared with the experiment service's landing
#: page so served pages and report.html read as one product.
REPORT_CSS = _CSS


# ----------------------------------------------------------------------
# Charts: pure-SVG first, embedded mpl PNG as the alternative
# ----------------------------------------------------------------------


def _mpl_png_data_uri(result_set: ResultSet, spec: PlotSpec) -> str:
    """The spec drawn by matplotlib, as a base64 data URI (or raise)."""
    from repro.experiments.render import MplRenderer

    renderer = MplRenderer()
    plt = renderer._matplotlib()
    figure = renderer._draw(plt, result_set, spec)
    try:
        buffer = io.BytesIO()
        figure.savefig(buffer, format="png", bbox_inches="tight", dpi=120)
    finally:
        # A failing savefig is swallowed by _plot_html; the figure
        # must still leave pyplot's manager or big reports leak.
        plt.close(figure)
    payload = base64.b64encode(buffer.getvalue()).decode("ascii")
    return f"data:image/png;base64,{payload}"


def _plot_html(
    result_set: ResultSet, spec: PlotSpec, prefer_mpl: bool
) -> str:
    """One chart as a ``<figure>``; never raises.

    The pure-python SVG plotter is the default (no dependencies, text
    diffs, crisp at any zoom).  matplotlib -- when installed -- serves
    as the alternative body: preferred with ``prefer_mpl``, and the
    fallback for any spec the SVG plotter cannot draw.
    """
    caption = escape(spec.title or f"{result_set.experiment}:{spec.name}")
    bodies = [_svg_body, _mpl_body]
    if prefer_mpl:
        bodies.reverse()
    errors = []
    for body in bodies:
        try:
            return (
                f'<figure class="plot">{body(result_set, spec)}'
                f"<figcaption>{caption}</figcaption></figure>"
            )
        except Exception as error:  # noqa: BLE001 -- report both paths
            errors.append(f"{body.__name__.strip('_')}: {error}")
    detail = escape("; ".join(errors))
    return (
        f'<p class="plot-error">plot {escape(spec.name)!s} could not '
        f"be rendered ({detail})</p>"
    )


def _svg_body(result_set: ResultSet, spec: PlotSpec) -> str:
    return render_plot(result_set, spec)


def _mpl_body(result_set: ResultSet, spec: PlotSpec) -> str:
    uri = _mpl_png_data_uri(result_set, spec)
    alt = escape(spec.title or spec.name)
    return f'<img src="{uri}" alt="{alt}"/>'


# ----------------------------------------------------------------------
# Section pieces
# ----------------------------------------------------------------------


_format_value = format_scalar


def _format_merged(value: Any) -> str:
    """A provenance value that may be a per-seed list after aggregation.

    ``aggregate._merge_values`` turns seed-dependent provenance fields
    into per-seed lists (e.g. cache hits ``[0, 4]``); render counts as
    ``0+4`` and anything else joined, never a Python list repr.
    """
    if isinstance(value, list):
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               for v in value):
            return "+".join(_format_value(v) for v in value)
        parts = []
        for v in value:
            if _format_value(v) not in parts:
                parts.append(_format_value(v))
        return ", ".join(parts)
    return _format_value(value)


def _format_worker_count(count: Any) -> str:
    """A worker's result count, possibly per-seed after aggregation.

    A worker that computed results for only some seeds merges into a
    list with ``None`` holes (``[5, None]``); render those as 0 so the
    row keeps the ``N+M`` per-seed convention (``×5+0``) instead of
    leaking a comma into the comma-separated worker list.
    """
    if isinstance(count, list):
        return "+".join(
            "0" if value is None else _format_value(value)
            for value in count
        )
    return _format_value(count)


def _format_profile_number(value: Any, spec: str, scale: float = 1.0) -> str:
    """A profile leaf that may be a per-seed list after aggregation.

    ``aggregate._merge_values`` merges the per-seed profile dicts key
    by key, so any leaf can be a scalar, a per-seed list, or carry
    ``None`` holes (a seed run entirely from cache stamps nothing);
    render lists with the ``N+M`` per-seed convention.
    """
    if isinstance(value, list):
        return "+".join(
            _format_profile_number(v, spec, scale) for v in value
        )
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return "?"
    return format(value * scale, spec)


def _format_profile(profile: Any) -> str:
    """One compact line for a provenance profile summary.

    ``profile`` is :func:`repro.orchestration.status.summarize_profiles`
    output -- or, after seed aggregation, the key-wise merge of those
    (or a per-seed list, when some seeds lack the key entirely).
    """
    if isinstance(profile, list):
        return "; ".join(
            _format_profile(member)
            for member in profile
            if isinstance(member, dict)
        )
    parts = [f"{_format_merged(profile.get('tasks'))} tasks"]
    run = profile.get("run_s")
    if isinstance(run, dict):
        parts.append(
            f"run p50 {_format_profile_number(run.get('p50'), '.3f')}s "
            f"p95 {_format_profile_number(run.get('p95'), '.3f')}s"
        )
    share = profile.get("overhead_share")
    if share is not None:
        parts.append(
            f"overhead {_format_profile_number(share, '.1f', 100.0)}%"
        )
    chunk = profile.get("chunk_size")
    if isinstance(chunk, dict):
        parts.append(
            f"chunk mean {_format_profile_number(chunk.get('mean'), '.1f')}"
        )
    return ", ".join(parts)


def _provenance(result_set: ResultSet) -> List[tuple]:
    """Ordered (label, value) rows for the section provenance block."""
    meta = result_set.meta
    rows: List[tuple] = []
    recipe = meta.get("recipe")
    if isinstance(recipe, dict):
        rows.append((
            "recipe",
            f"{recipe.get('name')} v{recipe.get('version')}"
            + (" (smoke)" if recipe.get("smoke") else ""),
        ))
    aggregate = meta.get("aggregate")
    if isinstance(aggregate, dict):
        seeds = ", ".join(str(s) for s in aggregate.get("seeds", []))
        rows.append((
            "seeds",
            f"{seeds} ({aggregate.get('n_seeds')} seeds, "
            f"{aggregate.get('stddev')} stddev)",
        ))
    scale = meta.get("scale")
    if isinstance(scale, dict):
        if not isinstance(aggregate, dict):
            rows.append(("seed", _format_value(scale.get("seed"))))
        rows.append(("scale", stable_hash(scale)[:12]))
        # Only device-axis cells carry the key (OMIT_IF_NONE leaves it
        # out of DDR4-default scale echoes), so plain DDR4 reports --
        # and their golden structure -- are unchanged.
        device = scale.get("device")
        if device:
            rows.append(("device", _format_value(device)))
    provenance = meta.get("provenance")
    if isinstance(provenance, dict):
        backend = provenance.get("backend")
        if backend is not None:
            rows.append(("backend", _format_merged(backend)))
        tasks = provenance.get("tasks")
        if isinstance(tasks, dict):
            rows.append((
                "tasks",
                f"{_format_merged(tasks.get('submitted'))} submitted / "
                f"{_format_merged(tasks.get('cache_hits'))} cache hits / "
                f"{_format_merged(tasks.get('executed'))} executed",
            ))
        workers = provenance.get("workers")
        if isinstance(workers, list):
            # Some seed members lack the workers key entirely (older
            # artifacts, --no-cache runs), so _merge_values left a
            # per-seed list of dict-or-None; refold it into one dict
            # of per-seed count lists rather than dropping the
            # attribution the other seeds do carry.
            members = workers
            names: List[str] = []
            for member in members:
                if isinstance(member, dict):
                    names.extend(w for w in member if w not in names)
            workers = {
                worker: [
                    member.get(worker) if isinstance(member, dict) else None
                    for member in members
                ]
                for worker in names
            }
        if isinstance(workers, dict) and workers:
            rows.append(("workers", ", ".join(
                f"{worker} ×{_format_worker_count(count)}"
                for worker, count in sorted(workers.items())
            )))
        profile = provenance.get("profile")
        if isinstance(profile, (dict, list)):
            formatted = _format_profile(profile)
            if formatted:
                rows.append(("profile", formatted))
        if provenance.get("cache_dir") is not None:
            rows.append(("cache", _format_merged(provenance["cache_dir"])))
    return rows


def _scalar_cards(result_set: ResultSet) -> str:
    if not result_set.scalars:
        return ""
    cards = "".join(
        f'<div class="card"><div class="value">'
        f"{escape(_format_value(value))}</div>"
        f'<div class="label">{escape(key)}</div></div>'
        for key, value in sorted(result_set.scalars.items())
    )
    return f'<div class="cards">{cards}</div>'


def _table_html(block: TableBlock, caption: Optional[str] = None) -> str:
    caption_html = (
        f"<caption>{escape(caption)}</caption>" if caption else ""
    )
    head = "".join(f"<th>{escape(h)}</th>" for h in block.headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{escape(c)}</td>" for c in row) + "</tr>"
        for row in block.rows
    )
    return (
        f'<table class="result">{caption_html}'
        f"<thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"
    )


def _layout_html(result_set: ResultSet) -> str:
    parts = []
    for block in result_set.layout:
        if isinstance(block, TextBlock):
            text = block.text.strip("\n")
            if text:
                parts.append(f'<pre class="note">{escape(text)}</pre>')
        else:
            parts.append(_table_html(block))
    if not parts:
        # No presentation program (e.g. a hand-built or stripped
        # artifact): fall back to the typed tables.
        parts = [
            _table_html(
                TableBlock(
                    headers=table.headers,
                    rows=[
                        tuple(_format_value(cell) for cell in row)
                        for row in table.rows
                    ],
                ),
                caption=table.name,
            )
            for table in result_set.tables
        ]
    return "".join(parts)


def _section(
    result_set: ResultSet, anchor: str, prefer_mpl: bool
) -> str:
    chips = []
    paper_ref = result_set.meta.get("paper_ref")
    if paper_ref:
        chips.append(paper_ref)
    chips.append(result_set.experiment)
    if isinstance(result_set.meta.get("aggregate"), dict):
        n = result_set.meta["aggregate"].get("n_seeds")
        chips.append(f"aggregated x{n}")
    chips_html = "".join(
        f'<span class="chip">{escape(str(chip))}</span>' for chip in chips
    )
    provenance = _provenance(result_set)
    provenance_html = (
        '<dl class="provenance">'
        + "".join(
            f"<dt>{escape(label)}</dt><dd>{escape(str(value))}</dd>"
            for label, value in provenance
        )
        + "</dl>"
        if provenance
        else ""
    )
    plots = "".join(
        _plot_html(result_set, spec, prefer_mpl)
        for spec in result_set.plots
    )
    return (
        f'<section class="experiment" id="{escape(anchor)}">'
        f"<h2>{escape(result_set.title)}</h2>"
        f'<div class="chips">{chips_html}</div>'
        f"{provenance_html}"
        f"{_scalar_cards(result_set)}"
        f"{_layout_html(result_set)}"
        f"{plots}"
        f"</section>"
    )


# ----------------------------------------------------------------------
# The page
# ----------------------------------------------------------------------


def build_report(
    result_sets: Sequence[ResultSet],
    *,
    title: str = "Svärd reproduction report",
    subtitle: str = "",
    prefer_mpl: bool = False,
) -> str:
    """The full self-contained HTML page for ``result_sets``."""
    result_sets = list(result_sets)
    if not result_sets:
        raise ValueError("build_report needs at least one ResultSet")

    anchors: Dict[str, int] = {}
    sections, toc = [], []
    for result_set in result_sets:
        base = result_set.experiment or "section"
        anchors[base] = anchors.get(base, 0) + 1
        anchor = (
            base if anchors[base] == 1 else f"{base}-{anchors[base]}"
        )
        sections.append(_section(result_set, anchor, prefer_mpl))
        toc.append(
            f'<li><a href="#{escape(anchor)}">'
            f"{escape(result_set.title)}</a></li>"
        )

    toc_html = (
        '<nav class="toc"><strong>Contents</strong>'
        f"<ol>{''.join(toc)}</ol></nav>"
        if len(result_sets) > 1
        else ""
    )
    subtitle_html = (
        f'<p class="sub">{escape(subtitle)}</p>' if subtitle else ""
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8"/>'
        f"<title>{escape(title)}</title>"
        f"<style>{_CSS}</style></head><body><main>"
        f'<header class="page"><h1>{escape(title)}</h1>'
        f"{subtitle_html}</header>"
        f"{toc_html}"
        f"{''.join(sections)}"
        f"<footer>{len(result_sets)} section"
        f"{'s' if len(result_sets) != 1 else ''} &middot; "
        "generated by <code>repro.experiments.report</code> &middot; "
        "self-contained (no external resources)</footer>"
        "</main></body></html>\n"
    )
