"""Fig 10: effect of 68 days of hammer stress on HC_first (module H3).

The figure is a scatter of before- vs after-aging measured HC_first
with per-transition population fractions; the fractions at each
before-aging value sum to 1.0.  Obsv 12: a non-zero fraction of rows
weakens by one grid step; Obsv 13: the strongest (128K) rows never
change, but the worst case can drop.  The before/after
characterization pair runs as one orchestrated task, so repeated runs
replay from the on-disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.characterization.aging_study import AgingStudy, AgingStudyResult
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)
from repro.experiments.common import ExperimentScale
from repro.faults.aging import AGING_DROP_FRACTIONS
from repro.faults.modules import module_by_label
from repro.orchestration import OrchestrationContext, Task, TaskGroup, make_task


@dataclass
class Fig10Result:
    study: AgingStudyResult
    paper_fractions: Dict[int, float]

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Fig10Result) -> ResultSet:
    title = (
        f"Fig 10: aging of {result.study.module_label} "
        f"after {result.study.days:.0f} days"
    )
    transitions = result.study.transitions()
    transition_rows = []
    display_rows = []
    for (before, after), fraction in sorted(transitions.items()):
        transition_rows.append((int(before), int(after), float(fraction)))
        if before == after and fraction == 1.0:
            continue  # uninteresting diagonal-only entries
        display_rows.append(
            (
                f"{before // 1024}K",
                f"{after // 1024}K",
                f"{fraction * 100:.1f}%",
            )
        )
    weakened = result.study.weakened_fraction()
    worst_changed = result.study.worst_case_changed()
    return ResultSet(
        experiment="fig10",
        title=title,
        scalars={
            "module": result.study.module_label,
            "days": result.study.days,
            "weakened_fraction": weakened,
            "worst_case_changed": worst_changed,
        },
        tables=(
            ResultTable(
                name="transitions",
                headers=("before", "after", "fraction"),
                rows=transition_rows,
            ),
            ResultTable(
                name="paper_fractions",
                headers=("drop_steps", "fraction"),
                rows=[
                    (int(steps), float(fraction))
                    for steps, fraction in sorted(
                        result.paper_fractions.items()
                    )
                ],
            ),
        ),
        layout=(
            TextBlock(title + "\n\n"),
            TableBlock(
                headers=("before", "after", "fraction"),
                rows=display_rows,
            ),
            TextBlock(
                f"\n\nweakened fraction: {weakened * 100:.2f}%"
                f"\nworst case changed: {worst_changed}"
            ),
        ),
        plots=(
            PlotSpec(
                name="transitions",
                kind="scatter",
                table="transitions",
                x="before",
                y=("after",),
                title=title,
                xlabel="HC_first before aging",
                ylabel="HC_first after aging",
                logx=True,
                logy=True,
            ),
        ),
    )


def _aging_task(task: Task) -> AgingStudyResult:
    """Orchestrated unit: the before/after characterization pair."""
    module, days, config, bank = task.params
    study = AgingStudy(module_by_label(module), config, days=days)
    return study.run(bank=bank)


@register
class Fig10Experiment(Experiment):
    name = "fig10"
    description = "HC_first drift after 68 days of hammer stress"
    paper_ref = "Fig. 10"

    def __init__(self, module: str = "H3", days: float = 68.0) -> None:
        self.module = module
        self.days = days

    def _config(self, scale: ExperimentScale):
        return scale.characterization_config(
            banks=(scale.banks[0],),
            rows_per_bank=scale.rows_for(self.module),
        )

    def build_tasks(self, scale, orch):
        config = self._config(scale)
        return [
            TaskGroup(
                tasks=(
                    make_task(
                        ("fig10", "aging", self.module),
                        _aging_task,
                        (self.module, self.days, config, scale.banks[0]),
                        base_seed=scale.seed,
                    ),
                ),
                fingerprint=("fig10", config, self.days),
            )
        ]

    def reduce(self, scale, outputs):
        return Fig10Result(
            study=outputs[("fig10", "aging", self.module)],
            paper_fractions=dict(AGING_DROP_FRACTIONS),
        )

    def result_set(self, result):
        return result_set(result)


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    module: str = "H3",
    days: float = 68.0,
    orchestration: Optional[OrchestrationContext] = None,
) -> Fig10Result:
    return Fig10Experiment(module=module, days=days).run(scale, orchestration)
