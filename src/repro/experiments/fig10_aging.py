"""Fig 10: effect of 68 days of hammer stress on HC_first (module H3).

The figure is a scatter of before- vs after-aging measured HC_first
with per-transition population fractions; the fractions at each
before-aging value sum to 1.0.  Obsv 12: a non-zero fraction of rows
weakens by one grid step; Obsv 13: the strongest (128K) rows never
change, but the worst case can drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.characterization.aging_study import AgingStudy, AgingStudyResult
from repro.experiments.common import ExperimentScale, format_table
from repro.faults.aging import AGING_DROP_FRACTIONS
from repro.faults.modules import module_by_label


@dataclass
class Fig10Result:
    study: AgingStudyResult
    paper_fractions: Dict[int, float]

    def render(self) -> str:
        transitions = self.study.transitions()
        rows = []
        for (before, after), fraction in sorted(transitions.items()):
            if before == after and fraction == 1.0:
                continue  # uninteresting diagonal-only entries
            rows.append(
                [
                    f"{before // 1024}K",
                    f"{after // 1024}K",
                    f"{fraction * 100:.1f}%",
                ]
            )
        return (
            f"Fig 10: aging of {self.study.module_label} "
            f"after {self.study.days:.0f} days\n\n"
            + format_table(["before", "after", "fraction"], rows)
            + f"\n\nweakened fraction: {self.study.weakened_fraction() * 100:.2f}%"
            + f"\nworst case changed: {self.study.worst_case_changed()}"
        )


def run(
    scale: ExperimentScale = ExperimentScale(),
    *,
    module: str = "H3",
    days: float = 68.0,
) -> Fig10Result:
    study = AgingStudy(
        module_by_label(module),
        scale.characterization_config(banks=(scale.banks[0],)),
        days=days,
    )
    return Fig10Result(
        study=study.run(bank=scale.banks[0]),
        paper_fractions=dict(AGING_DROP_FRACTIONS),
    )
