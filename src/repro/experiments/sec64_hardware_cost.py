"""Section 6.4: hardware complexity of Svärd's metadata storage.

Reproduces the two cost estimates: the memory-controller SRAM table
(0.056 mm^2 per 64K-row bank, 0.47 ns access, 0.86% of a high-end
Xeon for a 4-channel dual-rank system) and the in-DRAM integrity-bit
option (0.006% DRAM array growth, no latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.area_model import SvardAreaModel
from repro.experiments.api import (
    Experiment,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    register,
)

TITLE = "Section 6.4: Svärd hardware cost"


@dataclass
class Sec64Result:
    model: SvardAreaModel

    def render(self) -> str:
        return result_set(self).render_text()


def result_set(result: Sec64Result) -> ResultSet:
    m = result.model
    display_rows = [
        ["table area / bank", f"{m.table_area_per_bank_mm2():.3f} mm^2", "0.056 mm^2"],
        ["table area total", f"{m.total_table_area_mm2():.2f} mm^2", "7.17 mm^2"],
        ["CPU area overhead", f"{m.cpu_area_overhead_fraction() * 100:.2f}%", "0.86%"],
        [
            "lookup hidden under ACT",
            str(m.lookup_hidden_under_activation()),
            "True",
        ],
        [
            "in-DRAM array growth",
            f"{m.in_dram_overhead_fraction() * 100:.4f}%",
            "0.006%",
        ],
    ]
    return ResultSet(
        experiment="sec64",
        title=TITLE,
        scalars={
            "table_area_per_bank_mm2": m.table_area_per_bank_mm2(),
            "total_table_area_mm2": m.total_table_area_mm2(),
            "cpu_area_overhead_fraction": m.cpu_area_overhead_fraction(),
            "lookup_hidden_under_activation": m.lookup_hidden_under_activation(),
            "in_dram_overhead_fraction": m.in_dram_overhead_fraction(),
        },
        tables=(
            ResultTable(
                name="costs",
                headers=("quantity", "model", "paper"),
                rows=[
                    (
                        "table_area_per_bank_mm2",
                        m.table_area_per_bank_mm2(),
                        0.056,
                    ),
                    ("total_table_area_mm2", m.total_table_area_mm2(), 7.17),
                    (
                        "cpu_area_overhead_pct",
                        m.cpu_area_overhead_fraction() * 100,
                        0.86,
                    ),
                    (
                        "lookup_hidden_under_activation",
                        m.lookup_hidden_under_activation(),
                        True,
                    ),
                    (
                        "in_dram_overhead_pct",
                        m.in_dram_overhead_fraction() * 100,
                        0.006,
                    ),
                ],
            ),
        ),
        layout=(
            TextBlock(TITLE + "\n\n"),
            TableBlock(
                headers=("quantity", "model", "paper"),
                rows=display_rows,
            ),
        ),
    )


def run(model: SvardAreaModel = SvardAreaModel()) -> Sec64Result:
    return Sec64Result(model=model)


@register
class Sec64Experiment(Experiment):
    name = "sec64"
    description = "Svärd metadata hardware cost estimates"
    paper_ref = "Section 6.4"

    def reduce(self, scale, outputs):
        return run()

    def result_set(self, result):
        return result_set(result)
