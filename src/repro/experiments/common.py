"""Shared experiment configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.characterization.runner import (
    BankProfile,
    CharacterizationConfig,
    CharacterizationRunner,
    ModuleCharacterization,
)
from repro.core.profile import VulnerabilityProfile
from repro.dram.geometry import REPRESENTATIVE_BANKS
from repro.faults.modules import MODULES, ModuleSpec, module_by_label
from repro.orchestration import OrchestrationContext, Task, make_task, serial_context
from repro.sim.engine import MemorySystem
from repro.workloads.mixes import (
    build_alone_trace,
    build_traces,
    single_core_config,
)

#: Every module label, in Table 5 order.
ALL_MODULE_LABELS: Tuple[str, ...] = tuple(sorted(MODULES))


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by the experiment harnesses.

    Defaults run every experiment on a laptop in minutes.  Paper scale
    is ``rows_per_bank`` = each module's real row count, ``n_mixes`` =
    120, and ``requests_per_core`` high enough to cover 200M
    instructions (see EXPERIMENTS.md for the mapping).
    """

    rows_per_bank: int = 2048
    banks: Tuple[int, ...] = tuple(REPRESENTATIVE_BANKS)
    modules: Tuple[str, ...] = ALL_MODULE_LABELS
    n_mixes: int = 2
    requests_per_core: int = 4000
    hc_first_values: Tuple[int, ...] = (4096, 2048, 1024, 512, 256, 128, 64)
    svard_profiles: Tuple[str, ...] = ("H1", "M0", "S0")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows_per_bank < 64:
            raise ValueError("rows_per_bank too small to be meaningful")
        for label in self.modules:
            module_by_label(label)
        for label in self.svard_profiles:
            module_by_label(label)

    def characterization_config(self, **overrides) -> CharacterizationConfig:
        defaults = dict(
            rows_per_bank=self.rows_per_bank,
            banks=self.banks,
            seed=self.seed,
        )
        defaults.update(overrides)
        return CharacterizationConfig(**defaults)


_CHARACTERIZATION_CACHE: Dict[tuple, ModuleCharacterization] = {}


def _characterize_bank_task(task: Task) -> BankProfile:
    """Orchestrated unit: Algorithm 1 over one (module, bank) pair."""
    label, config = task.params
    runner = CharacterizationRunner(module_by_label(label), config)
    return runner.characterize_bank(config.banks[task.key[-1]])


def characterize_modules(
    labels: Sequence[str],
    scale: ExperimentScale,
    *,
    t_agg_on_ns: float = 36.0,
    orchestration: Optional[OrchestrationContext] = None,
) -> Dict[str, ModuleCharacterization]:
    """Characterize several modules, one orchestrated task per bank.

    Bank tasks are independent (each draws from its own seed stream),
    so this fans the whole Table 5 registry out across workers and the
    on-disk cache while producing bit-identical results to the
    sequential :class:`CharacterizationRunner` loop.
    """
    orch = orchestration or serial_context()
    config = scale.characterization_config(t_agg_on_ns=t_agg_on_ns)
    missing = [
        label for label in labels
        if _memo_key(label, scale, t_agg_on_ns) not in _CHARACTERIZATION_CACHE
    ]
    tasks = [
        make_task(
            ("characterize", label, "bank", index),
            _characterize_bank_task,
            (label, config),
            base_seed=scale.seed,
        )
        for label in missing
        for index in range(len(config.banks))
    ]
    profiles = orch.run(tasks, fingerprint=("characterize", config))
    for label in missing:
        _CHARACTERIZATION_CACHE[_memo_key(label, scale, t_agg_on_ns)] = (
            ModuleCharacterization(
                module_label=label,
                t_agg_on_ns=t_agg_on_ns,
                banks={
                    bank: profiles[("characterize", label, "bank", index)]
                    for index, bank in enumerate(config.banks)
                },
            )
        )
    return {
        label: _CHARACTERIZATION_CACHE[_memo_key(label, scale, t_agg_on_ns)]
        for label in labels
    }


def _memo_key(label: str, scale: ExperimentScale, t_agg_on_ns: float) -> tuple:
    return (label, scale.rows_per_bank, scale.banks, scale.seed, t_agg_on_ns)


def characterize(
    label: str,
    scale: ExperimentScale,
    *,
    t_agg_on_ns: float = 36.0,
    orchestration: Optional[OrchestrationContext] = None,
) -> ModuleCharacterization:
    """Characterize one module (cached across experiments)."""
    return characterize_modules(
        [label], scale, t_agg_on_ns=t_agg_on_ns, orchestration=orchestration
    )[label]


#: Per-process memo for scaled vulnerability profiles.  Fig 12/13 and
#: the bins ablation all evaluate ``ground truth scaled to HC_first``
#: for the same keys; the profiles are pure functions of their key,
#: so memoizing can change timing but never results.  Pool workers
#: fill their own copy on first use.
_PROFILE_MEMO: Dict[tuple, VulnerabilityProfile] = {}


def scaled_profile(
    profile_label: str, hc_first: int, scale: ExperimentScale
) -> VulnerabilityProfile:
    """The module's ground-truth profile with its floor at ``hc_first``."""
    key = (
        profile_label, hc_first,
        scale.banks, scale.rows_per_bank, scale.seed,
    )
    if key not in _PROFILE_MEMO:
        _PROFILE_MEMO[key] = VulnerabilityProfile.from_ground_truth(
            module_by_label(profile_label),
            banks=scale.banks,
            rows_per_bank=scale.rows_per_bank,
            seed=scale.seed,
        ).scaled_to_worst_case(hc_first)
    return _PROFILE_MEMO[key]


def mix_baseline_task(task: Task) -> Dict[str, list]:
    """Orchestrated unit shared by the performance experiments: the
    alone (single-core) and shared no-defense finish times for one
    workload mix, against which every defended run is normalized."""
    mix, config = task.params
    alone_config = single_core_config(config)
    alone = [
        MemorySystem(alone_config, build_alone_trace(mix, core, alone_config))
        .run()
        .cores[0]
        .finish_ns
        for core in range(config.cores)
    ]
    shared = MemorySystem(config, build_traces(mix, config)).run()
    return {"alone": alone, "shared": shared.finish_times()}


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), separator, *[line(row) for row in rows]])
