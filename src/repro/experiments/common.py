"""Shared experiment configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.characterization.rowpress import T_AGG_ON_SWEEP_NS
from repro.characterization.runner import (
    BankProfile,
    CharacterizationConfig,
    CharacterizationRunner,
    ModuleCharacterization,
)
from repro.core.profile import VulnerabilityProfile
from repro.dram.geometry import REPRESENTATIVE_BANKS
from repro.dram.timing import device_for
from repro.faults.modules import MODULES, ModuleSpec, module_by_label
from repro.orchestration import (
    OMIT_IF_NONE,
    OrchestrationContext,
    Task,
    TaskGroup,
    make_task,
    serial_context,
)
from repro.sim.config import SystemConfig
from repro.sim.engine import MemorySystem
from repro.workloads.mixes import (
    build_alone_trace,
    build_traces,
    single_core_config,
)

#: Every module label, in Table 5 order.
ALL_MODULE_LABELS: Tuple[str, ...] = tuple(sorted(MODULES))

#: The baseline configuration name shared by the Svärd evaluations.
NO_SVARD = "No Svärd"


def svard_configurations(scale: "ExperimentScale") -> Tuple[str, ...]:
    """Fig 12/13's configuration axis: No Svärd + one per profile.

    Task keys and reduce() lookups in both experiments are built from
    these names; keep this the single point of truth.
    """
    return (NO_SVARD,) + tuple(
        f"Svärd-{label}" for label in scale.svard_profiles
    )


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by the experiment harnesses.

    Defaults run every experiment on a laptop in minutes.  Paper scale
    is ``rows_per_bank`` = each module's real row count, ``n_mixes`` =
    120, and ``requests_per_core`` high enough to cover 200M
    instructions (see EXPERIMENTS.md for the mapping).
    """

    rows_per_bank: int = 2048
    banks: Tuple[int, ...] = tuple(REPRESENTATIVE_BANKS)
    modules: Tuple[str, ...] = ALL_MODULE_LABELS
    n_mixes: int = 2
    requests_per_core: int = 4000
    hc_first_values: Tuple[int, ...] = (4096, 2048, 1024, 512, 256, 128, 64)
    svard_profiles: Tuple[str, ...] = ("H1", "M0", "S0")
    #: The RowPress aggressor-on-time sweep (Fig 7); the paper's three
    #: points by default.  Recipes override this for denser sweeps
    #: beyond Fig 7's 36 ns / 0.5 us / 2 us.
    t_agg_on_sweep_ns: Tuple[float, ...] = T_AGG_ON_SWEEP_NS
    seed: int = 0
    #: Use each module's *real* row count (``ModuleSpec.rows_per_bank``)
    #: instead of the uniform ``rows_per_bank`` -- the paper-scale
    #: characterization geometry (runner flag ``--paper-rows``).
    paper_rows: bool = False
    #: Device-generation spec (``"DDR5-4800"``, ``"LPDDR4-3200"``, ...)
    #: resolved through :func:`repro.dram.timing.device_for` by
    #: :meth:`system_config`.  ``None`` keeps the paper's DDR4-3200 and
    #: -- via :data:`~repro.orchestration.OMIT_IF_NONE` -- leaves every
    #: pre-generation cache key and fingerprint untouched.
    device: Optional[str] = field(
        default=None, metadata={OMIT_IF_NONE: True}
    )

    def __post_init__(self) -> None:
        if self.rows_per_bank < 64:
            raise ValueError("rows_per_bank too small to be meaningful")
        for label in self.modules:
            module_by_label(label)
        for label in self.svard_profiles:
            module_by_label(label)
        # Task keys and cache fingerprints canonicalize floats exactly,
        # so 36 and 36.0 would name different entries; normalize here.
        sweep = tuple(float(t_on) for t_on in self.t_agg_on_sweep_ns)
        if not sweep:
            raise ValueError("t_agg_on_sweep_ns must not be empty")
        if any(t_on <= 0 for t_on in sweep):
            raise ValueError("t_agg_on_sweep_ns values must be positive")
        if len(set(sweep)) != len(sweep):
            raise ValueError(f"t_agg_on_sweep_ns contains duplicates: {sweep}")
        object.__setattr__(self, "t_agg_on_sweep_ns", sweep)
        if self.device is not None:
            device_for(self.device)  # fail fast on unknown specs

    def system_config(self, **overrides) -> SystemConfig:
        """A :class:`SystemConfig` carrying this scale's device timing.

        Performance experiments build their configs through this
        helper so ``--device`` reaches the simulator; explicit
        ``timing=`` overrides still win, and with no device set the
        result is exactly ``SystemConfig(**overrides)``.
        """
        if self.device is not None and "timing" not in overrides:
            overrides["timing"] = device_for(self.device)
        return SystemConfig(**overrides)

    def rows_for(self, label: str) -> int:
        """Bank row count for one module under this scale."""
        if self.paper_rows:
            return module_by_label(label).rows_per_bank
        return self.rows_per_bank

    def characterization_config(self, **overrides) -> CharacterizationConfig:
        defaults = dict(
            rows_per_bank=self.rows_per_bank,
            banks=self.banks,
            seed=self.seed,
        )
        defaults.update(overrides)
        return CharacterizationConfig(**defaults)


_CHARACTERIZATION_CACHE: Dict[tuple, ModuleCharacterization] = {}


def _characterize_bank_task(task: Task) -> BankProfile:
    """Orchestrated unit: Algorithm 1 over one (module, bank) pair."""
    label, config = task.params
    runner = CharacterizationRunner(module_by_label(label), config)
    return runner.characterize_bank(config.banks[task.key[-1]])


def _module_config(
    label: str, scale: ExperimentScale, t_agg_on_ns: float
) -> CharacterizationConfig:
    return scale.characterization_config(
        rows_per_bank=scale.rows_for(label), t_agg_on_ns=t_agg_on_ns
    )


def characterization_groups(
    labels: Sequence[str],
    scale: ExperimentScale,
    *,
    t_agg_on_ns: float = 36.0,
) -> List[TaskGroup]:
    """Task groups covering the labels' missing characterizations.

    One task per (module, bank).  Tasks are grouped by their exact
    :class:`CharacterizationConfig`, and the config *is* the cache
    fingerprint -- so disk entries are shared between any experiments
    (and any module subsets) that characterize under the same
    geometry.  Labels already in the in-process memo produce no tasks.
    Under ``scale.paper_rows`` modules with different real row counts
    land in different groups.
    """
    groups: Dict[CharacterizationConfig, List[Task]] = {}
    for label in labels:
        if _memo_key(label, scale, t_agg_on_ns) in _CHARACTERIZATION_CACHE:
            continue
        config = _module_config(label, scale, t_agg_on_ns)
        # tAggOn is part of the key so one experiment can merge groups
        # from several RowPress sweeps into a single outputs mapping
        # (Fig 7) without collisions.
        groups.setdefault(config, []).extend(
            make_task(
                ("characterize", label, t_agg_on_ns, "bank", index),
                _characterize_bank_task,
                (label, config),
                base_seed=scale.seed,
            )
            for index in range(len(config.banks))
        )
    return [
        TaskGroup(tasks=tuple(tasks), fingerprint=("characterize", config))
        for config, tasks in groups.items()
    ]


def absorb_characterizations(
    labels: Sequence[str],
    scale: ExperimentScale,
    outputs: Dict,
    *,
    t_agg_on_ns: float = 36.0,
) -> Dict[str, ModuleCharacterization]:
    """Fold orchestrated bank profiles into the in-process memo.

    ``outputs`` is the ``{task.key: BankProfile}`` mapping produced by
    running :func:`characterization_groups`; labels already memoized
    are returned from the memo without touching ``outputs``.
    """
    for label in labels:
        key = _memo_key(label, scale, t_agg_on_ns)
        if key in _CHARACTERIZATION_CACHE:
            continue
        _CHARACTERIZATION_CACHE[key] = ModuleCharacterization(
            module_label=label,
            t_agg_on_ns=t_agg_on_ns,
            banks={
                bank: outputs[("characterize", label, t_agg_on_ns, "bank", index)]
                for index, bank in enumerate(scale.banks)
            },
        )
    return {
        label: _CHARACTERIZATION_CACHE[_memo_key(label, scale, t_agg_on_ns)]
        for label in labels
    }


def characterize_modules(
    labels: Sequence[str],
    scale: ExperimentScale,
    *,
    t_agg_on_ns: float = 36.0,
    orchestration: Optional[OrchestrationContext] = None,
) -> Dict[str, ModuleCharacterization]:
    """Characterize several modules, one orchestrated task per bank.

    Bank tasks are independent (each draws from its own seed stream),
    so this fans the whole Table 5 registry out across workers and the
    on-disk cache while producing bit-identical results to the
    sequential :class:`CharacterizationRunner` loop.
    """
    orch = orchestration or serial_context()
    outputs = orch.run_groups(
        characterization_groups(labels, scale, t_agg_on_ns=t_agg_on_ns)
    )
    return absorb_characterizations(
        labels, scale, outputs, t_agg_on_ns=t_agg_on_ns
    )


def _memo_key(label: str, scale: ExperimentScale, t_agg_on_ns: float) -> tuple:
    return (
        label, scale.rows_for(label), scale.banks, scale.seed, t_agg_on_ns
    )


def characterize(
    label: str,
    scale: ExperimentScale,
    *,
    t_agg_on_ns: float = 36.0,
    orchestration: Optional[OrchestrationContext] = None,
) -> ModuleCharacterization:
    """Characterize one module (cached across experiments)."""
    return characterize_modules(
        [label], scale, t_agg_on_ns=t_agg_on_ns, orchestration=orchestration
    )[label]


#: Per-process memo for scaled vulnerability profiles.  Fig 12/13 and
#: the bins ablation all evaluate ``ground truth scaled to HC_first``
#: for the same keys; the profiles are pure functions of their key,
#: so memoizing can change timing but never results.  Pool workers
#: fill their own copy on first use.
_PROFILE_MEMO: Dict[tuple, VulnerabilityProfile] = {}


def scaled_profile(
    profile_label: str, hc_first: int, scale: ExperimentScale
) -> VulnerabilityProfile:
    """The module's ground-truth profile with its floor at ``hc_first``."""
    key = (
        profile_label, hc_first,
        scale.banks, scale.rows_for(profile_label), scale.seed,
    )
    if key not in _PROFILE_MEMO:
        _PROFILE_MEMO[key] = VulnerabilityProfile.from_ground_truth(
            module_by_label(profile_label),
            banks=scale.banks,
            rows_per_bank=scale.rows_for(profile_label),
            seed=scale.seed,
        ).scaled_to_worst_case(hc_first)
    return _PROFILE_MEMO[key]


def mix_baseline_task(task: Task) -> Dict[str, list]:
    """Orchestrated unit shared by the performance experiments: the
    alone (single-core) and shared no-defense finish times for one
    workload mix, against which every defended run is normalized."""
    mix, config = task.params
    alone_config = single_core_config(config)
    alone = [
        MemorySystem(alone_config, build_alone_trace(mix, core, alone_config))
        .run()
        .cores[0]
        .finish_ns
        for core in range(config.cores)
    ]
    shared = MemorySystem(config, build_traces(mix, config)).run()
    return {"alone": alone, "shared": shared.finish_times()}


