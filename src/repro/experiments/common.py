"""Shared experiment configuration and helpers."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Sequence, Tuple

from repro.characterization.runner import (
    CharacterizationConfig,
    CharacterizationRunner,
    ModuleCharacterization,
)
from repro.dram.geometry import REPRESENTATIVE_BANKS
from repro.faults.modules import MODULES, ModuleSpec, module_by_label

#: Every module label, in Table 5 order.
ALL_MODULE_LABELS: Tuple[str, ...] = tuple(sorted(MODULES))


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs shared by the experiment harnesses.

    Defaults run every experiment on a laptop in minutes.  Paper scale
    is ``rows_per_bank`` = each module's real row count, ``n_mixes`` =
    120, and ``requests_per_core`` high enough to cover 200M
    instructions (see EXPERIMENTS.md for the mapping).
    """

    rows_per_bank: int = 2048
    banks: Tuple[int, ...] = tuple(REPRESENTATIVE_BANKS)
    modules: Tuple[str, ...] = ALL_MODULE_LABELS
    n_mixes: int = 2
    requests_per_core: int = 4000
    hc_first_values: Tuple[int, ...] = (4096, 2048, 1024, 512, 256, 128, 64)
    svard_profiles: Tuple[str, ...] = ("H1", "M0", "S0")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rows_per_bank < 64:
            raise ValueError("rows_per_bank too small to be meaningful")
        for label in self.modules:
            module_by_label(label)
        for label in self.svard_profiles:
            module_by_label(label)

    def characterization_config(self, **overrides) -> CharacterizationConfig:
        defaults = dict(
            rows_per_bank=self.rows_per_bank,
            banks=self.banks,
            seed=self.seed,
        )
        defaults.update(overrides)
        return CharacterizationConfig(**defaults)


_CHARACTERIZATION_CACHE: Dict[tuple, ModuleCharacterization] = {}


def characterize(
    label: str, scale: ExperimentScale, *, t_agg_on_ns: float = 36.0
) -> ModuleCharacterization:
    """Characterize one module (cached across experiments)."""
    key = (label, scale.rows_per_bank, scale.banks, scale.seed, t_agg_on_ns)
    if key not in _CHARACTERIZATION_CACHE:
        runner = CharacterizationRunner(
            module_by_label(label),
            scale.characterization_config(t_agg_on_ns=t_agg_on_ns),
        )
        _CHARACTERIZATION_CACHE[key] = runner.run()
    return _CHARACTERIZATION_CACHE[key]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(column) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    separator = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), separator, *[line(row) for row in rows]])
