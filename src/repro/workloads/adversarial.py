"""Adversarial access patterns (Fig 13 and the attack experiments).

* Against Hydra: cycle through more escalated rows than the row-count
  cache holds, so every activation misses the cache and triggers an
  extra DRAM counter access in steady state.
* Against RRS: hammer a single row as fast as possible, maximizing the
  number of row-swap operations.
* Many-sided hammering: round-robin over N aggressor rows in one bank,
  the classic N-sided RowHammer shape (TRRespass-style), stressing
  probabilistic defenses whose per-activation mitigation chance decays
  as the attacker spreads activations over more aggressors.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.engine import TraceStep


@dataclass
class HydraAdversarialTrace:
    """Counter-cache thrashing: cycle over more rows than the RCC holds.

    Rows sit one tracking group apart (``row_stride`` = Hydra's group
    size), so each quickly escalates to exact per-row counting; cycling
    over more rows than the row-count cache holds then makes every
    activation miss the cache and drag a counter across the DRAM
    interface.  ``start_offset`` phases multiple attacking cores so
    their activations do not coalesce in the row buffer.
    """

    n_rows: int = 1024
    row_stride: int = 128
    bank_stride: int = 16
    rows_per_bank: int = 128 * 1024
    gap_ns: float = 5.0
    start_offset: int = 0
    _position: int = 0

    def __post_init__(self) -> None:
        self._position = self.start_offset

    def next_step(self, chain: int) -> TraceStep:
        index = self._position
        self._position += 1
        row = ((index % self.n_rows) * self.row_stride) % self.rows_per_bank
        # A row always lives in the same bank (page placement).
        bank = (row // self.row_stride) % self.bank_stride
        return TraceStep(bank=bank, row=row, column=0, gap_ns=self.gap_ns)


@dataclass
class RrsAdversarialTrace:
    """Single-row hammering: maximizes RRS swap operations.

    Alternates between the target row and a scratch row so every
    access re-activates the target (no row-buffer hits).
    """

    target_row: int = 1000
    scratch_row: int = 5000
    bank: int = 0
    gap_ns: float = 5.0
    _toggle: bool = False

    def next_step(self, chain: int) -> TraceStep:
        self._toggle = not self._toggle
        row = self.target_row if self._toggle else self.scratch_row
        return TraceStep(bank=self.bank, row=row, column=0, gap_ns=self.gap_ns)


@dataclass
class ManySidedHammerTrace:
    """N-sided hammering: round-robin over N aggressor rows in a bank.

    Aggressors sit ``row_stride`` apart (stride 2 is the classic
    double-sided sandwich generalized to N victims); visiting them in
    strict rotation keeps every activation a row-buffer miss while
    spreading the activation count evenly, which is what defeats
    sampling defenses tuned for one or two hot rows.  ``start_offset``
    phases multiple attacking cores within the rotation.
    """

    n_sides: int = 8
    base_row: int = 1000
    row_stride: int = 2
    bank: int = 0
    rows_per_bank: int = 128 * 1024
    gap_ns: float = 5.0
    start_offset: int = 0
    _position: int = 0

    def __post_init__(self) -> None:
        if self.n_sides < 2:
            raise ValueError("many-sided hammering needs at least 2 sides")
        self._position = self.start_offset

    def next_step(self, chain: int) -> TraceStep:
        index = self._position
        self._position += 1
        row = (
            self.base_row + (index % self.n_sides) * self.row_stride
        ) % self.rows_per_bank
        return TraceStep(bank=self.bank, row=row, column=0, gap_ns=self.gap_ns)
