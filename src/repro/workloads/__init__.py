"""Workload generation for the performance evaluation (Section 7.1).

The paper runs 120 randomly chosen 8-core multiprogrammed mixes from
SPEC CPU2006, SPEC CPU2017, TPC, MediaBench, and YCSB.  Those traces
are proprietary or enormous, so this package generates synthetic
post-LLC request streams whose knobs -- row-buffer locality, bank
parallelism, row-popularity skew, write ratio, and intensity --
reproduce the memory behaviour classes those suites cover.

* :mod:`repro.workloads.synthetic` -- the parameterized trace
  generator.
* :mod:`repro.workloads.suites` -- the five suite profiles.
* :mod:`repro.workloads.mixes` -- seeded construction of the 120
  8-core mixes.
* :mod:`repro.workloads.adversarial` -- the Fig 13 adversarial
  patterns against Hydra and RRS, plus many-sided (N-aggressor)
  hammering.
* :mod:`repro.workloads.tracefile` -- streamed ingestion of recorded
  ramulator/DRAMsim-style request traces (plain or gzip).
"""

from repro.workloads.synthetic import SuiteProfile, SyntheticTrace
from repro.workloads.suites import SUITE_PROFILES, profile_by_name
from repro.workloads.mixes import WorkloadMix, generate_mixes, build_traces
from repro.workloads.adversarial import (
    HydraAdversarialTrace,
    ManySidedHammerTrace,
    RrsAdversarialTrace,
)
from repro.workloads.tracefile import (
    TraceExhausted,
    TraceFileReader,
    TraceParseError,
    readers_for_cores,
)

__all__ = [
    "SuiteProfile",
    "SyntheticTrace",
    "SUITE_PROFILES",
    "profile_by_name",
    "WorkloadMix",
    "generate_mixes",
    "build_traces",
    "HydraAdversarialTrace",
    "ManySidedHammerTrace",
    "RrsAdversarialTrace",
    "TraceExhausted",
    "TraceFileReader",
    "TraceParseError",
    "readers_for_cores",
]
