"""Streaming trace-file ingestion: real request streams as workloads.

A :class:`TraceFileReader` implements the engine's ``Trace`` protocol
from a ramulator/DRAMsim-style request file, so recorded application
traces become first-class workloads next to the synthetic mixes.  The
reader *streams*: lines are decoded out of a bounded chunk buffer
(plain or gzip, sniffed from the magic bytes), never by slurping the
file, so multi-gigabyte traces cost a few tens of kilobytes of memory
per core.  ``peak_buffer_bytes`` exposes the high-water mark for the
property test that pins this.

Accepted line format (one request per line; blank lines and ``#`` /
``//`` comments are skipped)::

    <address> <type> [<cycle>]

* ``address`` -- hex (``0x...``) or decimal byte address.
* ``type`` -- ``R``/``RD``/``READ``/``P_MEM_RD`` or ``W``/``WR``/
  ``WRITE``/``P_MEM_WR`` (case-insensitive).
* ``cycle`` -- optional issue cycle; with ``clock_ns`` set, cycle
  deltas become inter-request gaps, otherwise ``default_gap_ns``
  applies.

Addresses map onto (bank, row, column) with a cache-line-interleaved
layout: consecutive ``line_bytes`` lines walk the columns of a row,
rows interleave across banks, matching how the synthetic traces pin a
row to one bank.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO, List, Optional, Tuple, Union

from repro.sim.engine import TraceStep

#: Bytes fetched from the (decompressed) stream per refill.
_CHUNK_BYTES = 64 * 1024

_READ_TOKENS = frozenset({"r", "rd", "read", "p_mem_rd"})
_WRITE_TOKENS = frozenset({"w", "wr", "write", "p_mem_wr"})


class TraceParseError(ValueError):
    """A request line that does not parse; names the file and line."""


class TraceExhausted(RuntimeError):
    """A non-looping reader ran out of request lines."""


class _LineStream:
    """Chunked line iterator over a plain or gzip file.

    Reads ``_CHUNK_BYTES`` at a time into a carry buffer and splits
    complete lines off it; ``peak_buffer_bytes`` records the largest
    the carry buffer ever got (one chunk plus one partial line), which
    is the reader's whole memory footprint for file content.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self.peak_buffer_bytes = 0
        self._handle: Optional[IO[bytes]] = None
        self._carry = b""
        self._eof = False
        self._open()

    def _open(self) -> None:
        raw = open(self.path, "rb")
        magic = raw.read(2)
        raw.seek(0)
        if magic == b"\x1f\x8b":
            self._handle = gzip.GzipFile(fileobj=raw)
        else:
            self._handle = raw
        self._carry = b""
        self._eof = False

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def reopen(self) -> None:
        """Restart from the top of the file (trace looping)."""
        self.close()
        self._open()

    def next_line(self) -> Optional[bytes]:
        """The next ``\\n``-terminated line, or ``None`` at EOF."""
        while True:
            newline = self._carry.find(b"\n")
            if newline >= 0:
                line = self._carry[:newline]
                self._carry = self._carry[newline + 1:]
                return line
            if self._eof:
                if self._carry:
                    line, self._carry = self._carry, b""
                    return line
                return None
            chunk = self._handle.read(_CHUNK_BYTES)
            if not chunk:
                self._eof = True
                continue
            self._carry += chunk
            if len(self._carry) > self.peak_buffer_bytes:
                self.peak_buffer_bytes = len(self._carry)


def _parse_address(token: str) -> int:
    try:
        return int(token, 16) if token.lower().startswith("0x") else int(token)
    except ValueError:
        raise ValueError(f"bad address {token!r}") from None


class TraceFileReader:
    """One core's request stream replayed from a trace file.

    Implements the engine ``Trace`` protocol (``next_step``).  The
    reader is stateful, so build one instance per core -- several
    readers over the same path each keep their own stream position.

    By default the trace loops: a file shorter than
    ``requests_per_core`` wraps around (standard trace-replay
    practice), restarting the cycle baseline so gaps stay sane.  With
    ``loop=False`` exhaustion raises :class:`TraceExhausted` instead.
    """

    def __init__(
        self,
        path: Union[str, Path],
        *,
        total_banks: int = 32,
        rows_per_bank: int = 128 * 1024,
        columns_per_row: int = 128,
        line_bytes: int = 64,
        clock_ns: Optional[float] = None,
        default_gap_ns: float = 0.0,
        loop: bool = True,
    ) -> None:
        if total_banks < 1 or rows_per_bank < 1 or columns_per_row < 1:
            raise ValueError("geometry dimensions must be positive")
        if line_bytes < 1:
            raise ValueError("line_bytes must be positive")
        if clock_ns is not None and clock_ns <= 0:
            raise ValueError("clock_ns must be positive")
        if default_gap_ns < 0:
            raise ValueError("default_gap_ns must be non-negative")
        self.path = Path(path)
        self.total_banks = total_banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self.line_bytes = line_bytes
        self.clock_ns = clock_ns
        self.default_gap_ns = default_gap_ns
        self.loop = loop
        self.lines_read = 0
        self.requests_emitted = 0
        self._stream = _LineStream(self.path)
        self._line_number = 0
        self._prev_cycle: Optional[int] = None
        self._emitted_this_pass = False

    # ------------------------------------------------------------------

    @property
    def peak_buffer_bytes(self) -> int:
        """High-water mark of the line buffer (whole-run maximum)."""
        return self._stream.peak_buffer_bytes

    def close(self) -> None:
        self._stream.close()

    def _decode(self, line: str) -> Optional[Tuple[int, bool, Optional[int]]]:
        """``(address, is_write, cycle)`` of one line, None to skip."""
        text = line.strip()
        if not text or text.startswith("#") or text.startswith("//"):
            return None
        tokens = text.split()
        if len(tokens) < 2:
            raise ValueError("expected `<address> <type> [<cycle>]`")
        address = _parse_address(tokens[0])
        type_token = tokens[1].lower()
        if type_token in _WRITE_TOKENS:
            is_write = True
        elif type_token in _READ_TOKENS:
            is_write = False
        else:
            raise ValueError(f"bad request type {tokens[1]!r}")
        cycle: Optional[int] = None
        if len(tokens) >= 3:
            try:
                cycle = int(tokens[2])
            except ValueError:
                raise ValueError(f"bad cycle stamp {tokens[2]!r}") from None
        return address, is_write, cycle

    def _next_request(self) -> Tuple[int, bool, Optional[int]]:
        while True:
            raw = self._stream.next_line()
            if raw is None:
                if not self.loop:
                    raise TraceExhausted(
                        f"{self.path}: trace exhausted after "
                        f"{self.requests_emitted} requests"
                    )
                if not self._emitted_this_pass:
                    raise TraceParseError(
                        f"{self.path}: no request lines in the file"
                    )
                self._stream.reopen()
                self._line_number = 0
                self._prev_cycle = None
                self._emitted_this_pass = False
                continue
            self._line_number += 1
            self.lines_read += 1
            try:
                decoded = self._decode(raw.decode("ascii", "replace"))
            except ValueError as error:
                raise TraceParseError(
                    f"{self.path}:{self._line_number}: {error}"
                ) from None
            if decoded is None:
                continue
            self._emitted_this_pass = True
            return decoded

    def next_step(self, chain: int) -> TraceStep:
        address, is_write, cycle = self._next_request()
        self.requests_emitted += 1
        gap_ns = self.default_gap_ns
        if cycle is not None and self.clock_ns is not None:
            if self._prev_cycle is not None and cycle > self._prev_cycle:
                gap_ns = (cycle - self._prev_cycle) * self.clock_ns
            self._prev_cycle = cycle
        line_index = address // self.line_bytes
        column = line_index % self.columns_per_row
        row_index = line_index // self.columns_per_row
        bank = row_index % self.total_banks
        row = (row_index // self.total_banks) % self.rows_per_bank
        return TraceStep(
            bank=bank,
            row=row,
            column=column,
            is_write=is_write,
            gap_ns=gap_ns,
        )


def readers_for_cores(
    paths: List[Union[str, Path]],
    cores: int,
    **kwargs,
) -> List[TraceFileReader]:
    """One reader per core from one shared path or one path per core.

    A single path is replayed on every core (each core gets its own
    stream position); otherwise the path count must equal ``cores``.
    """
    if len(paths) == 1:
        paths = list(paths) * cores
    if len(paths) != cores:
        raise ValueError(
            f"{cores} cores need 1 or {cores} trace files, got {len(paths)}"
        )
    return [TraceFileReader(path, **kwargs) for path in paths]
