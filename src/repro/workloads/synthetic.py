"""Parameterized synthetic memory-request traces.

A :class:`SyntheticTrace` emits one core's post-LLC miss stream.  Each
chain (one per outstanding-miss slot) keeps a current open row; with
probability ``row_locality`` the next request hits the same row at the
next column, otherwise it jumps to a new (bank, row) drawn from a
Zipf-weighted working set.  The Zipf exponent controls how hard the
workload hammers its hottest rows -- the property RowHammer defenses
key on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.sim.engine import TraceStep

_BATCH = 4096


@dataclass(frozen=True)
class SuiteProfile:
    """Memory-behaviour knobs of one benchmark-suite class."""

    name: str
    row_locality: float
    zipf_exponent: float
    working_set_rows: int
    banks_used: int
    write_ratio: float
    gap_mean_ns: float

    def __post_init__(self) -> None:
        if not 0 <= self.row_locality < 1:
            raise ValueError("row_locality must be in [0, 1)")
        if self.zipf_exponent < 0:
            raise ValueError("zipf_exponent must be non-negative")
        if self.working_set_rows < 1 or self.banks_used < 1:
            raise ValueError("working set and bank count must be positive")
        if not 0 <= self.write_ratio <= 1:
            raise ValueError("write_ratio must be a probability")
        if self.gap_mean_ns < 0:
            raise ValueError("gap_mean_ns must be non-negative")


class SyntheticTrace:
    """One core's request stream (implements the engine Trace protocol)."""

    def __init__(
        self,
        profile: SuiteProfile,
        *,
        total_banks: int = 32,
        rows_per_bank: int = 128 * 1024,
        columns_per_row: int = 128,
        seed: int = 0,
    ) -> None:
        self.profile = profile
        self.total_banks = total_banks
        self.rows_per_bank = rows_per_bank
        self.columns_per_row = columns_per_row
        self._rng = np.random.default_rng(np.random.SeedSequence([seed, 0x770]))

        n = min(profile.working_set_rows, rows_per_bank)
        rows = self._rng.choice(rows_per_bank, size=n, replace=False)
        weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** profile.zipf_exponent
        self._rows = rows
        self._probs = weights / weights.sum()
        banks = self._rng.choice(
            total_banks, size=min(profile.banks_used, total_banks), replace=False
        )
        # Each working-set row lives in one fixed bank (as a physical
        # page does); hot rows therefore concentrate activations on one
        # (bank, row) pair -- the behaviour activation-count defenses
        # react to.
        self._bank_of_row = banks[
            self._rng.integers(0, len(banks), size=n)
        ]
        self._chain_state: Dict[int, Tuple[int, int, int]] = {}
        self._row_batch = np.empty(0, dtype=np.int64)
        self._uniform_batch = np.empty(0)
        self._gap_batch = np.empty(0)
        self._batch_pos = 0

    # ------------------------------------------------------------------

    def _refill(self) -> None:
        self._row_batch = self._rng.choice(
            len(self._rows), size=_BATCH, p=self._probs
        )
        self._uniform_batch = self._rng.random((_BATCH, 3))
        self._gap_batch = self._rng.exponential(
            max(self.profile.gap_mean_ns, 1e-9), size=_BATCH
        )
        self._batch_pos = 0

    def _draw(self) -> Tuple[int, float, float, float, float]:
        if self._batch_pos >= _BATCH:
            self._refill()
        if len(self._row_batch) == 0:
            self._refill()
        i = self._batch_pos
        self._batch_pos += 1
        u = self._uniform_batch[i]
        return int(self._row_batch[i]), u[0], u[1], u[2], float(self._gap_batch[i])

    def next_step(self, chain: int) -> TraceStep:
        row_index, u_local, u_bank, u_write, gap = self._draw()
        state = self._chain_state.get(chain)
        if state is not None and u_local < self.profile.row_locality:
            bank, row, column = state
            column = (column + 1) % self.columns_per_row
        else:
            bank = int(self._bank_of_row[row_index])
            row = int(self._rows[row_index])
            column = 0
        self._chain_state[chain] = (bank, row, column)
        return TraceStep(
            bank=bank,
            row=row,
            column=column,
            is_write=u_write < self.profile.write_ratio,
            gap_ns=gap,
        )
