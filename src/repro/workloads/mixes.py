"""Multiprogrammed workload mixes (the paper's 120 8-core mixes)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.config import SystemConfig
from repro.workloads.suites import SUITE_NAMES, profile_by_name
from repro.workloads.synthetic import SyntheticTrace


@dataclass(frozen=True)
class WorkloadMix:
    """One multiprogrammed mix: a suite name per core."""

    name: str
    suites: Tuple[str, ...]
    seed: int

    def __post_init__(self) -> None:
        if not self.suites:
            raise ValueError("a mix needs at least one core")
        for suite in self.suites:
            profile_by_name(suite)  # validates


def generate_mixes(
    n_mixes: int = 120, cores: int = 8, seed: int = 0
) -> List[WorkloadMix]:
    """Randomly chosen mixes, reproducing the paper's methodology.

    Each mix draws one suite per core uniformly from the five suites,
    seeded so mix ``i`` is identical across runs and configurations.
    """
    if n_mixes < 1 or cores < 1:
        raise ValueError("need at least one mix and one core")
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x3135]))
    mixes = []
    for index in range(n_mixes):
        suites = tuple(
            SUITE_NAMES[int(k)] for k in rng.integers(0, len(SUITE_NAMES), cores)
        )
        mixes.append(WorkloadMix(name=f"mix{index:03d}", suites=suites, seed=seed + index))
    return mixes


def build_traces(mix: WorkloadMix, config: SystemConfig) -> List[SyntheticTrace]:
    """Instantiate one trace per core for a mix on a configuration."""
    return [
        SyntheticTrace(
            profile_by_name(suite),
            total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            seed=mix.seed * 1000 + core,
        )
        for core, suite in enumerate(mix.suites)
    ]


def single_core_config(config: SystemConfig) -> SystemConfig:
    """The alone-run configuration for speedup baselines."""
    from dataclasses import replace

    return replace(config, cores=1)


def build_alone_trace(
    mix: WorkloadMix, core: int, config: SystemConfig
) -> List[SyntheticTrace]:
    """The same core's trace, alone on the system (same seed)."""
    return [
        SyntheticTrace(
            profile_by_name(mix.suites[core]),
            total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            seed=mix.seed * 1000 + core,
        )
    ]
