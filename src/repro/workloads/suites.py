"""The five benchmark-suite profiles (Section 7.1 workloads).

Knob values reflect the published memory behaviour of each suite
class: SPEC floating-point/integer codes stream with good row-buffer
locality; TPC transaction mixes scatter small accesses over a large
footprint; MediaBench kernels stream sequentially; YCSB key-value
workloads hit Zipf-skewed hot keys (the hardest case for activation-
count-based defenses).  All profiles are memory-intensive, matching
the paper's workload selection.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.synthetic import SuiteProfile

#: Working sets are deliberately small: the simulator runs a slice of
#: a refresh window (hundreds of microseconds instead of 64 ms), so the
#: per-row activation counts that trigger threshold-based defenses are
#: kept representative by shrinking the hot-row set proportionally.
#: See EXPERIMENTS.md ("time compression").
SUITE_PROFILES: Dict[str, SuiteProfile] = {
    profile.name: profile
    for profile in (
        SuiteProfile(
            name="spec06",
            row_locality=0.70,
            zipf_exponent=0.4,
            working_set_rows=32,
            banks_used=16,
            write_ratio=0.20,
            gap_mean_ns=18.0,
        ),
        SuiteProfile(
            name="spec17",
            row_locality=0.60,
            zipf_exponent=0.5,
            working_set_rows=48,
            banks_used=24,
            write_ratio=0.25,
            gap_mean_ns=14.0,
        ),
        SuiteProfile(
            name="tpc",
            row_locality=0.25,
            zipf_exponent=0.6,
            working_set_rows=96,
            banks_used=32,
            write_ratio=0.35,
            gap_mean_ns=10.0,
        ),
        SuiteProfile(
            name="mediabench",
            row_locality=0.85,
            zipf_exponent=0.2,
            working_set_rows=24,
            banks_used=8,
            write_ratio=0.15,
            gap_mean_ns=22.0,
        ),
        SuiteProfile(
            name="ycsb",
            row_locality=0.30,
            zipf_exponent=0.9,
            working_set_rows=64,
            banks_used=32,
            write_ratio=0.25,
            gap_mean_ns=12.0,
        ),
    )
}

SUITE_NAMES: Tuple[str, ...] = tuple(sorted(SUITE_PROFILES))


def profile_by_name(name: str) -> SuiteProfile:
    try:
        return SUITE_PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown suite {name!r}; known: {SUITE_NAMES}") from None
