"""The experiment service: an HTTP front end over queue + cache.

``runner serve <cache-dir>`` starts a :class:`ThreadingHTTPServer`
(stdlib only -- the service adds **no** dependencies) whose state is
entirely the on-disk substrate the CLI already uses: the result cache,
the job-queue directory next to it, and the run records written by
:class:`~repro.service.submissions.SubmissionManager`.  The process
itself is stateless; kill it and restart it and nothing is lost.

Routes::

    GET  /                     landing page over all published runs
    GET  /healthz              liveness + one-line queue summary (JSON)
    GET  /queue                full `runner queue status --json` snapshot
    GET  /recipes              every registered recipe manifest (JSON)
    GET  /runs                 run records, newest first (JSON)
    POST /runs                 submit a sweep: {"recipe": NAME} or a
                               full manifest; optional "smoke": true
    POST /submit               alias for POST /runs
    GET  /runs/<id>            one run record (JSON)
    GET  /runs/<id>/<path>     a run artifact (report.html, seed*/...)

Artifacts are written with atomic renames end-to-end, so a GET racing
an active sweep returns a complete file or a 404 -- never a torn one.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.experiments.recipes import Recipe, RecipeError, all_recipes, get_recipe
from repro.orchestration import DEFAULT_STALE_AFTER, queue_status
from repro.orchestration.backends import DEFAULT_LEASE_TIMEOUT
from repro.service.index import build_index
from repro.service.submissions import RunNotFound, SubmissionManager

__all__ = ["ExperimentHTTPServer", "ExperimentService", "ServiceHandler"]

#: Artifact extensions the service will serve, with their MIME types.
#: An allow-list: the artifact tree only ever contains renderer output
#: plus the report, so anything else under a run directory (tempfiles
#: mid-rename, stray editor droppings) is not reachable over HTTP.
_CONTENT_TYPES = {
    ".html": "text/html; charset=utf-8",
    ".json": "application/json",
    ".csv": "text/csv; charset=utf-8",
    ".svg": "image/svg+xml",
    ".png": "image/png",
}

#: Submission bodies larger than this are rejected outright; a recipe
#: manifest is a few hundred bytes.
_MAX_BODY = 1 << 20


class ExperimentService:
    """Request-independent service state: one per server process."""

    def __init__(
        self,
        cache_dir: Path,
        *,
        max_concurrent: int = 4,
        participate: bool = False,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        stale_after: float = DEFAULT_STALE_AFTER,
        log=None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stale_after = stale_after
        self.log = log or (lambda message: None)
        self.submissions = SubmissionManager(
            self.cache_dir,
            max_concurrent=max_concurrent,
            participate=participate,
            lease_timeout=lease_timeout,
            log=self.log,
        )

    # -- read models ---------------------------------------------------

    def queue_snapshot(self) -> Dict[str, Any]:
        return queue_status(self.cache_dir, stale_after=self.stale_after)

    def healthz(self) -> Dict[str, Any]:
        """Cheap-but-honest liveness: same scan helpers as `queue status`."""
        snapshot = self.queue_snapshot()
        runs = self.submissions.list_runs()
        states: Dict[str, int] = {}
        for record in runs:
            state = str(record.get("state", "?"))
            states[state] = states.get(state, 0) + 1
        return {
            "status": "ok",
            "cache_dir": str(self.cache_dir),
            "tasks": snapshot["tasks"],
            "workers": {
                "live": sum(
                    1 for worker in snapshot["workers"]
                    if worker["status"] == "live"
                ),
                "stale": sum(
                    1 for worker in snapshot["workers"]
                    if worker["status"] == "stale"
                ),
            },
            "runs": states,
            "active_sweeps": self.submissions.active_count(),
        }

    def index_page(self) -> str:
        return build_index(
            self.submissions.list_runs(),
            self.queue_snapshot(),
            {
                name: recipe.to_manifest()
                for name, recipe in all_recipes().items()
            },
            now=time.time(),
        )

    # -- write model ---------------------------------------------------

    def submit_manifest(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Validate one POST body and enqueue the sweep.

        Two accepted shapes: ``{"recipe": <registered name>}`` and a
        full manifest document (``format`` key present), both with an
        optional ``"smoke": true`` rider.  Raises
        :class:`RecipeError` for anything else -- mapped to a 400.
        """
        if not isinstance(body, dict):
            raise RecipeError(
                "submission body must be a JSON object: a full recipe "
                'manifest, or {"recipe": "<registered name>"}'
            )
        smoke = body.get("smoke", False)
        if not isinstance(smoke, bool):
            raise RecipeError('"smoke" must be a JSON boolean')
        if "recipe" in body:
            name = body["recipe"]
            if not isinstance(name, str):
                raise RecipeError('"recipe" must be a registered recipe name')
            if name not in all_recipes():
                raise RecipeError(
                    f"unknown recipe {name!r}; known: "
                    f"{sorted(all_recipes())} (or POST a full manifest)"
                )
            recipe = get_recipe(name)
        else:
            manifest = {k: v for k, v in body.items() if k != "smoke"}
            recipe = Recipe.from_manifest(manifest)
        return self.submissions.submit(recipe, smoke=smoke)

    def artifact_path(self, run_id: str, relative: str) -> Optional[Path]:
        """Resolve one artifact request, or ``None`` when unservable.

        Confinement: the resolved path must stay inside the run's
        artifact directory (rejects ``..``, absolute paths, and
        symlink escapes) and carry an allow-listed extension.
        """
        self.submissions.get_run(run_id)  # 404 before path games
        root = self.submissions.artifacts_dir(run_id).resolve()
        if _CONTENT_TYPES.get(Path(relative).suffix) is None:
            return None
        try:
            candidate = (root / relative).resolve()
        except OSError:
            return None
        if root not in candidate.parents:
            return None
        return candidate if candidate.is_file() else None


class ExperimentHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the service object for handlers."""

    daemon_threads = True

    def __init__(self, address, service: ExperimentService) -> None:
        super().__init__(address, ServiceHandler)
        self.service = service


class ServiceHandler(BaseHTTPRequestHandler):
    """Thin routing layer; all behavior lives on ExperimentService."""

    server: ExperimentHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        self.server.service.log(
            f"{self.address_string()} {format % args}"
        )

    def _send(
        self, code: int, content_type: str, payload: bytes
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        # Everything here changes under the reader's feet by design.
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # impatient curl; nothing to clean up

    def _send_json(self, code: int, document: Any) -> None:
        self._send(
            code,
            "application/json",
            (json.dumps(document, indent=2, sort_keys=True) + "\n").encode(),
        )

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message})

    def _route(self) -> Tuple[str, ...]:
        path = self.path.split("?", 1)[0].split("#", 1)[0]
        return tuple(part for part in path.split("/") if part)

    # -- GET -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 -- http.server API
        try:
            self._get(self._route())
        except Exception as error:  # noqa: BLE001 -- one request, not the server
            self._send_error_json(
                500, f"{type(error).__name__}: {error}"
            )

    def _get(self, route: Tuple[str, ...]) -> None:
        service = self.server.service
        if route == ():
            self._send(
                200, "text/html; charset=utf-8",
                service.index_page().encode(),
            )
        elif route == ("healthz",):
            self._send_json(200, service.healthz())
        elif route == ("queue",):
            self._send_json(200, service.queue_snapshot())
        elif route == ("recipes",):
            self._send_json(200, {
                name: recipe.to_manifest()
                for name, recipe in all_recipes().items()
            })
        elif route == ("runs",):
            self._send_json(200, service.submissions.list_runs())
        elif len(route) == 2 and route[0] == "runs":
            try:
                self._send_json(200, service.submissions.get_run(route[1]))
            except RunNotFound:
                self._send_error_json(404, f"no such run: {route[1]}")
        elif len(route) > 2 and route[0] == "runs":
            self._get_artifact(route[1], "/".join(route[2:]))
        else:
            self._send_error_json(404, f"no such resource: /{'/'.join(route)}")

    def _get_artifact(self, run_id: str, relative: str) -> None:
        service = self.server.service
        try:
            path = service.artifact_path(run_id, relative)
        except RunNotFound:
            self._send_error_json(404, f"no such run: {run_id}")
            return
        if path is None:
            self._send_error_json(
                404, f"no such artifact in {run_id}: {relative}"
            )
            return
        # One read; the artifact was published by atomic rename, so
        # this is a complete file even mid-sweep.
        payload = path.read_bytes()
        self._send(200, _CONTENT_TYPES[path.suffix], payload)

    # -- POST ----------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 -- http.server API
        route = self._route()
        if route not in (("runs",), ("submit",)):
            self._send_error_json(
                404, "POST a submission to /runs (or /submit)"
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = -1
        if not 0 < length <= _MAX_BODY:
            self._send_error_json(
                400, f"submission body must be 1..{_MAX_BODY} bytes"
            )
            return
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._send_error_json(400, f"submission is not JSON: {error}")
            return
        try:
            record = self.server.service.submit_manifest(body)
        except RecipeError as error:
            self._send_error_json(400, str(error))
            return
        except Exception as error:  # noqa: BLE001 -- one request, not the server
            self._send_error_json(500, f"{type(error).__name__}: {error}")
            return
        run_id = record["id"]
        self._send_json(202, {
            "run": record,
            "url": f"/runs/{run_id}",
            "report_url": f"/runs/{run_id}/report.html",
        })
