"""Sweep submissions: the service's write path.

A POST to the experiment service lands here as a
:class:`~repro.experiments.recipes.Recipe` (already validated by the
manifest loader).  The :class:`SubmissionManager` assigns it a run id,
persists a **run record** (``run.json``) under the service state tree,
and executes the sweep on a background thread through
:func:`repro.experiments.sweep.run_recipe_sweep` -- the exact engine
behind ``runner recipe run`` -- so the artifact tree a run serves is
byte-identical (modulo ``meta.provenance``) to the CLI's.

State lives on disk, not in the process::

    <cache>/service/runs/<id>/run.json      the run record (atomic JSON)
    <cache>/service/runs/<id>/artifacts/    seed*/<experiment>.json,
                                            report.html

so a restarted service lists every historical run, and concurrent HTTP
readers never see a torn record (every ``run.json`` rewrite goes
through :func:`~repro.experiments.render.atomic_write_text`).

Each submission gets its **own** :class:`ResultCache` instance and
backend over the shared cache directory: per-entry provenance counters
on the cache object are per-run that way, and no mutable state is
shared between sweep threads.  Results still flow through the one
on-disk cache, so concurrent runs of overlapping grids share work.
"""

from __future__ import annotations

import json
import re
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.experiments.recipes import Recipe, RecipeError
from repro.experiments.render import atomic_write_text
from repro.experiments.sweep import run_recipe_sweep
from repro.orchestration import (
    OrchestrationContext,
    ResultCache,
    create_backend,
    default_queue_dir,
)
from repro.orchestration.backends import DEFAULT_LEASE_TIMEOUT

__all__ = [
    "RUN_RECORD_FORMAT",
    "RunNotFound",
    "SubmissionManager",
    "service_dir",
    "service_runs_dir",
]

#: Bumped when the run.json shape changes.  Format 2 added the live
#: ``cells_done`` / ``cells_total`` progress counters.
RUN_RECORD_FORMAT = 2

#: Characters allowed in the recipe-name half of a run id.
_ID_SAFE = re.compile(r"[^a-zA-Z0-9._-]+")

#: Run ids look like ``0007-report-smoke``.
_RUN_ID = re.compile(r"^\d{4}-[a-zA-Z0-9._-]{1,48}$")


class RunNotFound(KeyError):
    """No run record under the requested id."""


def service_dir(cache_dir: Path) -> Path:
    """Service state root inside a cache directory.

    ``service`` is 7 characters, so (like ``queue``) it can never be
    mistaken for a 2-character cache shard.
    """
    return Path(cache_dir) / "service"


def service_runs_dir(cache_dir: Path) -> Path:
    return service_dir(cache_dir) / "runs"


class SubmissionManager:
    """Accepts recipe sweeps and runs them on background threads.

    ``max_concurrent`` bounds simultaneously *executing* sweeps;
    excess submissions sit in state ``queued`` until a slot frees
    (enforced by a semaphore, FIFO-ish by thread wakeup order).
    ``participate`` mirrors the CLI's queue-backend default: a
    participating submitter claims tasks itself while it waits, so a
    laptop service is useful with zero external workers; the fleet
    deployment passes ``participate=False`` and lets ``runner
    worker`` processes drain the queue.
    """

    def __init__(
        self,
        cache_dir: Path,
        *,
        max_concurrent: int = 4,
        participate: bool = False,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        log=None,
    ) -> None:
        self.cache_dir = Path(cache_dir)
        self.runs_dir = service_runs_dir(self.cache_dir)
        self.participate = participate
        self.lease_timeout = lease_timeout
        self.log = log or (lambda message: None)
        self._lock = threading.Lock()
        self._slots = threading.Semaphore(max(1, int(max_concurrent)))
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Run records
    # ------------------------------------------------------------------

    def _record_path(self, run_id: str) -> Path:
        return self.runs_dir / run_id / "run.json"

    def artifacts_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id / "artifacts"

    def _write_record(self, record: Dict[str, Any]) -> None:
        atomic_write_text(
            self._record_path(record["id"]),
            json.dumps(record, indent=2, sort_keys=True) + "\n",
        )

    def get_run(self, run_id: str) -> Dict[str, Any]:
        """The on-disk run record, the single source of truth."""
        if not _RUN_ID.match(run_id):
            raise RunNotFound(run_id)
        try:
            return json.loads(self._record_path(run_id).read_text())
        except FileNotFoundError:
            raise RunNotFound(run_id)
        except (OSError, json.JSONDecodeError) as error:
            raise RunNotFound(f"{run_id}: unreadable run record: {error}")

    def list_runs(self) -> List[Dict[str, Any]]:
        """Every readable run record, newest id first.

        Scanned from disk so a restarted service still lists the runs
        its predecessor executed.  Records mid-rename or from a future
        format are skipped rather than failing the listing.
        """
        records = []
        try:
            names = sorted(
                entry.name for entry in self.runs_dir.iterdir()
                if _RUN_ID.match(entry.name)
            )
        except FileNotFoundError:
            return []
        for name in reversed(names):
            try:
                records.append(self.get_run(name))
            except RunNotFound:
                continue
        return records

    def _allocate_run_id(self, recipe_name: str) -> str:
        """``NNNN-<name>``: monotonic, human-sortable, collision-free.

        The directory mkdir is the allocation: it is exclusive, so two
        racing submissions can never share an id even though the scan
        below races.
        """
        slug = _ID_SAFE.sub("-", recipe_name).strip("-")[:48] or "recipe"
        with self._lock:
            self.runs_dir.mkdir(parents=True, exist_ok=True)
            taken = [
                int(entry.name[:4])
                for entry in self.runs_dir.iterdir()
                if _RUN_ID.match(entry.name)
            ]
            number = max(taken, default=0) + 1
            while True:
                run_id = f"{number:04d}-{slug}"
                try:
                    (self.runs_dir / run_id).mkdir()
                except FileExistsError:
                    number += 1
                    continue
                return run_id

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, recipe: Recipe, *, smoke: bool = False) -> Dict[str, Any]:
        """Accept one sweep; returns its run record (state ``queued``).

        Raises :class:`~repro.experiments.recipes.RecipeError` for a
        recipe naming unknown experiments -- the service rejects those
        with a 400 instead of leaving a doomed run behind.
        """
        recipe.validate_experiments()
        run_id = self._allocate_run_id(recipe.name)
        record = {
            "format": RUN_RECORD_FORMAT,
            "id": run_id,
            "recipe": recipe.to_manifest(),
            "smoke": bool(smoke),
            "state": "queued",
            "submitted_at": time.time(),
            "started_at": None,
            "finished_at": None,
            "error": None,
            "failed_cells": [],
            "cells_done": 0,
            "cells_total": None,
            "artifacts": [],
            "report": None,
        }
        self._write_record(record)
        # The caller gets a snapshot: the sweep thread mutates (and
        # re-persists) the live record from the moment it starts.
        snapshot = json.loads(json.dumps(record))
        thread = threading.Thread(
            target=self._execute,
            args=(record, recipe, bool(smoke)),
            name=f"sweep-{run_id}",
            daemon=True,
        )
        with self._lock:
            self._threads.append(thread)
        thread.start()
        self.log(f"accepted {run_id}: recipe {recipe.name} "
                 f"v{recipe.version}{' (smoke)' if smoke else ''}")
        return snapshot

    def _execute(
        self, record: Dict[str, Any], recipe: Recipe, smoke: bool
    ) -> None:
        run_id = record["id"]
        out_dir = self.artifacts_dir(run_id)
        with self._slots:
            record["state"] = "running"
            record["started_at"] = time.time()
            self._write_record(record)
            self.log(f"running {run_id}")
            try:
                # Fresh cache + backend per run: per-entry provenance
                # counters stay per-run, and nothing mutable is shared
                # across sweep threads.  The *directory* is shared --
                # that is the whole point.
                cache = ResultCache(self.cache_dir)
                backend = create_backend(
                    "queue",
                    queue_dir=default_queue_dir(cache.directory),
                    participate=self.participate,
                    lease_timeout=self.lease_timeout,
                )
                orch = OrchestrationContext(cache=cache, backend=backend)

                def progress(cells_done: int, cells_total: int) -> None:
                    # Re-persisted after every finished cell, so a
                    # polling GET /runs/<id> watches the sweep advance
                    # instead of staring at state "running".
                    record["cells_done"] = cells_done
                    record["cells_total"] = cells_total
                    self._write_record(record)

                with orch:
                    outcome = run_recipe_sweep(
                        recipe, orch, out_dir,
                        smoke=smoke,
                        report=True,
                        log=lambda message: self.log(f"[{run_id}] {message}"),
                        progress=progress,
                    )
            except Exception as error:  # noqa: BLE001 -- run record is the report
                record["state"] = "failed"
                record["error"] = (
                    f"{type(error).__name__}: {error}\n"
                    + traceback.format_exc()
                )
                record["finished_at"] = time.time()
                self._write_record(record)
                self.log(f"failed {run_id}: {type(error).__name__}: {error}")
                return
            record["failed_cells"] = list(outcome.failed_cells)
            record["artifacts"] = sorted(
                str(path.relative_to(out_dir)) for path in outcome.artifacts
            )
            if outcome.report_path is not None:
                record["report"] = str(
                    outcome.report_path.relative_to(out_dir)
                )
            if outcome.report_error is not None:
                record["error"] = (
                    f"report aggregation failed: {outcome.report_error}"
                )
            record["state"] = "failed" if outcome.failed_cells else "done"
            record["finished_at"] = time.time()
            self._write_record(record)
            self.log(
                f"{record['state']} {run_id}: "
                f"{len(record['artifacts'])} artifacts"
                + (f", {len(outcome.failed_cells)} failed cells"
                   if outcome.failed_cells else "")
            )

    # ------------------------------------------------------------------

    def active_count(self) -> int:
        with self._lock:
            self._threads = [t for t in self._threads if t.is_alive()]
            return len(self._threads)

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted sweep finished (tests, shutdown)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            threads = list(self._threads)
        for thread in threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
            if thread.is_alive():
                return False
        return True
