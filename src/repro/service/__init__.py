"""The experiment service: sweeps over HTTP, results from the cache.

``runner serve <cache-dir>`` wraps the existing queue + cache substrate
in a long-lived stdlib HTTP front end: POST a recipe manifest to start
a sweep, watch it through ``/queue`` and ``/healthz``, and GET the
artifacts and ``report.html`` the moment they are published.  See
ORCHESTRATION.md ("Running the service").
"""

from repro.service.app import (
    ExperimentHTTPServer,
    ExperimentService,
    ServiceHandler,
)
from repro.service.submissions import (
    RUN_RECORD_FORMAT,
    RunNotFound,
    SubmissionManager,
    service_dir,
    service_runs_dir,
)

__all__ = [
    "RUN_RECORD_FORMAT",
    "ExperimentHTTPServer",
    "ExperimentService",
    "RunNotFound",
    "ServiceHandler",
    "SubmissionManager",
    "service_dir",
    "service_runs_dir",
]
