"""The service landing page: every published run, one HTML table.

Pure string assembly over the run records and a ``queue_status``
snapshot -- no templating dependency, same stylesheet as the report
pipeline, self-contained like every other HTML artifact in this repo.
"""

from __future__ import annotations

from html import escape
from typing import Any, Dict, List, Mapping

from repro.experiments.report import REPORT_CSS

__all__ = ["build_index"]

_INDEX_CSS = REPORT_CSS + """
table.result td, table.result th { padding-right: 18px; }
.state { font-weight: 600; }
.state-done { color: #1d6b2f; }
.state-running { color: #1c5cab; }
.state-queued { color: #52514e; }
.state-failed { color: #9d3c00; }
code { font: 12.5px ui-monospace, monospace; }
"""


def _age(seconds: float) -> str:
    if seconds < 90:
        return f"{seconds:.0f}s"
    if seconds < 5400:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def _run_row(record: Mapping[str, Any], now: float) -> str:
    run_id = escape(str(record.get("id", "?")))
    recipe = record.get("recipe") or {}
    state = str(record.get("state", "?"))
    submitted = record.get("submitted_at")
    age = (
        _age(max(0.0, now - submitted))
        if isinstance(submitted, (int, float)) else "?"
    )
    report = record.get("report")
    report_cell = (
        f'<a href="/runs/{run_id}/{escape(str(report))}">report</a>'
        if report else "&mdash;"
    )
    failed = len(record.get("failed_cells") or ())
    detail = f"{len(record.get('artifacts') or ())} artifacts"
    if failed:
        detail += f", {failed} failed cells"
    return (
        "<tr>"
        f'<td><a href="/runs/{run_id}"><code>{run_id}</code></a></td>'
        f"<td>{escape(str(recipe.get('name', '?')))} "
        f"v{escape(str(recipe.get('version', '?')))}"
        f"{' (smoke)' if record.get('smoke') else ''}</td>"
        f'<td class="state state-{escape(state)}">{escape(state)}</td>'
        f"<td>{age} ago</td>"
        f"<td>{report_cell}</td>"
        f"<td>{escape(detail)}</td>"
        "</tr>"
    )


def build_index(
    runs: List[Dict[str, Any]],
    queue: Mapping[str, Any],
    recipes: Mapping[str, Any],
    *,
    now: float,
) -> str:
    """The ``GET /`` page over ``list_runs()`` + a queue snapshot."""
    tasks = queue.get("tasks", {})
    workers = queue.get("workers", ())
    live = sum(1 for worker in workers if worker.get("status") == "live")
    cards = "".join(
        f'<div class="card"><div class="value">{escape(str(value))}</div>'
        f'<div class="label">{escape(label)}</div></div>'
        for label, value in (
            ("pending tasks", tasks.get("pending", "?")),
            ("leased", tasks.get("leased", "?")),
            ("failed", tasks.get("failed", "?")),
            ("results cached", tasks.get("results_cached", "?")),
            ("live workers", live),
            ("stale workers", len(workers) - live),
        )
    )
    if runs:
        rows = "\n".join(_run_row(record, now) for record in runs)
        runs_html = (
            '<table class="result">'
            "<tr><th>run</th><th>recipe</th><th>state</th>"
            "<th>submitted</th><th>report</th><th></th></tr>"
            f"{rows}</table>"
        )
    else:
        runs_html = (
            "<p>No runs yet.  Submit one:</p>"
            '<pre class="note">curl -X POST http://HOST:PORT/runs '
            "-d '{\"recipe\": \"report-smoke\", \"smoke\": true}'</pre>"
        )
    recipe_rows = "\n".join(
        "<tr>"
        f"<td><code>{escape(name)}</code></td>"
        f"<td>v{escape(str(manifest.get('version', '?')))}</td>"
        f"<td>{escape(', '.join(manifest.get('experiments', ())))}</td>"
        f"<td>{escape(str(len(manifest.get('seeds', ()))))}</td>"
        f"<td>{escape(str(manifest.get('description', '')))}</td>"
        "</tr>"
        for name, manifest in sorted(recipes.items())
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro experiment service</title>
<style>{_INDEX_CSS}</style>
</head>
<body>
<main>
<header class="page">
<h1>repro experiment service</h1>
<p class="sub">cache <code>{escape(str(queue.get("cache_dir", "?")))}</code>
&middot; queue <code>{escape(str(queue.get("queue_dir", "?")))}</code>
&middot; <a href="/queue">queue JSON</a>
&middot; <a href="/healthz">healthz</a>
&middot; <a href="/runs">runs JSON</a>
&middot; <a href="/recipes">recipes JSON</a></p>
</header>
<div class="cards">{cards}</div>
<section class="experiment">
<h2>Runs</h2>
{runs_html}
</section>
<section class="experiment">
<h2>Recipes</h2>
<table class="result">
<tr><th>name</th><th>ver</th><th>experiments</th><th>seeds</th>
<th>description</th></tr>
{recipe_rows}
</table>
<p>POST <code>{{"recipe": NAME}}</code> (or a full manifest JSON) to
<code>/runs</code> to start a sweep; add <code>"smoke": true</code>
for the reduced grid.</p>
</section>
<footer>repro experiment service &middot; generated page, state lives
on disk</footer>
</main>
</body>
</html>
"""
