"""Per-feature HC_first prediction and F1 scoring (Fig 9, Table 3).

Each binary spatial feature is used on its own to predict a row's
measured HC_first among the tested hammer counts: the predictor maps
each feature value (0 or 1) to the majority HC_first class among rows
with that value.  Predictions are compared against the measurements to
build a confusion matrix and a (support-weighted) F1 score.  A
feature is considered strongly correlated when its F1 exceeds the
paper's empirically chosen 0.7 threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.features import SpatialFeature

#: Table 3's threshold for a "strong" correlation.
STRONG_F1_THRESHOLD = 0.7


def confusion_matrix(
    actual: np.ndarray, predicted: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Confusion matrix over the union of observed classes.

    Returns ``(classes, matrix)`` with ``matrix[i, j]`` counting
    samples of actual class ``classes[i]`` predicted as ``classes[j]``.
    """
    actual = np.asarray(actual)
    predicted = np.asarray(predicted)
    if actual.shape != predicted.shape:
        raise ValueError("actual/predicted shapes differ")
    classes = np.unique(np.concatenate([actual, predicted]))
    index = {c: i for i, c in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for a, p in zip(actual, predicted):
        matrix[index[a], index[p]] += 1
    return classes, matrix


def f1_score_weighted(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Support-weighted mean of per-class F1 scores."""
    classes, matrix = confusion_matrix(actual, predicted)
    total = matrix.sum()
    if total == 0:
        raise ValueError("no samples")
    score = 0.0
    for i, _ in enumerate(classes):
        tp = matrix[i, i]
        fp = matrix[:, i].sum() - tp
        fn = matrix[i, :].sum() - tp
        support = matrix[i, :].sum()
        if tp == 0:
            f1 = 0.0
        else:
            precision = tp / (tp + fp)
            recall = tp / (tp + fn)
            f1 = 2 * precision * recall / (precision + recall)
        score += f1 * (support / total)
    return float(score)


@dataclass(frozen=True)
class FeatureCorrelation:
    """One feature's predictive power for HC_first."""

    feature: SpatialFeature
    f1: float

    @property
    def is_strong(self) -> bool:
        return self.f1 > STRONG_F1_THRESHOLD


def predict_from_feature(
    feature_column: np.ndarray, measured: np.ndarray
) -> np.ndarray:
    """Majority-class prediction from a single binary feature."""
    feature_column = np.asarray(feature_column)
    measured = np.asarray(measured)
    predictions = np.empty_like(measured)
    for value in (0, 1):
        mask = feature_column == value
        if not mask.any():
            continue
        values, counts = np.unique(measured[mask], return_counts=True)
        predictions[mask] = values[np.argmax(counts)]
    return predictions


def binarize_measured(measured: np.ndarray) -> np.ndarray:
    """Split rows into weak (1) / strong (0) halves at the median.

    The paper describes predicting HC_first "among 14 tested hammer
    counts" and reports F1 scores in the 0.5-0.8 range; a raw 14-class
    prediction from one binary feature cannot reach that range, so we
    interpret the scored quantity as the binarized weak/strong
    classification (below/above the module median), which reproduces
    the published score range.  The 14-class machinery remains
    available via :func:`predict_from_feature` + :func:`f1_score_weighted`.
    """
    measured = np.asarray(measured)
    values = np.unique(measured)
    best_threshold = None
    best_imbalance = 1.0
    for threshold in values[:-1]:
        p = float(np.mean(measured <= threshold))
        if abs(p - 0.5) < best_imbalance:
            best_threshold, best_imbalance = threshold, abs(p - 0.5)
    if best_threshold is None:
        # Degenerate: every row measured identical; no weak half exists.
        return np.zeros(len(measured), dtype=np.int8)
    return (measured <= best_threshold).astype(np.int8)


def f1_micro(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Micro-averaged F1, which for single-label data equals accuracy."""
    actual = np.asarray(actual)
    predicted = np.asarray(predicted)
    if actual.shape != predicted.shape:
        raise ValueError("actual/predicted shapes differ")
    if actual.size == 0:
        raise ValueError("no samples")
    return float(np.mean(actual == predicted))


def f1_macro(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores.

    This is the Fig 9 scorer: unlike accuracy it is not inflated by an
    imbalanced class split (a trivial majority-class predictor scores
    at most ~0.46), so a feature only crosses the paper's 0.7
    threshold with genuine predictive skill on *both* classes.
    """
    classes, matrix = confusion_matrix(actual, predicted)
    total = matrix.sum()
    if total == 0:
        raise ValueError("no samples")
    scores = []
    for i, _ in enumerate(classes):
        tp = matrix[i, i]
        fp = matrix[:, i].sum() - tp
        fn = matrix[i, :].sum() - tp
        if tp == 0:
            scores.append(0.0)
        else:
            precision = tp / (tp + fp)
            recall = tp / (tp + fn)
            scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores))


def correlate_features(
    features: Sequence[SpatialFeature],
    matrix: np.ndarray,
    measured: np.ndarray,
    *,
    binarize: bool = True,
) -> List[FeatureCorrelation]:
    """F1 score of every feature against measured HC_first.

    With ``binarize=True`` (the Fig 9 / Table 3 configuration) the
    target is the weak/strong median split and the score is micro-F1;
    with ``binarize=False`` the full 14-class target is predicted and
    scored with support-weighted F1.
    """
    matrix = np.asarray(matrix)
    measured = np.asarray(measured)
    if matrix.shape[0] != len(measured):
        raise ValueError("feature matrix and measurements must align")
    if matrix.shape[1] != len(features):
        raise ValueError("feature matrix and feature list must align")
    target = binarize_measured(measured) if binarize else measured
    scorer = f1_macro if binarize else f1_score_weighted
    if len(np.unique(target)) < 2:
        # No variation to predict: no feature can demonstrate skill.
        return [FeatureCorrelation(feature=f, f1=0.5) for f in features]
    results = []
    for column, feature in enumerate(features):
        predicted = predict_from_feature(matrix[:, column], target)
        results.append(
            FeatureCorrelation(feature=feature, f1=scorer(target, predicted))
        )
    return results


def fraction_above_threshold(
    correlations: Sequence[FeatureCorrelation], thresholds: Sequence[float]
) -> Dict[float, float]:
    """Fig 9's curve: fraction of features with F1 above each threshold."""
    if not correlations:
        raise ValueError("no correlations given")
    f1s = np.array([c.f1 for c in correlations])
    return {
        float(t): float(np.mean(f1s > t)) for t in thresholds
    }


def strong_features(
    correlations: Sequence[FeatureCorrelation],
    threshold: float = STRONG_F1_THRESHOLD,
) -> List[FeatureCorrelation]:
    """Table 3's rows: features whose F1 exceeds the threshold."""
    return sorted(
        (c for c in correlations if c.f1 > threshold),
        key=lambda c: (-c.f1, c.feature),
    )
