"""One-dimensional k-means and silhouette scoring.

The paper clusters DRAM rows into subarrays with k-means (Hartigan &
Wong) and picks k by sweeping it and maximizing the silhouette score
(Rousseeuw).  The clustered feature is one-dimensional, so we provide
a deterministic 1-D Lloyd's-algorithm k-means and an exact silhouette
implementation with optional subsampling for large inputs.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np


def kmeans_1d(
    values: np.ndarray, k: int, *, max_iterations: int = 100
) -> Tuple[np.ndarray, np.ndarray]:
    """Cluster 1-D data into ``k`` clusters.

    Returns ``(labels, centroids)``.  Initialization uses evenly spaced
    quantiles, which makes the procedure deterministic; for sorted 1-D
    data Lloyd's algorithm then converges to contiguous clusters.
    """
    data = np.asarray(values, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError("kmeans_1d expects 1-D data")
    if not 1 <= k <= len(data):
        raise ValueError(f"k={k} out of range for {len(data)} points")

    quantiles = (np.arange(k) + 0.5) / k
    unique = np.unique(data)
    if len(unique) >= k:
        # Spreading the initial centroids over distinct values keeps
        # small clusters (e.g. a short trailing subarray) from being
        # swallowed by quantile mass.
        centroids = np.quantile(unique, quantiles)
    else:
        centroids = np.quantile(data, quantiles)
    labels = np.zeros(len(data), dtype=np.int64)
    for _ in range(max_iterations):
        distances = np.abs(data[:, None] - centroids[None, :])
        new_labels = np.argmin(distances, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for cluster in range(k):
            members = data[labels == cluster]
            if len(members):
                centroids[cluster] = members.mean()
    return labels, centroids


def silhouette_score_1d(
    values: np.ndarray,
    labels: np.ndarray,
    *,
    max_points: int = 2000,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient of a 1-D clustering.

    ``s(i) = (b(i) - a(i)) / max(a(i), b(i))`` with ``a`` the mean
    intra-cluster distance and ``b`` the smallest mean distance to
    another cluster.  Inputs larger than ``max_points`` are subsampled
    (deterministically) to bound the quadratic cost.
    """
    data = np.asarray(values, dtype=np.float64)
    lab = np.asarray(labels)
    if data.shape != lab.shape:
        raise ValueError("values and labels must align")
    unique = np.unique(lab)
    if len(unique) < 2:
        raise ValueError("silhouette needs at least two clusters")
    if len(data) > max_points:
        rng = np.random.default_rng(seed)
        index = rng.choice(len(data), size=max_points, replace=False)
        # Subsampling must keep at least one point per cluster.
        missing = np.setdiff1d(unique, np.unique(lab[index]))
        if len(missing):
            extras = [np.where(lab == c)[0][0] for c in missing]
            index = np.concatenate([index, extras])
        data, lab = data[index], lab[index]

    distance = np.abs(data[:, None] - data[None, :])
    scores = np.zeros(len(data))
    cluster_masks = {c: lab == c for c in np.unique(lab)}
    for i in range(len(data)):
        own = cluster_masks[lab[i]]
        n_own = own.sum()
        if n_own <= 1:
            scores[i] = 0.0
            continue
        a = distance[i][own].sum() / (n_own - 1)
        b = np.inf
        for c, mask in cluster_masks.items():
            if c == lab[i]:
                continue
            b = min(b, distance[i][mask].mean())
        denominator = max(a, b)
        scores[i] = 0.0 if denominator == 0 else (b - a) / denominator
    return float(scores.mean())


def sweep_k(
    values: np.ndarray,
    k_values: Sequence[int],
    *,
    max_points: int = 2000,
    seed: int = 0,
) -> Dict[int, float]:
    """Silhouette score per candidate k (the Fig 8 sweep)."""
    results: Dict[int, float] = {}
    for k in k_values:
        labels, _ = kmeans_1d(values, k)
        populated = len(np.unique(labels))
        if populated < 2:
            results[k] = float("-inf")
            continue
        score = silhouette_score_1d(
            values, labels, max_points=max_points, seed=seed
        )
        # Asking for more clusters than the data supports leaves some
        # empty; penalize so the sweep decreases past the true count
        # (the Fig 8 shape).
        results[k] = score * (populated / k)
    return results


def best_k(scores: Dict[int, float]) -> int:
    """The k with the global maximum silhouette score."""
    if not scores:
        raise ValueError("no scores given")
    return max(scores, key=lambda k: (scores[k], -k))
