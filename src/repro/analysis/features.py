"""Spatial feature extraction (Section 5.4.2).

For every DRAM row, the paper takes each bit of four properties --
bank address, row address, subarray address, and the row's distance to
its local sense amplifiers -- as a binary spatial feature, and asks
how well each feature alone predicts the row's HC_first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np


@dataclass(frozen=True, order=True)
class SpatialFeature:
    """One binary feature: a bit of one of the four row properties."""

    kind: str  # "bank" | "row" | "subarray" | "distance"
    bit: int

    _KINDS = ("bank", "row", "subarray", "distance")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown feature kind {self.kind!r}")
        if self.bit < 0:
            raise ValueError("bit index must be non-negative")

    @property
    def short_name(self) -> str:
        prefix = {"bank": "Ba", "row": "Ro", "subarray": "Sa", "distance": "Dist"}
        return f"{prefix[self.kind]}[{self.bit}]"


def _bits_needed(max_value: int) -> int:
    return max(1, int(max_value).bit_length())


def extract_features(
    rows_per_bank: int,
    subarray_rows: int,
    banks: Tuple[int, ...],
) -> Tuple[List[SpatialFeature], np.ndarray, np.ndarray]:
    """Build the full feature matrix for the given banks.

    Returns ``(features, matrix, bank_of_sample)`` where ``matrix`` has
    one sample per (bank, row) and one binary column per feature, in
    the order of ``features``.  Samples are ordered bank-major, row
    within bank, matching how per-bank measured arrays concatenate.
    """
    if rows_per_bank < 1 or subarray_rows < 1 or not banks:
        raise ValueError("invalid geometry for feature extraction")
    rows = np.arange(rows_per_bank)
    subarray = rows // subarray_rows
    within = rows % subarray_rows
    distance = np.minimum(within, np.minimum(subarray_rows - 1 - within,
                                             rows_per_bank - 1 - rows))

    n_bank_bits = _bits_needed(max(banks))
    n_row_bits = _bits_needed(rows_per_bank - 1)
    n_subarray_bits = _bits_needed(int(subarray.max()))
    n_distance_bits = _bits_needed(int(distance.max()))

    features: List[SpatialFeature] = []
    features += [SpatialFeature("bank", b) for b in range(n_bank_bits)]
    features += [SpatialFeature("row", b) for b in range(n_row_bits)]
    features += [SpatialFeature("subarray", b) for b in range(n_subarray_bits)]
    features += [SpatialFeature("distance", b) for b in range(n_distance_bits)]

    per_bank_columns: Dict[str, np.ndarray] = {
        "row": rows,
        "subarray": subarray,
        "distance": distance,
    }

    blocks = []
    bank_of_sample = []
    for bank in banks:
        columns = []
        for feature in features:
            if feature.kind == "bank":
                values = np.full(rows_per_bank, (bank >> feature.bit) & 1)
            else:
                values = (per_bank_columns[feature.kind] >> feature.bit) & 1
            columns.append(values.astype(np.int8))
        blocks.append(np.stack(columns, axis=1))
        bank_of_sample.append(np.full(rows_per_bank, bank))
    matrix = np.concatenate(blocks, axis=0)
    return features, matrix, np.concatenate(bank_of_sample)
