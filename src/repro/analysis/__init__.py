"""Statistical analysis: clustering, spatial features, correlation.

* :mod:`repro.analysis.clustering` -- k-means (Lloyd's algorithm) and
  silhouette scoring used by the subarray reverse engineering (Fig 8).
* :mod:`repro.analysis.features` -- bit-level spatial feature
  extraction (bank/row/subarray address bits, distance to the sense
  amplifiers) per Section 5.4.
* :mod:`repro.analysis.correlation` -- per-feature HC_first
  prediction, confusion matrices, and F1 scores (Fig 9, Table 3).
"""

from repro.analysis.clustering import kmeans_1d, silhouette_score_1d, sweep_k
from repro.analysis.features import SpatialFeature, extract_features
from repro.analysis.correlation import (
    FeatureCorrelation,
    f1_score_weighted,
    f1_micro,
    binarize_measured,
    confusion_matrix,
    correlate_features,
    fraction_above_threshold,
    strong_features,
)

__all__ = [
    "kmeans_1d",
    "silhouette_score_1d",
    "sweep_k",
    "SpatialFeature",
    "extract_features",
    "FeatureCorrelation",
    "f1_score_weighted",
    "f1_micro",
    "binarize_measured",
    "confusion_matrix",
    "correlate_features",
    "fraction_above_threshold",
    "strong_features",
]
