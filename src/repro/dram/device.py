"""The assembled DRAM device model.

:class:`DramDevice` executes DDR4 command streams against per-bank
state machines and cell arrays, keeps a device clock, and forwards row
activation/closure events to an attached *disturbance observer* (the
read-disturbance fault model in :mod:`repro.faults`).  The observer
returns bit positions to corrupt, which the device applies to the cell
array -- bitflips therefore persist exactly like on a real chip: until
the row is rewritten.

The device also implements the two behaviours the paper's reverse
engineering relies on:

* rows only disturb physically adjacent rows *within their subarray*
  (sense-amplifier stripes isolate subarrays), and
* an ACT issued almost immediately after PRE performs an (unofficial)
  intra-subarray RowClone copy, as demonstrated by ComputeDRAM.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.dram.bank import Bank, BankState, RowClosure, TimingError
from repro.dram.cells import CellArray
from repro.dram.commands import Command, CommandKind
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import RowScrambler, ScramblingScheme
from repro.dram.timing import TimingParameters, DDR4_3200


class TimingViolation(TimingError):
    """Raised when a strict-mode command violates JEDEC timing."""


class DisturbanceObserver(Protocol):
    """Interface the fault model implements to receive device events.

    All row indices passed through this interface are *physical*.
    """

    def on_activate(self, bank: int, physical_row: int) -> None:
        """A row was opened (this restores the row's own cells)."""

    def on_closure(
        self, bank: int, physical_row: int, on_time_ns: float
    ) -> Mapping[int, np.ndarray]:
        """A row was closed after ``on_time_ns``; returns new bitflips.

        The mapping is victim physical row -> bit indices to flip now.
        """

    def on_refresh(self, bank: int, first_row: int, n_rows: int) -> None:
        """``n_rows`` physical rows starting at ``first_row`` refreshed."""

    def on_write(self, bank: int, physical_row: int) -> None:
        """A row's content was rewritten (restores full charge)."""


class NullObserver:
    """Observer that ignores everything (a disturbance-free chip)."""

    def on_activate(self, bank: int, physical_row: int) -> None:
        pass

    def on_closure(
        self, bank: int, physical_row: int, on_time_ns: float
    ) -> Mapping[int, np.ndarray]:
        return {}

    def on_refresh(self, bank: int, first_row: int, n_rows: int) -> None:
        pass

    def on_write(self, bank: int, physical_row: int) -> None:
        pass


#: DDR4 refreshes all rows with 8192 REF commands per refresh window.
REFS_PER_WINDOW = 8192

#: An ACT this soon after PRE (ns) attempts a RowClone copy.
ROWCLONE_MAX_GAP_NS = 3.0


@dataclass
class DramDevice:
    """Behavioural model of one rank of a DDR4 device.

    All public row parameters are *logical* (interface) addresses; the
    device translates through its :class:`RowScrambler` exactly like a
    real chip, so callers that ignore scrambling will hammer the wrong
    physical neighbours -- the effect the paper's methodology section
    warns about.
    """

    geometry: DramGeometry = field(default_factory=DramGeometry)
    timing: TimingParameters = field(default_factory=lambda: DDR4_3200)
    scrambler: Optional[RowScrambler] = None
    observer: DisturbanceObserver = field(default_factory=NullObserver)
    refresh_enabled: bool = True
    rowclone_success_rate: float = 0.9
    seed: int = 0

    clock_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.scrambler is None:
            self.scrambler = RowScrambler(
                rows_per_bank=self.geometry.rows_per_bank,
                scheme=ScramblingScheme.IDENTITY,
            )
        self._banks: Dict[int, Bank] = {
            b: Bank(timing=self.timing) for b in range(self.geometry.banks_per_rank)
        }
        self._cells: Dict[int, CellArray] = {}
        self._refresh_pointer = 0
        self._last_closed: Dict[int, Optional[int]] = {}
        self._last_pre_ns: Dict[int, float] = {}
        self._rng = random.Random(self.seed)
        self._rows_per_ref = max(1, self.geometry.rows_per_bank // REFS_PER_WINDOW)

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    def execute(self, commands: Sequence[Command], *, strict: bool = True) -> None:
        """Run a command stream at the maximum legal rate."""
        for command in commands:
            self.execute_one(command, strict=strict)

    def execute_one(self, command: Command, *, strict: bool = True) -> None:
        """Run one command, advancing the device clock."""
        kind = command.kind
        if kind is CommandKind.WAIT:
            self.clock_ns += command.wait_ns
            return
        if kind is CommandKind.ACT:
            self._do_act(command.bank, command.row, strict=strict)
            return
        if kind is CommandKind.PRE:
            self._do_pre(command.bank, strict=strict)
            return
        if kind is CommandKind.REF:
            self._do_ref()
            return
        if kind in (CommandKind.RD, CommandKind.WR):
            bank = self._banks[command.bank]
            issue = max(self.clock_ns, bank.last_act_ns + self.timing.tRCD)
            if strict:
                bank.check_column_access(issue)
            self.clock_ns = issue + self.timing.tCCD_L
            return
        raise AssertionError(f"unhandled command kind {kind}")

    def _do_act(self, bank_id: int, logical_row: int, *, strict: bool) -> None:
        bank = self._banks[bank_id]
        physical = self.scrambler.to_physical(logical_row)
        issue = bank.ready_for_act(self.clock_ns) if strict else self.clock_ns
        gap = issue - self._last_pre_ns.get(bank_id, -1e18)
        attempted_clone = (not strict) and gap <= ROWCLONE_MAX_GAP_NS
        bank.activate(issue, physical, strict=strict)
        self.clock_ns = issue
        if attempted_clone:
            self._try_rowclone(bank_id, physical)
        self.observer.on_activate(bank_id, physical)

    def _do_pre(self, bank_id: int, *, strict: bool) -> None:
        bank = self._banks[bank_id]
        issue = bank.ready_for_pre(self.clock_ns) if strict else self.clock_ns
        closure = bank.precharge(issue, strict=strict)
        self.clock_ns = issue
        self._last_pre_ns[bank_id] = issue
        if closure is not None:
            self._last_closed[bank_id] = closure.row
            flips = self.observer.on_closure(bank_id, closure.row, closure.on_time_ns)
            self._apply_flips(bank_id, flips)

    def _do_ref(self) -> None:
        """Rank-level refresh: the next chunk of rows in every bank."""
        if not self.refresh_enabled:
            return
        for bank_id, bank in self._banks.items():
            if bank.state is BankState.ACTIVE:
                raise TimingViolation("REF issued with an open row")
        first = self._refresh_pointer
        n = min(self._rows_per_ref, self.geometry.rows_per_bank - first)
        for bank_id in self._banks:
            self.observer.on_refresh(bank_id, first, n)
        self._refresh_pointer = (first + n) % self.geometry.rows_per_bank
        self.clock_ns += self.timing.tRFC

    def _try_rowclone(self, bank_id: int, dst_physical: int) -> None:
        src_physical = self._last_closed.get(bank_id)
        if src_physical is None or src_physical == dst_physical:
            return
        if not self.geometry.same_subarray(src_physical, dst_physical):
            return
        if self._rng.random() < self.rowclone_success_rate:
            self.cells(bank_id).copy_row(src_physical, dst_physical)
            self.observer.on_write(bank_id, dst_physical)

    # ------------------------------------------------------------------
    # Bulk helpers (semantically equal to command streams, but fast)
    # ------------------------------------------------------------------

    def hammer(
        self,
        bank_id: int,
        aggressor_rows: Sequence[int],
        count: int,
        t_agg_on_ns: Optional[float] = None,
    ) -> None:
        """Interleave ``count`` ACT/PRE pairs to each aggressor row.

        Equivalent to ``count`` iterations of
        ``[ACT(a), WAIT(tAggOn), PRE, WAIT(tRP)]`` per aggressor (the
        paper's ``hammer_doublesided`` when two aggressors are given),
        but executed in one call so full-bank sweeps stay tractable.
        """
        if count < 0:
            raise ValueError("hammer count must be non-negative")
        if count == 0 or not aggressor_rows:
            return
        t_on = self.timing.tRAS if t_agg_on_ns is None else max(
            t_agg_on_ns, self.timing.tRAS
        )
        bank = self._banks[bank_id]
        if bank.state is BankState.ACTIVE:
            raise TimingViolation("hammer on a bank with an open row")
        physical = [self.scrambler.to_physical(r) for r in aggressor_rows]
        # Interleaved hammering restores every aggressor each iteration,
        # so aggressors never accumulate exposure from each other; the
        # bulk closure hook needs to know which rows those are.
        restored = frozenset(physical)
        all_flips: Dict[int, List[np.ndarray]] = {}
        for phys in physical:
            self.observer.on_activate(bank_id, phys)
            flips = self._observer_bulk_closure(
                bank_id, phys, t_on, count, restored
            )
            for victim, bits in flips.items():
                all_flips.setdefault(victim, []).append(bits)
        merged = {
            victim: np.unique(np.concatenate(parts))
            for victim, parts in all_flips.items()
        }
        self._apply_flips(bank_id, merged)
        # Interleaved hammering re-activates (and thus restores) every
        # aggressor on each iteration; reflect the final restoration.
        for phys in physical:
            self.observer.on_activate(bank_id, phys)
        per_pair = t_on + self.timing.tRP
        self.clock_ns += count * len(physical) * per_pair
        bank.activation_count += count * len(physical)
        bank.last_pre_ns = self.clock_ns
        self._last_pre_ns[bank_id] = self.clock_ns
        self._last_closed[bank_id] = physical[-1]

    def _observer_bulk_closure(
        self,
        bank_id: int,
        physical_row: int,
        t_on: float,
        count: int,
        restored: frozenset,
    ) -> Mapping[int, np.ndarray]:
        bulk = getattr(self.observer, "on_bulk_closures", None)
        if bulk is not None:
            return bulk(bank_id, physical_row, t_on, count, restored=restored)
        merged: Dict[int, List[np.ndarray]] = {}
        for _ in range(count):
            self.observer.on_activate(bank_id, physical_row)
            for victim, bits in self.observer.on_closure(
                bank_id, physical_row, t_on
            ).items():
                merged.setdefault(victim, []).append(bits)
        return {
            victim: np.unique(np.concatenate(parts))
            for victim, parts in merged.items()
        }

    def write_row(self, bank_id: int, logical_row: int, fill: int | bytes | np.ndarray) -> None:
        """Initialize a full row (ACT + column writes + PRE, bulk)."""
        physical = self.scrambler.to_physical(logical_row)
        self.cells(bank_id).write_row(physical, fill)
        self.observer.on_write(bank_id, physical)
        per_write = self.timing.tCCD_L
        self.clock_ns += (
            self.timing.tRCD
            + self.geometry.columns_per_row * per_write
            + self.timing.tRP
        )

    def read_row(self, bank_id: int, logical_row: int) -> np.ndarray:
        """Read a full row back (ACT + column reads + PRE, bulk)."""
        physical = self.scrambler.to_physical(logical_row)
        data = self.cells(bank_id).read_row(physical)
        self.clock_ns += (
            self.timing.tRCD
            + self.geometry.columns_per_row * self.timing.tCCD_L
            + self.timing.tRP
        )
        return data

    def refresh_all_rows(self) -> None:
        """Issue a full refresh window's worth of REF commands."""
        for _ in range(-(-self.geometry.rows_per_bank // self._rows_per_ref)):
            self._do_ref()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def cells(self, bank_id: int) -> CellArray:
        """The (lazily created) cell array of one bank."""
        if bank_id not in self._banks:
            raise ValueError(f"bank {bank_id} out of range")
        if bank_id not in self._cells:
            self._cells[bank_id] = CellArray(
                rows_per_bank=self.geometry.rows_per_bank,
                row_bytes=self.geometry.row_bytes,
            )
        return self._cells[bank_id]

    def bank(self, bank_id: int) -> Bank:
        return self._banks[bank_id]

    def activation_count(self, bank_id: int) -> int:
        return self._banks[bank_id].activation_count

    def _apply_flips(self, bank_id: int, flips: Mapping[int, np.ndarray]) -> None:
        if not flips:
            return
        cells = self.cells(bank_id)
        for victim, bits in flips.items():
            cells.flip_bits(victim, np.asarray(bits))
