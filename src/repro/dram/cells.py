"""Cell-array storage.

Rows are materialized lazily: the characterization tests only ever
touch a victim row and its two aggressors at a time, so storing every
row of a 128K-row bank would be pure waste.  A row that was never
written reads back as the bank's background fill byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class CellArray:
    """Lazily materialized storage for one bank's rows."""

    rows_per_bank: int
    row_bytes: int
    background: int = 0x00
    _rows: Dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def write_row(self, row: int, data: np.ndarray | bytes | int) -> None:
        """Store a full row.

        ``data`` may be a byte value (uniform fill, the common case for
        the paper's data patterns), a ``bytes`` object, or a uint8
        array of exactly ``row_bytes`` entries.
        """
        self._check(row)
        if isinstance(data, int):
            if not 0 <= data <= 0xFF:
                raise ValueError(f"fill byte {data:#x} out of range")
            arr = np.full(self.row_bytes, data, dtype=np.uint8)
        elif isinstance(data, bytes):
            if len(data) != self.row_bytes:
                raise ValueError(
                    f"row data is {len(data)} bytes, expected {self.row_bytes}"
                )
            arr = np.frombuffer(data, dtype=np.uint8).copy()
        else:
            arr = np.asarray(data, dtype=np.uint8)
            if arr.shape != (self.row_bytes,):
                raise ValueError(
                    f"row data shape {arr.shape}, expected ({self.row_bytes},)"
                )
            arr = arr.copy()
        self._rows[row] = arr

    def read_row(self, row: int) -> np.ndarray:
        """Read a full row (a copy; mutations do not write back)."""
        self._check(row)
        stored = self._rows.get(row)
        if stored is None:
            return np.full(self.row_bytes, self.background, dtype=np.uint8)
        return stored.copy()

    def write_column(self, row: int, column: int, value: np.ndarray) -> None:
        """Write one column (a ``len(value)``-byte slice) of a row."""
        self._check(row)
        if row not in self._rows:
            self._rows[row] = np.full(self.row_bytes, self.background, dtype=np.uint8)
        start = column * len(value)
        if start + len(value) > self.row_bytes:
            raise ValueError(f"column {column} out of range")
        self._rows[row][start : start + len(value)] = value

    def flip_bits(self, row: int, bit_indices: np.ndarray) -> None:
        """Flip the given bit positions of a row in place.

        This is the entry point the read-disturbance fault model uses to
        corrupt a victim row.
        """
        self._check(row)
        if len(bit_indices) == 0:
            return
        if row not in self._rows:
            self._rows[row] = np.full(self.row_bytes, self.background, dtype=np.uint8)
        data = self._rows[row]
        byte_idx = np.asarray(bit_indices) // 8
        bit_in_byte = np.asarray(bit_indices) % 8
        # A bit may legitimately be listed once only; group by byte.
        np.bitwise_xor.at(data, byte_idx, (1 << bit_in_byte).astype(np.uint8))

    def row_is_materialized(self, row: int) -> bool:
        return row in self._rows

    @property
    def materialized_rows(self) -> int:
        return len(self._rows)

    def copy_row(self, src: int, dst: int) -> None:
        """Copy ``src`` into ``dst`` (RowClone / migration primitive)."""
        self._check(src)
        self._check(dst)
        self._rows[dst] = self.read_row(src)

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range [0, {self.rows_per_bank})")


def count_mismatched_bits(observed: np.ndarray, expected: np.ndarray) -> int:
    """Number of bit positions where two rows differ (BER numerator)."""
    if observed.shape != expected.shape:
        raise ValueError("row shapes differ")
    diff = np.bitwise_xor(observed, expected)
    return int(np.unpackbits(diff).sum())
