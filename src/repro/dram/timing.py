"""JEDEC timing parameters as declarative device-generation tables.

All values are stored in nanoseconds.  Timing sets are *data*: each
device generation (DDR4, LPDDR4, DDR5) is a table of named timing
parameters plus the generation-specific structure the simulator and
the conformance checker consume -- bank-group presence, refresh
granularity, and the generation's JEDEC rulebook (as
:class:`RuleSpec` rows, resolved against the parameter table by
:func:`repro.sim.conformance.timing_rules`).

The DDR4 presets correspond to the speed grades of the modules in the
paper's Table 5 (DDR4-3200, -2933, -2666, and -2400) and follow
JESD79-4C; where a parameter depends on the speed bin we use the
common datasheet value for that bin.  The LPDDR4 preset follows
JESD209-4B and the DDR5 preset JESD79-5B (4800B bin, 16 Gb tRFC1),
with the same convention.

Look presets up through :func:`device_for` (``"DDR5-4800"``,
``"LPDDR4"``, or a bare DDR4 rate like ``3200``);
:func:`timing_for_speed` remains as the deprecated DDR4-only shim the
pre-generation code used.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import ClassVar, Dict, Mapping, Tuple

#: Refresh granularities a generation can declare (how the engine's
#: periodic refresh sweeps the banks).
REFRESH_ALL_BANK = "all-bank"    # DDR4: one REF locks every bank
REFRESH_PER_BANK = "per-bank"    # LPDDR4: REFpb rotates over the banks
REFRESH_SAME_BANK = "same-bank"  # DDR5: REFsb hits one bank per group


@dataclass(frozen=True)
class RuleSpec:
    """One generation rulebook row, as pure data.

    ``prev``/``curr`` are :class:`~repro.dram.commands.CommandKind`
    names; ``parameter`` names the :class:`TimingParameters` attribute
    (field or property) holding the minimum delay.  The conformance
    layer resolves these against a concrete preset -- this module
    stays free of command-model imports.
    """

    name: str
    prev: str
    curr: str
    scope: str  # "bank" | "rank"
    parameter: str


#: The DDR4 rulebook: the exact rules the checker enforced before the
#: generations refactor, now as generation data.
DDR4_RULE_TABLE: Tuple[RuleSpec, ...] = (
    RuleSpec("tRCD", "ACT", "RD", "bank", "tRCD"),
    RuleSpec("tRCD", "ACT", "WR", "bank", "tRCD"),
    RuleSpec("tRAS", "ACT", "PRE", "bank", "tRAS"),
    RuleSpec("tRP", "PRE", "ACT", "bank", "tRP"),
    RuleSpec("tRC", "ACT", "ACT", "bank", "tRC"),
    RuleSpec("tRRD_S", "ACT", "ACT", "rank", "tRRD_S"),
    RuleSpec("tRFC", "REF", "ACT", "bank", "tRFC"),
    RuleSpec("tRFC", "REF", "REF", "bank", "tRFC"),
)

#: LPDDR4 has no bank groups (one tRRD) and refreshes per bank, so a
#: REF's lockout is the per-bank tRFCpb, not the all-bank tRFCab.
LPDDR4_RULE_TABLE: Tuple[RuleSpec, ...] = (
    RuleSpec("tRCD", "ACT", "RD", "bank", "tRCD"),
    RuleSpec("tRCD", "ACT", "WR", "bank", "tRCD"),
    RuleSpec("tRAS", "ACT", "PRE", "bank", "tRAS"),
    RuleSpec("tRP", "PRE", "ACT", "bank", "tRP"),
    RuleSpec("tRC", "ACT", "ACT", "bank", "tRC"),
    RuleSpec("tRRD", "ACT", "ACT", "rank", "tRRD"),
    RuleSpec("tRFCpb", "REF", "ACT", "bank", "tRFCpb"),
    RuleSpec("tRFCpb", "REF", "REF", "bank", "tRFCpb"),
)

#: DDR5 keeps bank groups (tRRD_S) but refreshes same-bank (REFsb),
#: whose lockout is tRFCsb.
DDR5_RULE_TABLE: Tuple[RuleSpec, ...] = (
    RuleSpec("tRCD", "ACT", "RD", "bank", "tRCD"),
    RuleSpec("tRCD", "ACT", "WR", "bank", "tRCD"),
    RuleSpec("tRAS", "ACT", "PRE", "bank", "tRAS"),
    RuleSpec("tRP", "PRE", "ACT", "bank", "tRP"),
    RuleSpec("tRC", "ACT", "ACT", "bank", "tRC"),
    RuleSpec("tRRD_S", "ACT", "ACT", "rank", "tRRD_S"),
    RuleSpec("tRFCsb", "REF", "ACT", "bank", "tRFCsb"),
    RuleSpec("tRFCsb", "REF", "REF", "bank", "tRFCsb"),
)


@dataclass(frozen=True)
class TimingParameters:
    """DDR4 timing parameters in nanoseconds.

    Attributes mirror the JEDEC names used throughout the paper:

    * ``tRCD`` -- row activation latency: ACT to first RD/WR.
    * ``tRAS`` -- minimum time a row must stay open (charge restoration).
    * ``tRP``  -- precharge latency: PRE to next ACT.
    * ``tRC``  -- full row cycle (``tRAS + tRP``).
    * ``tCL``  -- column (read) access latency.
    * ``tCWL`` -- column write latency.
    * ``tBL``  -- burst transfer time on the data bus (BL8).
    * ``tRRD_S``/``tRRD_L`` -- ACT-to-ACT, different / same bank group.
    * ``tCCD_S``/``tCCD_L`` -- column-to-column, different / same group.
    * ``tFAW`` -- rolling four-activate window.
    * ``tWR``  -- write recovery.
    * ``tWTR_S``/``tWTR_L`` -- write-to-read turnaround.
    * ``tRTP`` -- read to precharge.
    * ``tRFC`` -- refresh latency for one REF command.
    * ``tREFI`` -- refresh command interval (7.8 us at <= 85 C).
    * ``tREFW`` -- refresh window (64 ms at <= 85 C).

    Generation structure lives in class-level attributes (excluded
    from ``dataclasses.fields`` and therefore from cache-key
    canonicalization): ``generation``, ``has_bank_groups``,
    ``refresh_granularity``, and ``rule_table``.  Subclasses --
    :class:`LPDDR4TimingParameters`, :class:`DDR5TimingParameters` --
    override them and add their generation-specific fields.
    """

    generation: ClassVar[str] = "DDR4"
    has_bank_groups: ClassVar[bool] = True
    refresh_granularity: ClassVar[str] = REFRESH_ALL_BANK
    rule_table: ClassVar[Tuple[RuleSpec, ...]] = DDR4_RULE_TABLE

    data_rate_mts: int = 3200
    tCK: float = 0.625
    tRCD: float = 13.75
    tRAS: float = 32.0
    tRP: float = 13.75
    tCL: float = 13.75
    tCWL: float = 10.0
    tBL: float = 2.5
    tRRD_S: float = 2.5
    tRRD_L: float = 4.9
    tCCD_S: float = 2.5
    tCCD_L: float = 3.125
    tFAW: float = 21.0
    tWR: float = 15.0
    tWTR_S: float = 2.5
    tWTR_L: float = 7.5
    tRTP: float = 7.5
    tRFC: float = 350.0
    tREFI: float = 7800.0
    tREFW: float = 64_000_000.0

    @property
    def tRC(self) -> float:
        """Row cycle time: the minimum ACT-to-ACT delay to one bank."""
        return self.tRAS + self.tRP

    # -- generation-aware parameter selection ---------------------------
    #
    # The engine does not track bank-group adjacency, so with bank
    # groups present it paces by the cross-group minima (tRRD_S for
    # ACTs) and charges column occupancy at the same-group tCCD_L,
    # exactly as the DDR4-only engine did.  Generations without bank
    # groups store their single tRRD/tCCD in both the _S and _L
    # fields; selection then reads the other field, which is how a
    # typo'd non-equal pair would surface in the consistency tests.

    @property
    def act_to_act_ns(self) -> float:
        """Rank-level ACT->ACT pacing the scheduler enforces."""
        return self.tRRD_S if self.has_bank_groups else self.tRRD_L

    @property
    def column_to_column_ns(self) -> float:
        """Back-to-back column command spacing (burst occupancy)."""
        return self.tCCD_L if self.has_bank_groups else self.tCCD_S

    @property
    def refresh_latency_ns(self) -> float:
        """Bank lockout charged per logged REF command."""
        return self.tRFC

    def refresh_slices(
        self, *, banks_per_rank: int, banks_per_group: int
    ) -> int:
        """How many refresh commands one full bank rotation takes.

        All-bank refresh sweeps every bank at once (one slice);
        per-bank refresh (LPDDR4 REFpb) rotates over the rank's banks;
        same-bank refresh (DDR5 REFsb) rotates over the bank index
        within each group, hitting that bank in every group at once.
        The engine spaces slices ``tREFI / slices`` apart, so every
        bank is still refreshed once per ``tREFI``.
        """
        if self.refresh_granularity == REFRESH_ALL_BANK:
            return 1
        if self.refresh_granularity == REFRESH_PER_BANK:
            return banks_per_rank
        return banks_per_group

    def derate_for_temperature(self, celsius: float) -> "TimingParameters":
        """Return parameters adjusted for the extended temperature range.

        Above 85 C JEDEC halves the refresh window and interval
        (2x refresh); at or below 85 C parameters are unchanged.
        """
        if celsius <= 85.0:
            return self
        return replace(self, tREFI=self.tREFI / 2.0, tREFW=self.tREFW / 2.0)

    def activations_per_refresh_window(self) -> int:
        """Upper bound on single-bank activations inside one ``tREFW``.

        Useful for reasoning about the maximum hammer count an attacker
        can issue between two refreshes of a victim row.  The bound is
        the number of *whole* row cycles that fit in the generation's
        refresh window -- ``floor(tREFW / tRC)``, truncating any
        fractional trailing cycle, since a partially completed
        activation cannot disturb the victim before the refresh lands.
        Generations with a shorter window (LPDDR4/DDR5: 32 ms vs
        DDR4's 64 ms) therefore bound correspondingly fewer hammers.
        """
        return int(self.tREFW // self.tRC)


@dataclass(frozen=True)
class LPDDR4TimingParameters(TimingParameters):
    """LPDDR4 timing (JESD209-4B): no bank groups, per-bank refresh.

    LPDDR4 has a single tRRD/tCCD (stored in both the ``_S`` and
    ``_L`` fields) and splits refresh latency into the all-bank
    ``tRFCab`` (mirrored into ``tRFC``) and the per-bank ``tRFCpb``
    charged for each REFpb command the engine issues.
    """

    generation: ClassVar[str] = "LPDDR4"
    has_bank_groups: ClassVar[bool] = False
    refresh_granularity: ClassVar[str] = REFRESH_PER_BANK
    rule_table: ClassVar[Tuple[RuleSpec, ...]] = LPDDR4_RULE_TABLE

    tRFCab: float = 280.0
    tRFCpb: float = 140.0

    def __post_init__(self) -> None:
        if self.tRRD_S != self.tRRD_L or self.tCCD_S != self.tCCD_L:
            raise ValueError(
                "LPDDR4 has no bank groups: store the single tRRD/tCCD "
                "in both the _S and _L fields"
            )
        if self.tRFC != self.tRFCab:
            raise ValueError("LPDDR4 tRFC must mirror tRFCab")

    @property
    def tRRD(self) -> float:
        """The single ACT->ACT delay (no bank groups)."""
        return self.tRRD_S

    @property
    def tCCD(self) -> float:
        """The single column->column delay (no bank groups)."""
        return self.tCCD_S

    @property
    def refresh_latency_ns(self) -> float:
        return self.tRFCpb


@dataclass(frozen=True)
class DDR5TimingParameters(TimingParameters):
    """DDR5 timing (JESD79-5B): same-bank refresh, 32 ms window.

    DDR5 keeps DDR4's bank-group structure but the engine refreshes in
    same-bank granularity (REFsb): each refresh locks one bank index
    across every bank group for ``tRFCsb``.
    """

    generation: ClassVar[str] = "DDR5"
    has_bank_groups: ClassVar[bool] = True
    refresh_granularity: ClassVar[str] = REFRESH_SAME_BANK
    rule_table: ClassVar[Tuple[RuleSpec, ...]] = DDR5_RULE_TABLE

    tRFCsb: float = 130.0

    @property
    def refresh_latency_ns(self) -> float:
        return self.tRFCsb


#: DDR4-3200 speed grade (modules H0-H4, M0, M4 in Table 5).
DDR4_3200 = TimingParameters()

#: DDR4-2933 speed grade (module M2).
DDR4_2933 = TimingParameters(
    data_rate_mts=2933,
    tCK=0.682,
    tRCD=13.64,
    tRAS=32.0,
    tRP=13.64,
    tCL=13.64,
    tCWL=10.9,
    tBL=2.73,
    tRRD_S=2.73,
    tRRD_L=4.9,
    tCCD_S=2.73,
    tCCD_L=3.41,
    tFAW=21.0,
)

#: DDR4-2666 speed grade (modules S0-S2, S4).
DDR4_2666 = TimingParameters(
    data_rate_mts=2666,
    tCK=0.75,
    tRCD=13.5,
    tRAS=32.0,
    tRP=13.5,
    tCL=13.5,
    tCWL=10.5,
    tBL=3.0,
    tRRD_S=3.0,
    tRRD_L=4.9,
    tCCD_S=3.0,
    tCCD_L=3.75,
    tFAW=21.0,
)

#: DDR4-2400 speed grade (modules M1, M3, S3).
DDR4_2400 = TimingParameters(
    data_rate_mts=2400,
    tCK=0.833,
    tRCD=13.32,
    tRAS=32.0,
    tRP=13.32,
    tCL=13.32,
    tCWL=10.0,
    tBL=3.33,
    tRRD_S=3.33,
    tRRD_L=4.9,
    tCCD_S=3.33,
    tCCD_L=4.16,
    tFAW=21.0,
)

#: LPDDR4-3200 (JESD209-4B; 8 Gb per-channel densities).  BL16 on a
#: x16 channel: tBL = 8 tCK; single tRRD/tCCD; 32 ms refresh window
#: with per-bank REFpb every tREFIpb = tREFIab / 8.
LPDDR4_3200 = LPDDR4TimingParameters(
    data_rate_mts=3200,
    tCK=0.625,
    tRCD=18.0,
    tRAS=42.0,
    tRP=18.0,
    tCL=17.5,
    tCWL=8.75,
    tBL=5.0,
    tRRD_S=10.0,
    tRRD_L=10.0,
    tCCD_S=5.0,
    tCCD_L=5.0,
    tFAW=40.0,
    tWR=18.0,
    tWTR_S=10.0,
    tWTR_L=10.0,
    tRTP=7.5,
    tRFC=280.0,
    tREFI=3904.0,
    tREFW=32_000_000.0,
    tRFCab=280.0,
    tRFCpb=140.0,
)

#: DDR5-4800 (JESD79-5B, 4800B bin, 16 Gb; tRFC1/tRFCsb).  BL16:
#: tBL = 8 tCK; 32 ms refresh window, 3.9 us average refresh interval.
DDR5_4800 = DDR5TimingParameters(
    data_rate_mts=4800,
    tCK=0.4166666666666667,
    tRCD=16.0,
    tRAS=32.0,
    tRP=16.0,
    tCL=16.0,
    tCWL=15.83,
    tBL=3.3333333333333335,
    tRRD_S=3.3333333333333335,
    tRRD_L=5.0,
    tCCD_S=3.3333333333333335,
    tCCD_L=5.0,
    tFAW=13.333,
    tWR=30.0,
    tWTR_S=2.5,
    tWTR_L=10.0,
    tRTP=7.5,
    tRFC=295.0,
    tREFI=3900.0,
    tREFW=32_000_000.0,
    tRFCsb=130.0,
)


@dataclass(frozen=True)
class DeviceGeneration:
    """One device generation: its preset table plus lookup helpers.

    The generation-specific *structure* (bank groups, refresh
    granularity, rulebook) lives on the presets' class; this object is
    the registry row that names the generation and maps data rates to
    presets.
    """

    name: str
    description: str
    presets: Mapping[int, TimingParameters] = field(default_factory=dict)
    default_rate: int = 0

    def __post_init__(self) -> None:
        if self.default_rate not in self.presets:
            raise ValueError(
                f"{self.name}: default rate {self.default_rate} has no preset"
            )
        for rate, preset in self.presets.items():
            if preset.data_rate_mts != rate:
                raise ValueError(
                    f"{self.name}-{rate}: preset says "
                    f"{preset.data_rate_mts} MT/s"
                )
            if preset.generation != self.name:
                raise ValueError(
                    f"{self.name}-{rate}: preset is a "
                    f"{preset.generation} parameter set"
                )

    @property
    def rates(self) -> Tuple[int, ...]:
        return tuple(sorted(self.presets))

    def device_names(self) -> Tuple[str, ...]:
        """Every ``NAME-RATE`` spec this generation resolves."""
        return tuple(f"{self.name}-{rate}" for rate in self.rates)

    def preset_for(self, data_rate_mts: int) -> TimingParameters:
        try:
            return self.presets[data_rate_mts]
        except KeyError:
            supported = ", ".join(str(rate) for rate in self.rates)
            raise ValueError(
                f"no {self.name} timing preset for {data_rate_mts} MT/s; "
                f"supported speed grades: {supported}"
            ) from None


#: The generation registry, in generation order.
GENERATIONS: Dict[str, DeviceGeneration] = {
    "DDR4": DeviceGeneration(
        name="DDR4",
        description="JESD79-4C; all-bank refresh, 64 ms window",
        presets={
            3200: DDR4_3200,
            2933: DDR4_2933,
            2666: DDR4_2666,
            2400: DDR4_2400,
        },
        default_rate=3200,
    ),
    "LPDDR4": DeviceGeneration(
        name="LPDDR4",
        description="JESD209-4B; per-bank refresh, no bank groups",
        presets={3200: LPDDR4_3200},
        default_rate=3200,
    ),
    "DDR5": DeviceGeneration(
        name="DDR5",
        description="JESD79-5B; same-bank refresh, 32 ms window",
        presets={4800: DDR5_4800},
        default_rate=4800,
    ),
}


def all_device_names() -> Tuple[str, ...]:
    """Every ``GENERATION-RATE`` spec, in generation then rate order."""
    names: list = []
    for generation in GENERATIONS.values():
        names.extend(generation.device_names())
    return tuple(names)


def device_for(name_or_rate) -> TimingParameters:
    """Resolve a device spec to its preset :class:`TimingParameters`.

    Accepts a ``"GENERATION-RATE"`` spec (``"DDR5-4800"``), a bare
    generation name at its default rate (``"LPDDR4"``), or a bare DDR4
    data rate (``3200`` or ``"3200"``) for compatibility with the
    speed-grade interface this function absorbed.

    Raises:
        ValueError: for an unknown generation or rate, naming the
            device specs that exist.
    """
    spec = name_or_rate
    if isinstance(spec, int):
        return GENERATIONS["DDR4"].preset_for(spec)
    if not isinstance(spec, str):
        raise ValueError(f"device spec must be a string or MT/s rate, "
                         f"got {spec!r}")
    text = spec.strip()
    if text.isdigit():
        return GENERATIONS["DDR4"].preset_for(int(text))
    name, _, rate_text = text.partition("-")
    generation = GENERATIONS.get(name.upper())
    if generation is None or (rate_text and not rate_text.isdigit()):
        supported = ", ".join(all_device_names())
        raise ValueError(
            f"unknown device {spec!r}; supported: {supported} "
            "(a bare generation name picks its default rate)"
        )
    if not rate_text:
        return generation.preset_for(generation.default_rate)
    return generation.preset_for(int(rate_text))


def timing_for_speed(data_rate_mts: int) -> TimingParameters:
    """Return the preset :class:`TimingParameters` for a speed grade.

    Deprecated DDR4-only shim kept for the pre-generation call sites;
    new code should use :func:`device_for`, which also resolves
    LPDDR4/DDR5 specs.

    Raises:
        ValueError: if ``data_rate_mts`` is not one of the supported
            DDR4 speed grades, naming the grades that exist.
    """
    return GENERATIONS["DDR4"].preset_for(data_rate_mts)
