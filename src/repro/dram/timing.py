"""JEDEC DDR4 timing parameters.

All values are stored in nanoseconds.  The presets below correspond to
the speed grades of the modules in the paper's Table 5 (DDR4-3200,
-2933, -2666, and -2400).  Values follow JESD79-4C; where a parameter
depends on the speed bin we use the common datasheet value for that bin.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TimingParameters:
    """DDR4 timing parameters in nanoseconds.

    Attributes mirror the JEDEC names used throughout the paper:

    * ``tRCD`` -- row activation latency: ACT to first RD/WR.
    * ``tRAS`` -- minimum time a row must stay open (charge restoration).
    * ``tRP``  -- precharge latency: PRE to next ACT.
    * ``tRC``  -- full row cycle (``tRAS + tRP``).
    * ``tCL``  -- column (read) access latency.
    * ``tCWL`` -- column write latency.
    * ``tBL``  -- burst transfer time on the data bus (BL8).
    * ``tRRD_S``/``tRRD_L`` -- ACT-to-ACT, different / same bank group.
    * ``tCCD_S``/``tCCD_L`` -- column-to-column, different / same group.
    * ``tFAW`` -- rolling four-activate window.
    * ``tWR``  -- write recovery.
    * ``tWTR_S``/``tWTR_L`` -- write-to-read turnaround.
    * ``tRTP`` -- read to precharge.
    * ``tRFC`` -- refresh latency for one REF command.
    * ``tREFI`` -- refresh command interval (7.8 us at <= 85 C).
    * ``tREFW`` -- refresh window (64 ms at <= 85 C).
    """

    data_rate_mts: int = 3200
    tCK: float = 0.625
    tRCD: float = 13.75
    tRAS: float = 32.0
    tRP: float = 13.75
    tCL: float = 13.75
    tCWL: float = 10.0
    tBL: float = 2.5
    tRRD_S: float = 2.5
    tRRD_L: float = 4.9
    tCCD_S: float = 2.5
    tCCD_L: float = 3.125
    tFAW: float = 21.0
    tWR: float = 15.0
    tWTR_S: float = 2.5
    tWTR_L: float = 7.5
    tRTP: float = 7.5
    tRFC: float = 350.0
    tREFI: float = 7800.0
    tREFW: float = 64_000_000.0

    @property
    def tRC(self) -> float:
        """Row cycle time: the minimum ACT-to-ACT delay to one bank."""
        return self.tRAS + self.tRP

    def derate_for_temperature(self, celsius: float) -> "TimingParameters":
        """Return parameters adjusted for the extended temperature range.

        Above 85 C JEDEC halves the refresh window and interval
        (2x refresh); at or below 85 C parameters are unchanged.
        """
        if celsius <= 85.0:
            return self
        return replace(self, tREFI=self.tREFI / 2.0, tREFW=self.tREFW / 2.0)

    def activations_per_refresh_window(self) -> int:
        """Upper bound on single-bank activations inside one ``tREFW``.

        Useful for reasoning about the maximum hammer count an attacker
        can issue between two refreshes of a victim row.
        """
        return int(self.tREFW // self.tRC)


#: DDR4-3200 speed grade (modules H0-H4, M0, M4 in Table 5).
DDR4_3200 = TimingParameters()

#: DDR4-2933 speed grade (module M2).
DDR4_2933 = TimingParameters(
    data_rate_mts=2933,
    tCK=0.682,
    tRCD=13.64,
    tRAS=32.0,
    tRP=13.64,
    tCL=13.64,
    tCWL=10.9,
    tBL=2.73,
    tRRD_S=2.73,
    tRRD_L=4.9,
    tCCD_S=2.73,
    tCCD_L=3.41,
    tFAW=21.0,
)

#: DDR4-2666 speed grade (modules S0-S2, S4).
DDR4_2666 = TimingParameters(
    data_rate_mts=2666,
    tCK=0.75,
    tRCD=13.5,
    tRAS=32.0,
    tRP=13.5,
    tCL=13.5,
    tCWL=10.5,
    tBL=3.0,
    tRRD_S=3.0,
    tRRD_L=4.9,
    tCCD_S=3.0,
    tCCD_L=3.75,
    tFAW=21.0,
)

#: DDR4-2400 speed grade (modules M1, M3, S3).
DDR4_2400 = TimingParameters(
    data_rate_mts=2400,
    tCK=0.833,
    tRCD=13.32,
    tRAS=32.0,
    tRP=13.32,
    tCL=13.32,
    tCWL=10.0,
    tBL=3.33,
    tRRD_S=3.33,
    tRRD_L=4.9,
    tCCD_S=3.33,
    tCCD_L=4.16,
    tFAW=21.0,
)

_PRESETS = {
    3200: DDR4_3200,
    2933: DDR4_2933,
    2666: DDR4_2666,
    2400: DDR4_2400,
}


def timing_for_speed(data_rate_mts: int) -> TimingParameters:
    """Return the preset :class:`TimingParameters` for a speed grade.

    Raises:
        ValueError: if ``data_rate_mts`` is not one of the supported
            DDR4 speed grades, naming the grades that exist.
    """
    try:
        return _PRESETS[data_rate_mts]
    except KeyError:
        supported = ", ".join(str(rate) for rate in sorted(_PRESETS))
        raise ValueError(
            f"no DDR4 timing preset for {data_rate_mts} MT/s; "
            f"supported speed grades: {supported}"
        ) from None
