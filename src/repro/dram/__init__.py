"""DRAM device substrate.

This package models everything the paper's characterization and
performance evaluation need from a DDR4 DRAM device:

* :mod:`repro.dram.geometry` -- channel/rank/bank-group/bank/subarray/
  row/column topology and address arithmetic.
* :mod:`repro.dram.timing` -- JEDEC timing parameters as declarative
  device-generation tables (DDR4, LPDDR4, DDR5).
* :mod:`repro.dram.commands` -- the DDR4 command set used by test
  programs and the memory controller.
* :mod:`repro.dram.bank` -- per-bank state machine enforcing timing.
* :mod:`repro.dram.cells` -- cell-array storage with data patterns.
* :mod:`repro.dram.mapping` -- in-DRAM logical-to-physical row
  remapping and controller-side (MOP) address mapping.
* :mod:`repro.dram.device` -- the assembled device executing commands.
"""

from repro.dram.geometry import DramGeometry, RowAddress, Subarray
from repro.dram.timing import (
    DDR4_2400,
    DDR4_2666,
    DDR4_3200,
    DDR5_4800,
    GENERATIONS,
    LPDDR4_3200,
    DDR5TimingParameters,
    DeviceGeneration,
    LPDDR4TimingParameters,
    RuleSpec,
    TimingParameters,
    all_device_names,
    device_for,
    timing_for_speed,
)
from repro.dram.commands import Command, CommandKind
from repro.dram.bank import Bank, BankState
from repro.dram.cells import CellArray
from repro.dram.mapping import RowScrambler, MopAddressMapper, PhysicalAddress
from repro.dram.device import DramDevice, TimingViolation

__all__ = [
    "DramGeometry",
    "RowAddress",
    "Subarray",
    "TimingParameters",
    "LPDDR4TimingParameters",
    "DDR5TimingParameters",
    "DeviceGeneration",
    "RuleSpec",
    "GENERATIONS",
    "DDR4_3200",
    "DDR4_2666",
    "DDR4_2400",
    "LPDDR4_3200",
    "DDR5_4800",
    "all_device_names",
    "device_for",
    "timing_for_speed",
    "Command",
    "CommandKind",
    "Bank",
    "BankState",
    "CellArray",
    "RowScrambler",
    "MopAddressMapper",
    "PhysicalAddress",
    "DramDevice",
    "TimingViolation",
]
