"""Address mapping: in-DRAM row scrambling and controller-side mapping.

Two unrelated mappings live here because both translate addresses:

* :class:`RowScrambler` -- DRAM-internal logical-to-physical row
  remapping.  Manufacturers scramble row addresses (and remap faulty
  rows to spares), so the rows adjacent in the physical array are not
  the rows adjacent in the interface address space.  The paper reverse
  engineers this mapping before hammering (Section 4.2); our device
  model implements the common schemes so that the reverse-engineering
  code has something real to recover.
* :class:`MopAddressMapper` -- the memory controller's physical-address
  to (rank, bank group, bank, row, column) mapping, using the
  Minimalist Open Page (MOP) scheme from the paper's Table 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Dict, Tuple

import numpy as np


class ScramblingScheme(Enum):
    """Row-address scrambling schemes seen in commodity DDR4 chips."""

    #: Physical row == logical row.
    IDENTITY = auto()
    #: Bits [2:0] are remapped 011->100 style (Samsung-like "mirror").
    MIRROR = auto()
    #: Bit 3 XORed into bits [2:0] within each 16-row group (Hynix-like).
    XOR_FOLD = auto()


@dataclass(frozen=True)
class RowScrambler:
    """Bijective logical-to-physical row mapping for one bank.

    The mapping is a pure function of the row address; spare-row repair
    entries (``repairs``) override individual logical rows, modelling
    post-manufacturing remapping to spare rows at the top of the bank.
    """

    rows_per_bank: int
    scheme: ScramblingScheme = ScramblingScheme.IDENTITY
    repairs: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        seen_logical = set()
        seen_physical = set()
        for logical, physical in self.repairs:
            if not 0 <= logical < self.rows_per_bank:
                raise ValueError(f"repair source {logical} out of range")
            if not 0 <= physical < self.rows_per_bank:
                raise ValueError(f"repair target {physical} out of range")
            if logical in seen_logical or physical in seen_physical:
                raise ValueError("duplicate repair entry")
            seen_logical.add(logical)
            seen_physical.add(physical)

    def to_physical(self, logical: int) -> int:
        """Physical row index the chip actually drives for ``logical``."""
        self._check(logical)
        for src, dst in self.repairs:
            if logical == src:
                return dst
        return self._scramble(logical)

    def to_physical_array(self, logical: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`to_physical` for whole row ranges.

        Used by the batched characterization kernels; elementwise equal
        to the scalar method for every scheme and repair table.
        """
        rows = np.asarray(logical, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.rows_per_bank):
            raise ValueError(
                f"row out of range [0, {self.rows_per_bank}) in batch"
            )
        if self.scheme is ScramblingScheme.IDENTITY:
            physical = rows.copy()
        elif self.scheme is ScramblingScheme.MIRROR:
            lut = np.array([0, 1, 2, 4, 3, 6, 5, 7], dtype=np.int64)
            physical = (rows & ~0b111) | lut[rows & 0b111]
        else:  # XOR_FOLD
            bit3 = (rows >> 3) & 1
            physical = rows ^ (0b101 * bit3)
        for src, dst in self.repairs:
            physical[rows == src] = dst
        return physical

    def to_logical(self, physical: int) -> int:
        """Inverse mapping (the schemes below are involutions)."""
        self._check(physical)
        for src, dst in self.repairs:
            if physical == dst:
                return src
        # MIRROR and XOR_FOLD are self-inverse; IDENTITY trivially so.
        return self._scramble(physical)

    def physical_neighbors(self, logical: int) -> Tuple[int, int]:
        """Logical addresses of the physically adjacent rows.

        This is what a double-sided hammer needs: given the victim's
        logical address, return the logical addresses the memory
        controller must activate to hammer the two physical neighbours.
        Edge rows return the neighbour reflected in-range (the caller
        should check :meth:`repro.dram.geometry.Subarray.is_edge_row`).
        """
        physical = self.to_physical(logical)
        below = max(physical - 1, 0)
        above = min(physical + 1, self.rows_per_bank - 1)
        return self.to_logical(below), self.to_logical(above)

    def _scramble(self, row: int) -> int:
        if self.scheme is ScramblingScheme.IDENTITY:
            return row
        if self.scheme is ScramblingScheme.MIRROR:
            low = row & 0b111
            mirrored = {0: 0, 1: 1, 2: 2, 3: 4, 4: 3, 5: 6, 6: 5, 7: 7}[low]
            return (row & ~0b111) | mirrored
        if self.scheme is ScramblingScheme.XOR_FOLD:
            bit3 = (row >> 3) & 1
            return row ^ (0b111 * bit3 & 0b101)
        raise AssertionError(f"unhandled scheme {self.scheme}")

    def _check(self, row: int) -> None:
        if not 0 <= row < self.rows_per_bank:
            raise ValueError(f"row {row} out of range [0, {self.rows_per_bank})")


@dataclass(frozen=True)
class PhysicalAddress:
    """Decoded controller-side address."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    @property
    def flat_bank(self) -> int:
        """Flat bank id within the rank (bank group major)."""
        return self.bank_group * 4 + self.bank


@dataclass(frozen=True)
class MopAddressMapper:
    """Minimalist Open Page physical-address mapping (Table 4).

    MOP interleaves a small number of consecutive cache blocks in a row
    before switching banks, balancing row-buffer locality against bank
    parallelism.  Bit layout, from least significant:

    ``[block offset][mop columns][channel][bank group][bank][rank]``
    ``[remaining columns][row]``
    """

    channels: int = 1
    ranks: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 128 * 1024
    columns_per_row: int = 128
    cacheline_bytes: int = 64
    mop_width: int = 4

    def __post_init__(self) -> None:
        for name in ("channels", "ranks", "bank_groups", "banks_per_group",
                     "rows_per_bank", "columns_per_row", "mop_width"):
            value = getattr(self, name)
            if value < 1 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two, got {value}")

    def decode(self, byte_address: int) -> PhysicalAddress:
        """Map a physical byte address to DRAM coordinates."""
        if byte_address < 0:
            raise ValueError("negative address")
        block = byte_address // self.cacheline_bytes
        block, mop_col = divmod(block, self.mop_width)
        block, channel = divmod(block, self.channels)
        block, bank_group = divmod(block, self.bank_groups)
        block, bank = divmod(block, self.banks_per_group)
        block, rank = divmod(block, self.ranks)
        high_cols = self.columns_per_row // self.mop_width
        block, col_high = divmod(block, high_cols)
        row = block % self.rows_per_bank
        column = col_high * self.mop_width + mop_col
        return PhysicalAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row,
            column=column,
        )

    def capacity_bytes(self) -> int:
        """Total bytes addressable by this mapping."""
        return (
            self.cacheline_bytes
            * self.columns_per_row
            * self.channels
            * self.ranks
            * self.bank_groups
            * self.banks_per_group
            * self.rows_per_bank
        )
