"""DDR4 command set.

The device model and the performance simulator both speak this small
command vocabulary.  Commands are plain immutable records; timing
enforcement lives in :mod:`repro.dram.bank` (the per-bank state
machine the characterization programs drive) and
:mod:`repro.sim.engine` (the event-driven performance simulator).
The simulator can additionally *log* its implied command stream as
:class:`TimedCommand` records, which
:mod:`repro.sim.conformance` replays against the JEDEC rulebook.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional


class CommandKind(Enum):
    """The DDR4 commands the paper's methodology uses."""

    ACT = auto()
    PRE = auto()
    RD = auto()
    WR = auto()
    REF = auto()
    #: Not a bus command: models `WAIT(t)` in the paper's Algorithm 1.
    WAIT = auto()


@dataclass(frozen=True)
class Command:
    """One DRAM command with its operands.

    ``bank`` and ``row`` are required for ACT; ``bank`` for PRE (we
    model per-bank precharge); ``bank``/``column`` for RD/WR; ``wait_ns``
    for WAIT.  REF takes no operands (rank-level refresh).
    """

    kind: CommandKind
    rank: int = 0
    bank: Optional[int] = None
    row: Optional[int] = None
    column: Optional[int] = None
    wait_ns: float = 0.0

    def __post_init__(self) -> None:
        if self.kind is CommandKind.ACT and (self.bank is None or self.row is None):
            raise ValueError("ACT requires bank and row")
        if self.kind is CommandKind.PRE and self.bank is None:
            raise ValueError("PRE requires bank")
        if self.kind in (CommandKind.RD, CommandKind.WR) and (
            self.bank is None or self.column is None
        ):
            raise ValueError(f"{self.kind.name} requires bank and column")
        if self.kind is CommandKind.WAIT and self.wait_ns < 0:
            raise ValueError("WAIT requires a non-negative duration")


def act(bank: int, row: int, rank: int = 0) -> Command:
    """Row activation: open ``row`` in ``bank``."""
    return Command(CommandKind.ACT, rank=rank, bank=bank, row=row)


def pre(bank: int, rank: int = 0) -> Command:
    """Bank precharge: close the open row of ``bank``."""
    return Command(CommandKind.PRE, rank=rank, bank=bank)


def rd(bank: int, column: int, rank: int = 0) -> Command:
    """Column read from the open row of ``bank``."""
    return Command(CommandKind.RD, rank=rank, bank=bank, column=column)


def wr(bank: int, column: int, rank: int = 0) -> Command:
    """Column write to the open row of ``bank``."""
    return Command(CommandKind.WR, rank=rank, bank=bank, column=column)


def ref(rank: int = 0) -> Command:
    """Rank-level refresh."""
    return Command(CommandKind.REF, rank=rank)


def wait(ns: float) -> Command:
    """Idle for ``ns`` nanoseconds (Algorithm 1's WAIT)."""
    return Command(CommandKind.WAIT, wait_ns=ns)


@dataclass(frozen=True)
class TimedCommand:
    """One command stamped with its issue time.

    The performance simulator emits these into an optional
    ``command_log`` (see :meth:`repro.sim.engine.MemorySystem.run`);
    the conformance checker replays them.  The engine charges an
    all-bank refresh per bank as the bank becomes free, so logged REF
    commands carry a ``bank`` operand and the timestamp of that bank's
    effective refresh start.
    """

    time_ns: float
    command: Command

    def __str__(self) -> str:
        cmd = self.command
        parts = [f"t={self.time_ns:.3f}ns {cmd.kind.name:<3}"]
        parts.append(f"rank={cmd.rank}")
        if cmd.bank is not None:
            parts.append(f"bank={cmd.bank}")
        if cmd.row is not None:
            parts.append(f"row={cmd.row}")
        if cmd.column is not None:
            parts.append(f"col={cmd.column}")
        return " ".join(parts)
