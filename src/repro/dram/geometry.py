"""DRAM topology: channels, ranks, bank groups, banks, subarrays, rows.

The paper's characterization operates on one bank at a time (banks 1, 4,
10, and 15, one per bank group), while the performance evaluation uses a
full dual-rank, 4-bank-group x 4-bank DDR4 channel.  This module owns
the address arithmetic shared by both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence


@dataclass(frozen=True, order=True)
class RowAddress:
    """A fully qualified row address within a channel."""

    rank: int
    bank: int
    row: int

    def neighbors(self, distance: int = 1) -> tuple["RowAddress", "RowAddress"]:
        """The two row addresses at +/- ``distance`` in the same bank."""
        below = RowAddress(self.rank, self.bank, self.row - distance)
        above = RowAddress(self.rank, self.bank, self.row + distance)
        return below, above


@dataclass(frozen=True)
class Subarray:
    """A contiguous range of physical rows sharing local sense amplifiers.

    ``start`` is inclusive and ``end`` is exclusive, matching Python
    range conventions.  Rows at the edges of a subarray have only one
    in-subarray neighbour, which is the property the paper's reverse
    engineering exploits (Key Insight 1).
    """

    index: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start

    def __contains__(self, row: int) -> bool:
        return self.start <= row < self.end

    def distance_to_sense_amps(self, row: int) -> int:
        """Distance from ``row`` to the nearest subarray edge.

        Sense amplifier stripes sit at both subarray boundaries in an
        open-bitline design, so the relevant spatial feature is the
        distance to the *closest* edge.
        """
        if row not in self:
            raise ValueError(f"row {row} is not in subarray [{self.start}, {self.end})")
        return min(row - self.start, self.end - 1 - row)

    def is_edge_row(self, row: int) -> bool:
        """True for the first and last row of the subarray."""
        return row == self.start or row == self.end - 1


@dataclass(frozen=True)
class DramGeometry:
    """Static organization of one DRAM channel.

    Defaults follow the paper's Table 4 simulated configuration: one
    channel, 2 ranks, 4 bank groups of 4 banks, 128K rows per bank, and
    an 8 KiB row (1024 columns of 8 bytes).
    """

    ranks: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 128 * 1024
    columns_per_row: int = 1024
    column_bytes: int = 8
    subarray_rows: int = 512

    def __post_init__(self) -> None:
        if self.ranks < 1 or self.bank_groups < 1 or self.banks_per_group < 1:
            raise ValueError("geometry dimensions must be positive")
        if self.rows_per_bank < 1 or self.columns_per_row < 1:
            raise ValueError("geometry dimensions must be positive")
        if self.subarray_rows < 2:
            raise ValueError("subarrays must hold at least two rows")

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        return self.ranks * self.banks_per_rank

    @property
    def row_bytes(self) -> int:
        return self.columns_per_row * self.column_bytes

    @property
    def subarrays_per_bank(self) -> int:
        """Number of subarrays, counting a final partial subarray."""
        return -(-self.rows_per_bank // self.subarray_rows)

    def bank_group_of(self, bank: int) -> int:
        """Bank group index for a flat bank id within a rank."""
        self._check_bank(bank)
        return bank // self.banks_per_group

    def bank_id(self, bank_group: int, bank_in_group: int) -> int:
        """Flat bank id from (bank group, bank-in-group) coordinates."""
        if not 0 <= bank_group < self.bank_groups:
            raise ValueError(f"bank group {bank_group} out of range")
        if not 0 <= bank_in_group < self.banks_per_group:
            raise ValueError(f"bank {bank_in_group} out of range in group")
        return bank_group * self.banks_per_group + bank_in_group

    def subarrays(self) -> List[Subarray]:
        """The regular subarray partition of one bank."""
        result = []
        index = 0
        start = 0
        while start < self.rows_per_bank:
            end = min(start + self.subarray_rows, self.rows_per_bank)
            result.append(Subarray(index=index, start=start, end=end))
            index += 1
            start = end
        return result

    def subarray_of(self, row: int) -> Subarray:
        """The subarray containing physical row ``row``."""
        self._check_row(row)
        index = row // self.subarray_rows
        start = index * self.subarray_rows
        end = min(start + self.subarray_rows, self.rows_per_bank)
        return Subarray(index=index, start=start, end=end)

    def same_subarray(self, row_a: int, row_b: int) -> bool:
        """Whether two physical rows share a subarray (and local bitlines)."""
        return self.subarray_of(row_a).index == self.subarray_of(row_b).index

    def relative_location(self, row: int) -> float:
        """Row position normalized to [0, 1] across the bank (Figs 4, 6)."""
        self._check_row(row)
        if self.rows_per_bank == 1:
            return 0.0
        return row / (self.rows_per_bank - 1)

    def iter_rows(self, bank: int, rank: int = 0) -> Iterator[RowAddress]:
        """Iterate every row address of one bank."""
        self._check_bank(bank)
        for row in range(self.rows_per_bank):
            yield RowAddress(rank=rank, bank=bank, row=row)

    def valid_row(self, row: int) -> bool:
        return 0 <= row < self.rows_per_bank

    def _check_bank(self, bank: int) -> None:
        if not 0 <= bank < self.banks_per_rank:
            raise ValueError(f"bank {bank} out of range [0, {self.banks_per_rank})")

    def _check_row(self, row: int) -> None:
        if not self.valid_row(row):
            raise ValueError(f"row {row} out of range [0, {self.rows_per_bank})")


#: Representative banks tested by the paper, one per DDR4 bank group.
REPRESENTATIVE_BANKS: Sequence[int] = (1, 4, 10, 15)
