"""Per-bank state machine with timing enforcement.

A :class:`Bank` tracks the open row and the times of the last ACT and
PRE so the device model can verify the JEDEC constraints the paper's
test programs obey (tRAS before PRE, tRP before the next ACT, tRC
between ACTs to the same bank).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from repro.dram.timing import TimingParameters


class BankState(Enum):
    """Precharged (no open row) or active (a row in the row buffer)."""

    PRECHARGED = auto()
    ACTIVE = auto()


class TimingError(Exception):
    """A command was issued before its timing constraints elapsed."""


@dataclass
class RowClosure:
    """Record of a row being closed: which row, and how long it was open.

    ``on_time_ns`` is the aggressor-on time (tAggOn) that the RowPress
    fault model consumes.
    """

    row: int
    opened_at_ns: float
    closed_at_ns: float

    @property
    def on_time_ns(self) -> float:
        return self.closed_at_ns - self.opened_at_ns


@dataclass
class Bank:
    """State machine for one DRAM bank."""

    timing: TimingParameters
    state: BankState = BankState.PRECHARGED
    open_row: Optional[int] = None
    last_act_ns: float = field(default=-1e18)
    last_pre_ns: float = field(default=-1e18)
    activation_count: int = 0

    def ready_for_act(self, now_ns: float) -> float:
        """Earliest time an ACT may legally be issued (>= ``now_ns``)."""
        earliest = max(
            self.last_pre_ns + self.timing.tRP,
            self.last_act_ns + self.timing.tRC,
        )
        return max(now_ns, earliest)

    def ready_for_pre(self, now_ns: float) -> float:
        """Earliest time a PRE may legally be issued (>= ``now_ns``)."""
        return max(now_ns, self.last_act_ns + self.timing.tRAS)

    def activate(self, now_ns: float, row: int, *, strict: bool = True) -> None:
        """Open ``row``.

        With ``strict=True`` (the default) a :class:`TimingError` is
        raised when tRP or tRC have not elapsed.  ``strict=False``
        permits deliberate violations, which the RowClone reverse
        engineering tests rely on.
        """
        if self.state is BankState.ACTIVE:
            raise TimingError(
                f"ACT to bank with open row {self.open_row}: precharge first"
            )
        if strict and now_ns < self.ready_for_act(now_ns := now_ns) - 1e-9:
            raise TimingError(
                f"ACT at {now_ns:.2f} ns violates tRP/tRC "
                f"(ready at {self.ready_for_act(now_ns):.2f} ns)"
            )
        self.state = BankState.ACTIVE
        self.open_row = row
        self.last_act_ns = now_ns
        self.activation_count += 1

    def precharge(self, now_ns: float, *, strict: bool = True) -> Optional[RowClosure]:
        """Close the open row, returning a :class:`RowClosure` record.

        Precharging an already-precharged bank is a legal no-op in DDR4
        and returns ``None``.
        """
        if self.state is BankState.PRECHARGED:
            self.last_pre_ns = max(self.last_pre_ns, now_ns)
            return None
        if strict and now_ns < self.ready_for_pre(now_ns) - 1e-9:
            raise TimingError(
                f"PRE at {now_ns:.2f} ns violates tRAS "
                f"(ready at {self.ready_for_pre(now_ns):.2f} ns)"
            )
        closure = RowClosure(
            row=self.open_row,
            opened_at_ns=self.last_act_ns,
            closed_at_ns=now_ns,
        )
        self.state = BankState.PRECHARGED
        self.open_row = None
        self.last_pre_ns = now_ns
        return closure

    def check_column_access(self, now_ns: float) -> None:
        """Verify a RD/WR is legal: the bank is active and tRCD elapsed."""
        if self.state is not BankState.ACTIVE:
            raise TimingError("column access to a precharged bank")
        if now_ns < self.last_act_ns + self.timing.tRCD - 1e-9:
            raise TimingError(
                f"column access at {now_ns:.2f} ns violates tRCD "
                f"(row ready at {self.last_act_ns + self.timing.tRCD:.2f} ns)"
            )
