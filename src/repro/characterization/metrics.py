"""Statistics used throughout the paper's figures.

The box-and-whisker convention follows the paper's footnote 10: the
box spans the first to third quartile, whiskers mark the central
1.5*IQR range, and the mean is reported separately (the white circles
in Figs 3 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class BoxStats:
    """Summary of a distribution as drawn in the paper's box plots."""

    mean: float
    q1: float
    median: float
    q3: float
    whisker_low: float
    whisker_high: float
    minimum: float
    maximum: float
    count: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def box_stats(values: np.ndarray) -> BoxStats:
    """Compute box-plot statistics (paper footnote 10 conventions)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty distribution")
    q1, median, q3 = np.percentile(arr, [25, 50, 75])
    iqr = q3 - q1
    low_candidates = arr[arr >= q1 - 1.5 * iqr]
    high_candidates = arr[arr <= q3 + 1.5 * iqr]
    return BoxStats(
        mean=float(arr.mean()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        whisker_low=float(low_candidates.min()),
        whisker_high=float(high_candidates.max()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def coefficient_of_variation_pct(values: np.ndarray) -> float:
    """CV in percent: stddev normalized to the mean (footnote 11)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty distribution")
    mean = arr.mean()
    if mean == 0:
        raise ValueError("CV undefined for zero-mean data")
    return float(100.0 * arr.std() / mean)


def hc_first_histogram(
    measured: np.ndarray, grid: Sequence[int]
) -> Dict[int, float]:
    """Fraction of rows at each grid HC_first value (Fig 5's y-axis)."""
    arr = np.asarray(measured, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("cannot histogram an empty distribution")
    total = arr.size
    return {int(g): float(np.mean(arr == g)) for g in sorted(grid)}


def normalize_to_minimum(values: np.ndarray) -> np.ndarray:
    """Normalize a positive array to its minimum (Figs 4 and 6)."""
    arr = np.asarray(values, dtype=np.float64)
    minimum = arr.min()
    if minimum <= 0:
        raise ValueError("normalization requires positive values")
    return arr / minimum


def bank_agreement_ratio(per_bank_means: Mapping[int, float]) -> float:
    """Max/min ratio of per-bank means (Obsvs 2 and 6: close to 1)."""
    means = list(per_bank_means.values())
    if not means:
        raise ValueError("no banks given")
    low = min(means)
    if low <= 0:
        raise ValueError("bank means must be positive")
    return max(means) / low
