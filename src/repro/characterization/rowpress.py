"""RowPress study: the effect of tAggOn on HC_first (Section 5.3).

Repeats the characterization at the three aggressor-on times the paper
tests -- 36 ns (minimum tRAS), 0.5 us (realistic row-buffer-hit
window), and 2 us (streaming the whole row) -- and summarizes the
HC_first distributions (Fig 7).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

import numpy as np

from repro.characterization.metrics import BoxStats, box_stats, coefficient_of_variation_pct
from repro.characterization.runner import (
    CharacterizationConfig,
    CharacterizationRunner,
    ModuleCharacterization,
)
from repro.faults.modules import ModuleSpec

#: The paper's tAggOn sweep: 36 ns, 0.5 us, 2 us.
T_AGG_ON_SWEEP_NS: Tuple[float, ...] = (36.0, 500.0, 2000.0)


@dataclass
class RowPressStudy:
    """Characterize one module at several aggressor-on times."""

    spec: ModuleSpec
    config: CharacterizationConfig

    def run(self) -> Dict[float, ModuleCharacterization]:
        """One characterization per tAggOn value."""
        results: Dict[float, ModuleCharacterization] = {}
        for t_on in T_AGG_ON_SWEEP_NS:
            config = replace(self.config, t_agg_on_ns=t_on)
            runner = CharacterizationRunner(self.spec, config)
            results[t_on] = runner.run()
        return results

    @staticmethod
    def hc_first_boxes(
        results: Dict[float, ModuleCharacterization]
    ) -> Dict[float, BoxStats]:
        """Fig 7's box stats: HC_first distribution per tAggOn."""
        return {
            t_on: box_stats(chars.all_hc_first())
            for t_on, chars in results.items()
        }

    @staticmethod
    def hc_first_cv_pct(
        results: Dict[float, ModuleCharacterization]
    ) -> Dict[float, float]:
        """Obsv 11's CV values per tAggOn."""
        return {
            t_on: coefficient_of_variation_pct(chars.all_hc_first())
            for t_on, chars in results.items()
        }
