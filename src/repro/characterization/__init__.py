"""Characterization pipeline: the paper's Algorithm 1 and analyses.

* :mod:`repro.characterization.metrics` -- BER/HC_first statistics
  (box-and-whisker stats, coefficient of variation, histograms).
* :mod:`repro.characterization.runner` -- the Algorithm 1 test loop in
  two equivalent modes: ``platform`` (command-accurate, against the
  bender simulator) and ``analytic`` (closed-form fast path for
  full-bank sweeps).
* :mod:`repro.characterization.rowpress` -- the tAggOn sweeps of
  Section 5.3.
* :mod:`repro.characterization.aging_study` -- the Section 5.5 re-
  characterization after stress.
"""

from repro.characterization.metrics import (
    BoxStats,
    box_stats,
    coefficient_of_variation_pct,
    hc_first_histogram,
)
from repro.characterization.runner import (
    BankProfile,
    CharacterizationConfig,
    CharacterizationRunner,
    ModuleCharacterization,
)
from repro.characterization.rowpress import RowPressStudy, T_AGG_ON_SWEEP_NS
from repro.characterization.aging_study import AgingStudy, AgingStudyResult

__all__ = [
    "BoxStats",
    "box_stats",
    "coefficient_of_variation_pct",
    "hc_first_histogram",
    "BankProfile",
    "CharacterizationConfig",
    "CharacterizationRunner",
    "ModuleCharacterization",
    "RowPressStudy",
    "T_AGG_ON_SWEEP_NS",
    "AgingStudy",
    "AgingStudyResult",
]
