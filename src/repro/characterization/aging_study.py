"""Aging study (Section 5.5): re-characterize after prolonged stress.

Characterizes a module, applies the :class:`repro.faults.AgingModel`
drift (68 days of double-sided hammering at 80 C by default), then
re-characterizes and reports the before/after HC_first transitions of
Fig 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.characterization.runner import (
    CharacterizationConfig,
    CharacterizationRunner,
)
from repro.faults.aging import AgingModel
from repro.faults.modules import ModuleSpec
from repro.faults.variation import HC_GRID


@dataclass
class AgingStudyResult:
    """Before/after measured HC_first values and their transitions."""

    module_label: str
    days: float
    before: np.ndarray
    after: np.ndarray

    def transitions(self) -> Dict[Tuple[int, int], float]:
        """Fig 10's marker data: fraction of rows per (before, after).

        Fractions are normalized within each before-aging value, so
        they sum to 1.0 per x-tick, as in the figure.
        """
        result: Dict[Tuple[int, int], float] = {}
        for b in np.unique(self.before):
            mask = self.before == b
            total = int(mask.sum())
            for a in np.unique(self.after[mask]):
                count = int((self.after[mask] == a).sum())
                result[(int(b), int(a))] = count / total
        return result

    def weakened_fraction(self) -> float:
        """Overall fraction of rows whose HC_first dropped."""
        return float(np.mean(self.after < self.before))

    def worst_case_changed(self) -> bool:
        """Did aging lower the module's worst-case HC_first (Obsv 13)?"""
        return int(self.after.min()) < int(self.before.min())


@dataclass
class AgingStudy:
    """Runs the before/after characterization pair on one bank."""

    spec: ModuleSpec
    config: CharacterizationConfig
    days: float = 68.0
    temperature_c: float = 80.0

    def run(self, bank: int = 1) -> AgingStudyResult:
        runner = CharacterizationRunner(self.spec, self.config)
        before_profile = runner.characterize_bank(bank)

        aging = AgingModel(
            days=self.days,
            temperature_c=self.temperature_c,
            seed=self.config.seed,
        )
        # Apply the drift to the model's ground truth in place: rows
        # that weakened get new, lower true thresholds.
        state = runner.model.bank_state(bank)
        state.field_ = aging.age_field(state.field_)

        after_profile = runner.characterize_bank(bank)
        return AgingStudyResult(
            module_label=self.spec.label,
            days=self.days,
            before=before_profile.measured_hc_first,
            after=after_profile.measured_hc_first,
        )
