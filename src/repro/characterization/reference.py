"""Loop-reference oracle for the batched platform characterization.

This module preserves the original per-row Algorithm 1 loop: one
:meth:`repro.bender.TestPlatform.measure_ber` call per (row, pattern,
hammer count, iteration).  It is deliberately slow and deliberately
simple -- its only job is to be an independently-auditable oracle that
the vectorized :meth:`CharacterizationRunner._characterize_bank_platform`
must match bit-for-bit (asserted by the property tests and the
``make test`` kernels smoke).

Do not optimize this file.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.characterization.runner import BankProfile, CharacterizationRunner
from repro.faults.datapatterns import DATA_PATTERNS, WCDP_CANDIDATES


def characterize_bank_loop(
    runner: CharacterizationRunner,
    bank: int,
    rows: Optional[Sequence[int]] = None,
) -> BankProfile:
    """Run Algorithm 1 for one bank with the per-row reference loop.

    Produces a :class:`BankProfile` with the same measured-rows-sized
    shape as the batched kernel path, so profiles from both can be
    compared array-for-array.
    """
    platform = runner._platform
    if platform is None:
        raise ValueError("loop reference requires a platform-mode runner")
    config = runner.config
    t_on = config.t_agg_on_ns
    row_list = list(rows) if rows is not None else list(
        range(config.rows_per_bank)
    )
    n = len(row_list)
    hc_grid = sorted(config.hc_grid)
    hc_max = hc_grid[-1]

    wcdp_index = np.zeros(n, dtype=np.int8)
    ber_by_hc: Dict[int, np.ndarray] = {
        int(hc): np.zeros(n) for hc in hc_grid
    }

    for slot, row in enumerate(row_list):
        # Find the WCDP at the maximum hammer count.
        best_pattern, best_ber = DATA_PATTERNS[0], -1.0
        for pattern in DATA_PATTERNS:
            result = platform.measure_ber(bank, row, pattern, hc_max, t_on)
            if result.ber > best_ber:
                best_pattern, best_ber = pattern, result.ber
        if best_pattern in WCDP_CANDIDATES:
            wcdp_index[slot] = WCDP_CANDIDATES.index(best_pattern)

        # Sweep the hammer count at the WCDP, worst case across
        # iterations.
        for hc in hc_grid:
            worst = 0.0
            for _ in range(config.iterations):
                result = platform.measure_ber(bank, row, best_pattern, hc, t_on)
                worst = max(worst, result.ber)
            ber_by_hc[int(hc)][slot] = worst

    measured = runner._measured_hc_first_from_bers(ber_by_hc)
    return BankProfile(
        module_label=runner.spec.label,
        bank=bank,
        t_agg_on_ns=t_on,
        wcdp_index=wcdp_index,
        measured_hc_first=measured,
        ber_by_hc=ber_by_hc,
        row_indices=np.asarray(row_list, dtype=np.int64),
        bank_rows=config.rows_per_bank,
    )
