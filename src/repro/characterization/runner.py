"""The Algorithm 1 test loop.

:class:`CharacterizationRunner` profiles the spatial variation of read
disturbance for one module, in either of two modes:

* ``platform`` -- executes the real measurement sequence against the
  :class:`repro.bender.TestPlatform` (initialize rows, double-sided
  hammer, read back, compare), per row and per hammer count.  This is
  command-faithful but slow, so it is meant for small banks and for
  validating the fast path.
* ``analytic`` -- evaluates the fault model's closed forms, vectorized
  over all rows.  The test suite verifies both modes agree.

Following Section 4.1, the runner can repeat each test ``iterations``
times and record the worst case (largest BER, smallest HC_first); the
paper reports a 5.7% iteration-to-iteration BER variation, which the
analytic mode reproduces with multiplicative jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bender.infrastructure import TestPlatform
from repro.dram.geometry import REPRESENTATIVE_BANKS
from repro.faults.datapatterns import DATA_PATTERNS, WCDP_CANDIDATES, DataPattern
from repro.faults.disturbance import DisturbanceModel, T_AGG_ON_MIN_NS
from repro.faults.modules import ModuleSpec
from repro.faults.variation import HC_128K, HC_GRID

#: Iteration-to-iteration BER variation the paper reports (5.7%).
ITERATION_BER_SIGMA = 0.057 / 2.0


@dataclass(frozen=True)
class CharacterizationConfig:
    """Parameters of one Algorithm 1 run."""

    rows_per_bank: int = 2048
    banks: Tuple[int, ...] = tuple(REPRESENTATIVE_BANKS)
    hc_grid: Tuple[int, ...] = tuple(HC_GRID)
    t_agg_on_ns: float = T_AGG_ON_MIN_NS
    iterations: int = 1
    mode: str = "analytic"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("analytic", "platform"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.iterations < 1:
            raise ValueError("need at least one iteration")
        if not self.banks:
            raise ValueError("need at least one bank")


@dataclass
class BankProfile:
    """Per-row characterization results for one bank.

    All per-row arrays are sized to the *measured* rows -- for partial
    (subset-row) platform runs that is fewer than the bank's row count,
    and ``row_indices`` records which bank rows each slot describes.
    """

    module_label: str
    bank: int
    t_agg_on_ns: float
    wcdp_index: np.ndarray
    measured_hc_first: np.ndarray
    ber_by_hc: Dict[int, np.ndarray] = field(default_factory=dict)
    #: Bank row index of each measured slot (``arange(rows)`` for a
    #: full-bank run).
    row_indices: Optional[np.ndarray] = None
    #: Total rows in the characterized bank (= ``rows`` unless the run
    #: measured a subset).
    bank_rows: Optional[int] = None

    @property
    def rows(self) -> int:
        """Number of *measured* rows (not the bank's row count)."""
        return len(self.measured_hc_first)

    @property
    def ber_at_128k(self) -> np.ndarray:
        """Per-row BER at HC = 128K (the Fig 3/4 quantity).

        Only defined when the HC grid actually tested 128K; a grid
        that stops short no longer silently aliases its own maximum.
        """
        try:
            return self.ber_by_hc[HC_128K]
        except KeyError:
            raise ValueError(
                f"bank {self.bank}: HC grid (max {max(self.ber_by_hc)}) "
                "did not test 128K; read ber_by_hc at a tested count"
            ) from None

    def relative_locations(self) -> np.ndarray:
        """Row position in [0, 1] across the bank (Figs 4, 6 x-axis)."""
        total = self.bank_rows if self.bank_rows is not None else self.rows
        indices = (
            self.row_indices
            if self.row_indices is not None
            else np.arange(self.rows)
        )
        return indices / max(total - 1, 1)


@dataclass
class ModuleCharacterization:
    """All banks of one module at one tAggOn."""

    module_label: str
    t_agg_on_ns: float
    banks: Dict[int, BankProfile]

    def all_hc_first(self) -> np.ndarray:
        return np.concatenate(
            [profile.measured_hc_first for profile in self.banks.values()]
        )

    def all_ber(self) -> np.ndarray:
        return np.concatenate(
            [profile.ber_at_128k for profile in self.banks.values()]
        )

    def per_bank_mean_ber(self) -> Dict[int, float]:
        return {
            bank: float(profile.ber_at_128k.mean())
            for bank, profile in self.banks.items()
        }

    def min_hc_first(self) -> int:
        """The module's worst-case HC_first (red dashed line in Fig 5)."""
        return int(self.all_hc_first().min())


class CharacterizationRunner:
    """Runs Algorithm 1 for one module."""

    def __init__(self, spec: ModuleSpec, config: CharacterizationConfig) -> None:
        self.spec = spec
        self.config = config
        if config.mode == "platform":
            self._platform = TestPlatform(
                spec, rows_per_bank=config.rows_per_bank, seed=config.seed
            )
            self._model = self._platform.model
        else:
            self._platform = None
            self._model = DisturbanceModel(
                spec, rows_per_bank=config.rows_per_bank, seed=config.seed
            )

    @property
    def model(self) -> DisturbanceModel:
        return self._model

    # ------------------------------------------------------------------

    def run(self) -> ModuleCharacterization:
        """The full test loop over all configured banks."""
        banks = {
            bank: self.characterize_bank(bank) for bank in self.config.banks
        }
        return ModuleCharacterization(
            module_label=self.spec.label,
            t_agg_on_ns=self.config.t_agg_on_ns,
            banks=banks,
        )

    def characterize_bank(
        self, bank: int, rows: Optional[Sequence[int]] = None
    ) -> BankProfile:
        if self.config.mode == "analytic":
            return self._characterize_bank_analytic(bank)
        return self._characterize_bank_platform(bank, rows)

    # ------------------------------------------------------------------
    # Analytic mode (vectorized)
    # ------------------------------------------------------------------

    def _characterize_bank_analytic(self, bank: int) -> BankProfile:
        model = self._model
        t_on = self.config.t_agg_on_ns
        rng = np.random.default_rng(
            np.random.SeedSequence([self.config.seed, bank, 0x17E2])
        )
        n = self.config.rows_per_bank

        # Step 1 (Algorithm 1): find each row's WCDP at HC = 128K.
        ber_by_pattern = np.stack(
            [
                model.analytic_ber(bank, HC_128K, t_agg_on_ns=t_on, pattern=p)
                for p in DATA_PATTERNS
            ]
        )
        wcdp_positions = np.argmax(ber_by_pattern, axis=0)
        wcdp_index = np.array(
            [
                WCDP_CANDIDATES.index(DATA_PATTERNS[p])
                if DATA_PATTERNS[p] in WCDP_CANDIDATES
                else 0
                for p in wcdp_positions
            ],
            dtype=np.int8,
        )

        # Step 2: sweep the hammer count at the WCDP.  "Worst case over
        # iterations" = max BER / min HC_first, with iteration jitter.
        ber_by_hc: Dict[int, np.ndarray] = {}
        for hc in self.config.hc_grid:
            base = model.analytic_ber(bank, hc, t_agg_on_ns=t_on, pattern=None)
            worst = np.zeros(n)
            for _ in range(self.config.iterations):
                jitter = (
                    1.0 + ITERATION_BER_SIGMA * rng.standard_normal(n)
                    if self.config.iterations > 1
                    else 1.0
                )
                worst = np.maximum(worst, base * jitter)
            ber_by_hc[int(hc)] = np.clip(worst, 0.0, 1.0)

        measured = self._measured_hc_first_from_bers(ber_by_hc)
        return BankProfile(
            module_label=self.spec.label,
            bank=bank,
            t_agg_on_ns=t_on,
            wcdp_index=wcdp_index,
            measured_hc_first=measured,
            ber_by_hc=ber_by_hc,
            row_indices=np.arange(n, dtype=np.int64),
            bank_rows=n,
        )

    def _measured_hc_first_from_bers(
        self, ber_by_hc: Dict[int, np.ndarray]
    ) -> np.ndarray:
        """Smallest tested HC with at least one bitflip, per row."""
        grid = sorted(ber_by_hc)
        n = len(ber_by_hc[grid[0]])
        measured = np.full(n, grid[-1], dtype=np.int64)
        assigned = np.zeros(n, dtype=bool)
        for hc in grid:
            flipped = (ber_by_hc[hc] > 0) & ~assigned
            measured[flipped] = hc
            assigned |= flipped
        return measured

    # ------------------------------------------------------------------
    # Platform mode (command-faithful)
    # ------------------------------------------------------------------

    def _characterize_bank_platform(
        self, bank: int, rows: Optional[Sequence[int]]
    ) -> BankProfile:
        """Algorithm 1 against the test platform, all rows per step.

        Instead of sweeping (pattern, HC, iteration) per row, every
        (pattern, HC) step measures all requested rows in one batched
        platform call.  Row-for-row bit-identical to the per-row loop
        (retained as the oracle in
        :mod:`repro.characterization.reference` and asserted by the
        test suite): measurements are independent, since each one
        re-initializes its victim and aggressors.
        """
        platform = self._platform
        assert platform is not None
        t_on = self.config.t_agg_on_ns
        row_list = (
            np.arange(self.config.rows_per_bank, dtype=np.int64)
            if rows is None
            else np.asarray(list(rows), dtype=np.int64)
        )
        n = row_list.size
        hc_grid = sorted(self.config.hc_grid)
        hc_max = hc_grid[-1]
        row_bits = platform.geometry.row_bytes * 8

        # Step 1 (Algorithm 1): each row's WCDP at the maximum hammer
        # count.  np.argmax keeps the first of equal maxima -- the same
        # row the loop's strict ``>`` comparison keeps.
        flips_by_pattern = np.stack(
            [
                platform.measure_ber_bank(bank, row_list, pattern, hc_max, t_on)
                for pattern in DATA_PATTERNS
            ]
        )
        best_position = np.argmax(flips_by_pattern, axis=0)
        wcdp_index = np.zeros(n, dtype=np.int8)
        for position, pattern in enumerate(DATA_PATTERNS):
            if pattern in WCDP_CANDIDATES:
                wcdp_index[best_position == position] = WCDP_CANDIDATES.index(
                    pattern
                )
        # The sweep tests each row at its best pattern -- including the
        # column stripes, which are not WCDP candidates.
        test_order_to_enum = np.array(
            [list(DataPattern).index(pattern) for pattern in DATA_PATTERNS],
            dtype=np.int64,
        )
        sweep_patterns = test_order_to_enum[best_position]

        # Step 2: sweep the hammer count at the WCDP, worst case across
        # iterations.
        ber_by_hc: Dict[int, np.ndarray] = {}
        for hc in hc_grid:
            worst = np.zeros(n)
            for _ in range(self.config.iterations):
                flips = platform.measure_ber_bank(
                    bank, row_list, sweep_patterns, hc, t_on
                )
                worst = np.maximum(worst, flips / row_bits)
            ber_by_hc[int(hc)] = worst

        measured = self._measured_hc_first_from_bers(ber_by_hc)
        return BankProfile(
            module_label=self.spec.label,
            bank=bank,
            t_agg_on_ns=t_on,
            wcdp_index=wcdp_index,
            measured_hc_first=measured,
            ber_by_hc=ber_by_hc,
            row_indices=row_list,
            bank_rows=self.config.rows_per_bank,
        )
