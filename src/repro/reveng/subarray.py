"""Subarray reverse engineering (Section 5.4.1, Fig 8).

Two key insights from the paper:

1. A row at a subarray boundary is disturbed from one side only, so a
   single-sided hammer probe reveals boundary rows.  Rows are then
   clustered into subarrays with k-means, sweeping k and maximizing
   the silhouette score -- the global maximum is the inferred subarray
   count.
2. Intra-subarray RowClone succeeds only within a subarray, so a
   successful clone across a candidate boundary *invalidates* it
   (while a failed clone proves nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.clustering import best_k, kmeans_1d, silhouette_score_1d, sweep_k
from repro.bender.infrastructure import TestPlatform


@dataclass
class SubarrayInference:
    """Result of the subarray reverse-engineering pipeline."""

    boundary_rows: List[int]
    silhouette_by_k: Dict[int, float]
    inferred_k: int
    labels: np.ndarray

    def subarray_sizes(self) -> List[int]:
        """Row count of each inferred subarray."""
        _, counts = np.unique(self.labels, return_counts=True)
        return sorted(int(c) for c in counts)

    def subarray_of(self, row: int) -> int:
        return int(self.labels[row])


class SubarrayReverseEngineer:
    """Runs the two-step boundary detection on a test platform."""

    def __init__(
        self,
        platform: TestPlatform,
        *,
        probe_hammer_count: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.platform = platform
        hc_max = platform.model.true_hc_first(0).max()
        # Single-sided exposure accumulates at half the double-sided
        # rate, so 4x the worst HC_first guarantees neighbour bitflips.
        self.probe_hammer_count = probe_hammer_count or int(hc_max * 4) + 1
        self.seed = seed

    # -- Key Insight 1 --------------------------------------------------

    def find_boundary_candidates(
        self, bank: int, rows: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Physical rows whose hammering disturbs only their upper side.

        Subarrays are a property of the *physical* row space; the probe
        therefore translates through the (already reverse-engineered)
        row mapping before hammering -- Section 4.2's prerequisite.
        ``rows`` and the returned boundary list are physical indices.
        """
        geometry = self.platform.geometry
        scrambler = self.platform.device.scrambler
        probe_rows = list(rows) if rows is not None else list(
            range(geometry.rows_per_bank)
        )
        boundaries = []
        for physical in probe_rows:
            if physical == 0:
                boundaries.append(0)
                continue
            aggressor = scrambler.to_logical(physical)
            below = scrambler.to_logical(physical - 1)
            below_disturbed = self.platform.single_sided_disturbs(
                bank, aggressor, below, self.probe_hammer_count
            )
            if below_disturbed:
                continue
            if physical + 1 < geometry.rows_per_bank:
                above = scrambler.to_logical(physical + 1)
                if not self.platform.single_sided_disturbs(
                    bank, aggressor, above, self.probe_hammer_count
                ):
                    continue  # disturbs neither side: not a row at all
            boundaries.append(physical)
        return boundaries

    # -- Clustering (Fig 8) ---------------------------------------------

    def cluster_feature(self, bank: int, boundary_rows: Sequence[int]) -> np.ndarray:
        """Per-row clustering feature: the ordinal of the row's segment.

        Counting detected boundaries at or below each row turns the
        boundary list into a step function whose plateaus are the
        subarrays; clustering this 1-D feature makes the silhouette
        score peak at the true subarray count.
        """
        n = self.platform.geometry.rows_per_bank
        feature = np.zeros(n)
        boundary_arr = np.asarray(sorted(boundary_rows))
        for row in range(n):
            feature[row] = np.searchsorted(boundary_arr, row, side="right")
        return feature

    def infer(
        self,
        bank: int,
        *,
        k_values: Optional[Sequence[int]] = None,
        probe_rows: Optional[Sequence[int]] = None,
        validate_with_rowclone: bool = True,
    ) -> SubarrayInference:
        """The full pipeline: probe, (optionally) validate, cluster."""
        boundaries = self.find_boundary_candidates(bank, probe_rows)
        if validate_with_rowclone:
            boundaries = self.validate_boundaries(bank, boundaries)
        feature = self.cluster_feature(bank, boundaries)
        n_candidates = max(2, len(boundaries))
        if k_values is None:
            k_values = sorted(
                {
                    k
                    for k in range(
                        max(2, n_candidates // 2), n_candidates * 2 + 1
                    )
                }
            )
        scores = sweep_k(feature, k_values, seed=self.seed)
        k = best_k(scores)
        labels, _ = kmeans_1d(feature, k)
        return SubarrayInference(
            boundary_rows=list(boundaries),
            silhouette_by_k=scores,
            inferred_k=k,
            labels=labels,
        )

    # -- Key Insight 2 --------------------------------------------------

    def validate_boundaries(
        self, bank: int, candidates: Sequence[int]
    ) -> List[int]:
        """Drop candidates that a successful RowClone disproves.

        A clone from ``candidate - 1`` to ``candidate`` succeeding
        means both rows share a subarray, so no boundary lies between
        them.  Failed clones keep the candidate (RowClone is not
        guaranteed to work even within a subarray).
        """
        scrambler = self.platform.device.scrambler
        validated = []
        for candidate in candidates:
            if candidate == 0:
                validated.append(candidate)
                continue
            src = scrambler.to_logical(candidate - 1)
            dst = scrambler.to_logical(candidate)
            if self.platform.try_rowclone(bank, src, dst):
                continue
            validated.append(candidate)
        return validated
