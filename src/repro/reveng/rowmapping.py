"""Row-mapping reverse engineering (Section 4.2).

DRAM-internal address scrambling means the rows physically adjacent to
a victim are generally not ``victim +/- 1`` at the interface.  The
standard recovery technique (used by the paper, following Kim+ and
Orosa+) hammers candidate logical rows one at a time and observes
which of them disturb the victim: those are its physical neighbours.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.bender.infrastructure import TestPlatform
from repro.dram.cells import count_mismatched_bits
from repro.dram.mapping import RowScrambler, ScramblingScheme
from repro.faults.datapatterns import DataPattern


def recover_physical_neighbors(
    platform: TestPlatform,
    bank: int,
    victim_row: int,
    *,
    search_radius: int = 8,
    hammer_count: Optional[int] = None,
) -> List[int]:
    """Logical rows whose single-sided hammering disturbs ``victim_row``.

    Hammers every candidate in ``victim_row +/- search_radius`` hard
    enough that any true physical neighbour must induce a bitflip
    (4x the bank's worst true HC_first covers the single-sided factor),
    and returns those that do.  For an interior row the result has
    exactly two entries: the aggressors a double-sided attack needs.
    """
    hc_max = platform.model.true_hc_first(bank).max()
    count = hammer_count or int(hc_max * 4) + 1
    pattern = DataPattern.ROW_STRIPE
    expected = np.full(
        platform.geometry.row_bytes, pattern.victim_fill, dtype=np.uint8
    )
    neighbors = []
    for offset in range(-search_radius, search_radius + 1):
        candidate = victim_row + offset
        if offset == 0 or not platform.geometry.valid_row(candidate):
            continue
        platform.device.write_row(bank, victim_row, pattern.victim_fill)
        platform.device.write_row(bank, candidate, pattern.aggressor_fill)
        platform.device.hammer(bank, [candidate], count)
        observed = platform.device.read_row(bank, victim_row)
        if count_mismatched_bits(observed, expected) > 0:
            neighbors.append(candidate)
    return neighbors


def infer_scrambling_scheme(
    platform: TestPlatform,
    bank: int,
    sample_rows: Sequence[int],
    *,
    search_radius: int = 8,
) -> ScramblingScheme:
    """Identify which known scrambling scheme matches observations.

    For each sampled victim, compares the recovered neighbour set with
    the neighbours each candidate scheme predicts, and returns the
    scheme agreeing on every sample.  Raises ``ValueError`` when no
    candidate matches (an unknown mapping).
    """
    rows_per_bank = platform.geometry.rows_per_bank
    candidates = {
        scheme: RowScrambler(rows_per_bank=rows_per_bank, scheme=scheme)
        for scheme in ScramblingScheme
    }
    scores: Dict[ScramblingScheme, int] = {scheme: 0 for scheme in candidates}
    for victim in sample_rows:
        observed = set(
            recover_physical_neighbors(
                platform, bank, victim, search_radius=search_radius
            )
        )
        for scheme, scrambler in candidates.items():
            predicted = set(scrambler.physical_neighbors(victim)) - {victim}
            # Distance-2 blast can add extra observed rows; the scheme
            # matches when its direct neighbours are all observed.
            if predicted.issubset(observed):
                scores[scheme] += 1
    matching = [s for s, score in scores.items() if score == len(list(sample_rows))]
    if not matching:
        raise ValueError("no known scrambling scheme matches the observations")
    # Several schemes coincide on non-discriminating rows; prefer the
    # simplest consistent explanation.  Callers that need certainty
    # should sample rows whose low address bits the schemes remap.
    if ScramblingScheme.IDENTITY in matching:
        return ScramblingScheme.IDENTITY
    return matching[0]
