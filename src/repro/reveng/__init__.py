"""Reverse engineering of DRAM internals (Sections 4.2 and 5.4.1).

* :mod:`repro.reveng.rowmapping` -- recover the in-DRAM logical-to-
  physical row scrambling by observing which logical rows disturb a
  victim.
* :mod:`repro.reveng.subarray` -- recover subarray boundaries with
  single-sided hammer probes + k-means/silhouette clustering (Key
  Insight 1) and invalidate candidates with RowClone (Key Insight 2).
"""

from repro.reveng.rowmapping import recover_physical_neighbors, infer_scrambling_scheme
from repro.reveng.subarray import SubarrayReverseEngineer, SubarrayInference

__all__ = [
    "recover_physical_neighbors",
    "infer_scrambling_scheme",
    "SubarrayReverseEngineer",
    "SubarrayInference",
]
