"""repro: reproduction of "Spatial Variation-Aware Read Disturbance
Defenses" (Svärd, HPCA 2024).

The library has four layers:

1. **Substrates** -- :mod:`repro.dram` (a behavioural DDR4 device
   model) and :mod:`repro.faults` (a read-disturbance fault model
   calibrated to the paper's published measurements).
2. **Characterization** -- :mod:`repro.bender` (a DRAM Bender-style
   testing platform), :mod:`repro.characterization` (Algorithm 1),
   :mod:`repro.reveng` and :mod:`repro.analysis` (subarray reverse
   engineering and spatial-feature statistics).
3. **Svärd and defenses** -- :mod:`repro.core` (the Svärd mechanism)
   and :mod:`repro.defenses` (PARA, BlockHammer, Hydra, AQUA, RRS).
4. **Evaluation** -- :mod:`repro.sim` (an event-driven DDR4 memory
   system simulator), :mod:`repro.workloads`, and
   :mod:`repro.experiments` (one module per paper figure/table).
"""

__version__ = "1.0.0"

from repro.dram import DramDevice, DramGeometry, TimingParameters
from repro.faults import DisturbanceModel, ModuleSpec, MODULES, module_by_label

__all__ = [
    "__version__",
    "DramDevice",
    "DramGeometry",
    "TimingParameters",
    "DisturbanceModel",
    "ModuleSpec",
    "MODULES",
    "module_by_label",
]
