"""Vulnerability binning (Section 6.4).

Svärd stores a small bin id per row instead of the full ``HC_first``
value.  Bins partition the observed HC_first range; each bin's
effective threshold is its *lower* edge, so a row is never treated as
stronger than it is -- the property Svärd's security argument rests on
(Section 6.3).

The paper notes "the number of bins in each distribution is smaller
than 16", hence 4-bit identifiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

#: Section 6.4: 4 bits identify a bin.
BITS_PER_ROW = 4
MAX_BINS = 1 << BITS_PER_ROW


@dataclass(frozen=True)
class VulnerabilityBins:
    """A partition of HC_first values into at most 16 bins.

    ``edges`` are the ascending lower edges of each bin; bin ``i``
    covers ``[edges[i], edges[i+1])`` (the last bin is unbounded
    above).  ``threshold_of(i) == edges[i]`` -- the conservative
    threshold Svärd reports for rows in that bin.
    """

    edges: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=np.float64)
        if edges.ndim != 1 or len(edges) == 0:
            raise ValueError("need at least one bin edge")
        if len(edges) > MAX_BINS:
            raise ValueError(f"at most {MAX_BINS} bins (4-bit ids)")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("bin edges must be strictly increasing")
        if edges[0] <= 0:
            raise ValueError("bin edges must be positive")
        object.__setattr__(self, "edges", edges)

    # ------------------------------------------------------------------

    @classmethod
    def geometric(
        cls, worst_case: float, best_case: float, n_bins: int = MAX_BINS
    ) -> "VulnerabilityBins":
        """Geometrically spaced bins between worst and best HC_first.

        Geometric spacing matches how defense overheads scale (they are
        roughly inversely proportional to the threshold), so every bin
        buys a similar relative overhead reduction.
        """
        if not 1 <= n_bins <= MAX_BINS:
            raise ValueError(f"n_bins must be in [1, {MAX_BINS}]")
        if worst_case <= 0 or best_case < worst_case:
            raise ValueError("require 0 < worst_case <= best_case")
        if n_bins == 1 or best_case == worst_case:
            return cls(edges=np.array([worst_case]))
        ratio = (best_case / worst_case) ** (1.0 / n_bins)
        edges = worst_case * ratio ** np.arange(n_bins)
        # A value range too narrow for the requested bin count would
        # produce duplicate edges; keep the distinct ones.
        edges = np.unique(edges)
        return cls(edges=edges)

    @classmethod
    def from_values(
        cls, values: np.ndarray, n_bins: int = MAX_BINS
    ) -> "VulnerabilityBins":
        """Bins spanning an observed profile's value range."""
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            raise ValueError("no values")
        return cls.geometric(float(arr.min()), float(arr.max()), n_bins)

    # ------------------------------------------------------------------

    @property
    def n_bins(self) -> int:
        return len(self.edges)

    @property
    def bits_per_row(self) -> int:
        return BITS_PER_ROW

    def bin_of(self, hc_first: float) -> int:
        """Bin id for one HC_first value.

        Values below the first edge (possible after aging) clamp to
        bin 0, keeping the conservative floor.
        """
        index = int(np.searchsorted(self.edges, hc_first, side="right")) - 1
        return max(0, index)

    def bin_ids(self, values: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bin_of`."""
        idx = np.searchsorted(self.edges, np.asarray(values), side="right") - 1
        return np.maximum(idx, 0).astype(np.int8)

    def threshold_of(self, bin_id: int) -> float:
        """The conservative (lower-edge) threshold of a bin."""
        if not 0 <= bin_id < self.n_bins:
            raise ValueError(f"bin id {bin_id} out of range")
        return float(self.edges[bin_id])

    def thresholds(self, values: np.ndarray) -> np.ndarray:
        """Per-value conservative thresholds (never above the value)."""
        return self.edges[self.bin_ids(values)]
