"""The Svärd mechanism (Section 6).

On every row activation the memory controller (or the DRAM chip)
queries Svärd with the activated row address; Svärd returns the
``HC_first`` threshold of the *potential victim rows* -- conservative
for weak rows, relaxed for strong ones.  The deployed read-disturbance
defense uses that threshold instead of the module-wide worst case.

Two metadata storage options from Section 6.2 are modelled:

* :class:`McTableStore` -- an SRAM table in the memory controller with
  one 4-bit entry per DRAM row.
* :class:`InDramStore` -- four extra bits per DRAM row stored with the
  data-integrity metadata, fetched in parallel with the activation
  (zero added latency) and co-refreshed by the defense's preventive
  actions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.binning import VulnerabilityBins
from repro.core.profile import VulnerabilityProfile


class MetadataStore(Protocol):
    """Where the per-row bin ids live."""

    def bin_id(self, bank: int, row: int) -> int:
        """The stored 4-bit bin id of one row."""

    def storage_bits(self) -> int:
        """Total metadata bits held by this store."""


@dataclass
class McTableStore:
    """Per-row bin-id table in the memory controller (option A).

    Lookup latency is hidden under the row activation (the Section 6.4
    CACTI estimate is 0.47 ns against a ~14 ns tRCD).
    """

    bins_per_bank: Dict[int, np.ndarray]

    def bin_id(self, bank: int, row: int) -> int:
        banks = sorted(self.bins_per_bank)
        table = self.bins_per_bank[banks[bank % len(banks)] if bank not in self.bins_per_bank else bank]
        return int(table[row % len(table)])

    def storage_bits(self) -> int:
        return 4 * sum(len(t) for t in self.bins_per_bank.values())


@dataclass
class InDramStore:
    """Bin ids in the DRAM rows' integrity bits (option B).

    The id arrives with the first read of the activated row, so it
    adds no latency; the bits live in the disturbed row itself, so the
    defense's preventive refreshes must cover them -- modelled by the
    ``co_refreshed`` flag the defenses assert.
    """

    bins_per_bank: Dict[int, np.ndarray]
    co_refreshed: bool = True

    def bin_id(self, bank: int, row: int) -> int:
        banks = sorted(self.bins_per_bank)
        table = self.bins_per_bank[banks[bank % len(banks)] if bank not in self.bins_per_bank else bank]
        return int(table[row % len(table)])

    def storage_bits(self) -> int:
        return 4 * sum(len(t) for t in self.bins_per_bank.values())


@dataclass
class Svard:
    """Svärd: per-row threshold provider for read-disturbance defenses."""

    profile: VulnerabilityProfile
    bins: VulnerabilityBins
    store: MetadataStore

    @classmethod
    def build(
        cls,
        profile: VulnerabilityProfile,
        *,
        n_bins: int = 16,
        storage: str = "mc-table",
    ) -> "Svard":
        """Classify a profile into bins and populate a metadata store.

        ``storage`` selects Section 6.2's implementation option:
        ``"mc-table"`` or ``"in-dram"``.
        """
        all_values = np.concatenate(
            [profile.values(bank) for bank in profile.banks]
        )
        bins = VulnerabilityBins.from_values(all_values, n_bins)
        bins_per_bank = {
            bank: bins.bin_ids(profile.values(bank)) for bank in profile.banks
        }
        if storage == "mc-table":
            store: MetadataStore = McTableStore(bins_per_bank=bins_per_bank)
        elif storage == "in-dram":
            store = InDramStore(bins_per_bank=bins_per_bank)
        else:
            raise ValueError(f"unknown storage option {storage!r}")
        return cls(profile=profile, bins=bins, store=store)

    # ------------------------------------------------------------------

    def threshold_for(self, bank: int, row: int) -> float:
        """The HC_first threshold Svärd reports for one (victim) row."""
        return self.bins.threshold_of(self.store.bin_id(bank, row))

    def aggressiveness_scale(self, bank: int, row: int) -> float:
        """How much less aggressive a defense can be for this row.

        1.0 for rows in the weakest bin; larger for stronger rows.
        """
        return self.threshold_for(bank, row) / self.profile.worst_case

    def worst_case_threshold(self) -> float:
        return float(self.bins.threshold_of(0))

    # ------------------------------------------------------------------
    # Security (Section 6.3)
    # ------------------------------------------------------------------

    def verify_security_invariant(self) -> bool:
        """No row's reported threshold exceeds its actual HC_first.

        This is the property that makes Svärd security-preserving: a
        defense configured with Svärd's threshold acts at least as
        early as the row's own vulnerability requires.
        """
        for bank in self.profile.banks:
            values = self.profile.values(bank)
            thresholds = self.bins.thresholds(values)
            if np.any(thresholds > values):
                return False
        return True

    def overprotection_factor(self) -> float:
        """Mean factor by which the no-Svärd configuration overprotects.

        Without Svärd every row is treated as the worst-case row;
        this reports ``mean(HC_first / worst_case)`` -- the headroom
        Svärd converts into fewer preventive actions.
        """
        total, count = 0.0, 0
        worst = self.profile.worst_case
        for bank in self.profile.banks:
            values = self.profile.values(bank)
            total += float(np.sum(values / worst))
            count += len(values)
        return total / count
