"""Hardware-cost model for Svärd's metadata (Section 6.4).

The paper evaluates two storage options:

* an SRAM table in the memory controller: CACTI estimates 0.056 mm^2
  per 64K-row bank and a 0.47 ns access (fully hidden under the
  ~14 ns row activation); a dual-rank, 16-banks-per-rank system over
  four channels costs 0.86% of a high-end Xeon's chip area;
* four extra bits per 8 KiB DRAM row inside the integrity metadata:
  a 0.006% DRAM array size increase and no added access latency.

This module reproduces those numbers with a small analytical model
anchored on the paper's CACTI data points.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Paper's anchor: a 64K-row x 4-bit table costs 0.056 mm^2 ...
_ANCHOR_ROWS = 64 * 1024
_ANCHOR_AREA_MM2 = 0.056
#: ... and reads in 0.47 ns.
_ANCHOR_LATENCY_NS = 0.47

#: Cascade Lake SP die area implied by the paper's 0.86% figure for
#: 2 ranks x 16 banks x 4 channels of 0.056 mm^2 tables.
CASCADE_LAKE_AREA_MM2 = (0.056 * 2 * 16 * 4) / 0.0086

#: DDR4 row activation latency the table lookup must hide under.
ROW_ACTIVATION_NS = 14.0


def mc_table_area_mm2(rows_per_bank: int, bits_per_row: int = 4) -> float:
    """SRAM area of one bank's bin-id table.

    Linear in the bit count, anchored at the paper's CACTI estimate.
    """
    if rows_per_bank < 1 or bits_per_row < 1:
        raise ValueError("table dimensions must be positive")
    bits = rows_per_bank * bits_per_row
    anchor_bits = _ANCHOR_ROWS * 4
    return _ANCHOR_AREA_MM2 * bits / anchor_bits


def mc_table_access_latency_ns(rows_per_bank: int, bits_per_row: int = 4) -> float:
    """SRAM access latency, sqrt-scaling from the CACTI anchor.

    Wordline/bitline delay grows with the array's linear dimension,
    i.e. with the square root of capacity.
    """
    if rows_per_bank < 1 or bits_per_row < 1:
        raise ValueError("table dimensions must be positive")
    bits = rows_per_bank * bits_per_row
    anchor_bits = _ANCHOR_ROWS * 4
    return _ANCHOR_LATENCY_NS * (bits / anchor_bits) ** 0.5


def in_dram_overhead_fraction(row_bytes: int = 8 * 1024, bits_per_row: int = 4) -> float:
    """Fractional DRAM array growth of storing the bin in each row."""
    if row_bytes < 1 or bits_per_row < 0:
        raise ValueError("invalid row size")
    return bits_per_row / (row_bytes * 8)


@dataclass(frozen=True)
class SvardAreaModel:
    """Cost summary for a full system configuration (Section 6.4)."""

    rows_per_bank: int = 64 * 1024
    banks_per_rank: int = 16
    ranks: int = 2
    channels: int = 4
    bits_per_row: int = 4
    row_bytes: int = 8 * 1024

    def table_area_per_bank_mm2(self) -> float:
        return mc_table_area_mm2(self.rows_per_bank, self.bits_per_row)

    def total_table_area_mm2(self) -> float:
        banks = self.banks_per_rank * self.ranks * self.channels
        return self.table_area_per_bank_mm2() * banks

    def cpu_area_overhead_fraction(
        self, cpu_area_mm2: float = CASCADE_LAKE_AREA_MM2
    ) -> float:
        """Table area as a fraction of the host CPU die."""
        if cpu_area_mm2 <= 0:
            raise ValueError("CPU area must be positive")
        return self.total_table_area_mm2() / cpu_area_mm2

    def lookup_hidden_under_activation(self) -> bool:
        """The Section 6.4 claim: lookup overlaps the row activation."""
        return (
            mc_table_access_latency_ns(self.rows_per_bank, self.bits_per_row)
            < ROW_ACTIVATION_NS
        )

    def in_dram_overhead_fraction(self) -> float:
        return in_dram_overhead_fraction(self.row_bytes, self.bits_per_row)
