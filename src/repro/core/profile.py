"""Read-disturbance vulnerability profiles.

A :class:`VulnerabilityProfile` holds the measured ``HC_first`` of
every row of every profiled bank -- the artifact the characterization
pipeline produces and Svärd consumes.

Two operations mirror the paper's evaluation methodology (Section 7.1):

* ``scaled_to_worst_case(target)`` scales every value so the profile's
  minimum equals a chosen worst-case ``HC_first`` (4K down to 64),
  modelling future, more vulnerable chips with the same *shape* of
  spatial variation.
* ``tiled_to(rows, banks)`` extends a scaled-down characterization to
  a full-size simulated DRAM configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence

import numpy as np

from repro.characterization.runner import ModuleCharacterization
from repro.faults.modules import ModuleSpec
from repro.faults.variation import SpatialVariationField


@dataclass(frozen=True)
class VulnerabilityProfile:
    """Per-row HC_first values for one module, keyed by bank."""

    module_label: str
    per_bank: Mapping[int, np.ndarray]

    def __post_init__(self) -> None:
        if not self.per_bank:
            raise ValueError("profile needs at least one bank")
        for bank, values in self.per_bank.items():
            arr = np.asarray(values)
            if arr.size == 0:
                raise ValueError(f"bank {bank} has no rows")
            if np.any(arr <= 0):
                raise ValueError(f"bank {bank} has non-positive HC_first")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_characterization(
        cls, characterization: ModuleCharacterization
    ) -> "VulnerabilityProfile":
        """Profile from measured (grid-snapped) characterization data."""
        return cls(
            module_label=characterization.module_label,
            per_bank={
                bank: profile.measured_hc_first.astype(np.float64)
                for bank, profile in characterization.banks.items()
            },
        )

    @classmethod
    def from_ground_truth(
        cls,
        spec: ModuleSpec,
        *,
        banks: Sequence[int] = (0,),
        rows_per_bank: Optional[int] = None,
        seed: int = 0,
    ) -> "VulnerabilityProfile":
        """Profile straight from the fault model's true per-row values."""
        per_bank = {}
        for bank in banks:
            field_ = spec.generate_field(
                bank=bank, rows_per_bank=rows_per_bank, seed=seed
            )
            per_bank[bank] = field_.hc_first.copy()
        return cls(module_label=spec.label, per_bank=per_bank)

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------

    @property
    def banks(self) -> Sequence[int]:
        return sorted(self.per_bank)

    @property
    def worst_case(self) -> float:
        """The module's minimum HC_first across all profiled rows."""
        return float(min(np.min(v) for v in self.per_bank.values()))

    @property
    def rows_per_bank(self) -> int:
        return len(next(iter(self.per_bank.values())))

    def values(self, bank: int) -> np.ndarray:
        key = bank if bank in self.per_bank else self.banks[bank % len(self.banks)]
        return np.asarray(self.per_bank[key])

    def hc_first(self, bank: int, row: int) -> float:
        """HC_first of one row; banks/rows beyond the profile wrap.

        Wrapping lets a profile characterized on a few banks and a
        scaled-down row count serve a full-size simulated system, the
        same way the paper applies one module's profile to all banks.
        """
        values = self.values(bank)
        return float(values[row % len(values)])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def scaled_to_worst_case(self, target_worst_case: float) -> "VulnerabilityProfile":
        """Scale all values so the minimum equals ``target_worst_case``.

        This is how the paper evaluates future chips: the spatial
        *shape* of the profile is preserved while its floor is moved to
        the HC_first under evaluation (4K ... 64).
        """
        if target_worst_case <= 0:
            raise ValueError("target worst case must be positive")
        factor = target_worst_case / self.worst_case
        return VulnerabilityProfile(
            module_label=self.module_label,
            per_bank={
                bank: np.asarray(values) * factor
                for bank, values in self.per_bank.items()
            },
        )

    def tiled_to(self, rows_per_bank: int, banks: Iterable[int]) -> "VulnerabilityProfile":
        """Materialize a profile for a larger geometry by tiling."""
        if rows_per_bank < 1:
            raise ValueError("rows_per_bank must be positive")
        bank_list = list(banks)
        if not bank_list:
            raise ValueError("need at least one bank")
        source_banks = self.banks
        per_bank = {}
        for i, bank in enumerate(bank_list):
            source = np.asarray(self.per_bank[source_banks[i % len(source_banks)]])
            repeats = -(-rows_per_bank // len(source))
            per_bank[bank] = np.tile(source, repeats)[:rows_per_bank]
        return VulnerabilityProfile(module_label=self.module_label, per_bank=per_bank)

    def normalized(self) -> Dict[int, np.ndarray]:
        """Per-bank values normalized to the global worst case."""
        worst = self.worst_case
        return {
            bank: np.asarray(values) / worst
            for bank, values in self.per_bank.items()
        }
