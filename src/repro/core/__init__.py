"""Svärd: the paper's primary contribution (Section 6).

Svärd stores a small per-row vulnerability classification (a 4-bit bin
id) and, on every row activation, hands the deployed read-disturbance
defense a threshold that matches the activated row's actual
vulnerability instead of the module-wide worst case.

* :mod:`repro.core.profile` -- per-row ``HC_first`` profiles, built
  from characterization results or ground truth, with the worst-case
  scaling of Section 7.1.
* :mod:`repro.core.binning` -- clustering rows into <= 16
  vulnerability bins with security-preserving (lower-bound) thresholds.
* :mod:`repro.core.svard` -- the mechanism itself, with the memory-
  controller table and in-DRAM metadata storage options of Section 6.2.
* :mod:`repro.core.area_model` -- the Section 6.4 hardware-cost model.
"""

from repro.core.profile import VulnerabilityProfile
from repro.core.binning import VulnerabilityBins
from repro.core.svard import Svard, MetadataStore, McTableStore, InDramStore
from repro.core.area_model import (
    SvardAreaModel,
    mc_table_area_mm2,
    mc_table_access_latency_ns,
    in_dram_overhead_fraction,
)

__all__ = [
    "VulnerabilityProfile",
    "VulnerabilityBins",
    "Svard",
    "MetadataStore",
    "McTableStore",
    "InDramStore",
    "SvardAreaModel",
    "mc_table_area_mm2",
    "mc_table_access_latency_ns",
    "in_dram_overhead_fraction",
]
