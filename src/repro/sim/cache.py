"""A set-associative last-level cache model (Table 4: 2 MiB/core).

The Fig 12 workload generators emit post-LLC miss streams directly
(controlling row locality and intensity at the DRAM interface, which
is what the defenses react to); this cache model exists for examples
and tests that want to start from raw address traces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return 1.0 - self.misses / self.accesses


class SetAssociativeCache:
    """LRU set-associative cache with 64-byte lines."""

    def __init__(
        self,
        capacity_bytes: int = 2 * 1024 * 1024,
        ways: int = 16,
        line_bytes: int = 64,
    ) -> None:
        if capacity_bytes <= 0 or ways <= 0 or line_bytes <= 0:
            raise ValueError("cache dimensions must be positive")
        n_lines = capacity_bytes // line_bytes
        if n_lines % ways:
            raise ValueError("capacity must divide evenly into ways")
        self.ways = ways
        self.line_bytes = line_bytes
        self.n_sets = n_lines // ways
        if self.n_sets < 1:
            raise ValueError("cache too small for the given ways")
        self._sets: Dict[int, OrderedDict] = {}
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        if address < 0:
            raise ValueError("negative address")
        line = address // self.line_bytes
        set_index = line % self.n_sets
        tag = line // self.n_sets
        entries = self._sets.setdefault(set_index, OrderedDict())
        self.stats.accesses += 1
        if tag in entries:
            entries.move_to_end(tag)
            return True
        self.stats.misses += 1
        if len(entries) >= self.ways:
            entries.popitem(last=False)
        entries[tag] = True
        return False

    def flush(self) -> None:
        self._sets.clear()
