"""Event-driven DDR4 memory-system simulator (the Ramulator analogue).

The paper evaluates Svärd with cycle-level Ramulator simulations of an
8-core system (Table 4).  This package implements an event-driven
simulator at DRAM-command granularity: FR-FCFS scheduling with a
column cap, open-row policy, bank/rank timing (tRCD/tRP/tRAS/tCCD/
tRRD/tFAW), periodic refresh, MLP-limited core frontends, and a
defense hook on every row activation that charges each preventive
action's DRAM cost.

* :mod:`repro.sim.config` -- the Table 4 system configuration.
* :mod:`repro.sim.request` -- memory request records.
* :mod:`repro.sim.cache` -- a set-associative last-level cache model.
* :mod:`repro.sim.engine` -- the event-driven simulator core.
* :mod:`repro.sim.metrics` -- weighted/harmonic speedup, max slowdown.
* :mod:`repro.sim.conformance` -- the command-granular JEDEC timing
  rulebook and checker that replays the engine's logged command
  stream as an independent oracle.
"""

from repro.sim.config import SystemConfig, MitigationCosts
from repro.sim.request import MemoryRequest
from repro.sim.cache import SetAssociativeCache
from repro.sim.engine import MemorySystem, SimulationResult, CoreResult
from repro.sim.conformance import (
    ConformanceReport,
    TimingChecker,
    TimingRule,
    Violation,
    check_run,
    timing_rules,
)
from repro.sim.metrics import (
    harmonic_speedup,
    max_slowdown,
    weighted_speedup,
    MultiProgramMetrics,
    compute_metrics,
)

__all__ = [
    "SystemConfig",
    "MitigationCosts",
    "MemoryRequest",
    "SetAssociativeCache",
    "MemorySystem",
    "SimulationResult",
    "CoreResult",
    "ConformanceReport",
    "TimingChecker",
    "TimingRule",
    "Violation",
    "check_run",
    "timing_rules",
    "weighted_speedup",
    "harmonic_speedup",
    "max_slowdown",
    "MultiProgramMetrics",
    "compute_metrics",
]
