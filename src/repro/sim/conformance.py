"""Command-granular JEDEC conformance checking.

The performance simulator is command-granular rather than
cycle-granular, and its hot paths were vectorized; nothing in the
engine itself re-checks that the command stream it implies still obeys
the JEDEC rules the paper's methodology depends on.  This module is
that backstop: an explicit timing *rulebook* -- tRCD, tRAS, tRP, tRC,
tCCD_L, tRRD_S, tFAW, tRFC, tREFI as data, in the style of
command-level DRAM test models -- and a :class:`TimingChecker` that
replays a logged command stream (see
:meth:`repro.sim.engine.MemorySystem.run`'s ``command_log``) and
reports every violation with the rule, the two commands involved, and
the (negative) slack.

The checker is a deliberately independent oracle: it shares no
scheduling state or code with the engine.  It only reads
:class:`~repro.dram.commands.TimedCommand` records and
:class:`~repro.dram.timing.TimingParameters`.

Two deliberate deviations from a cycle-accurate JEDEC model, both
consequences of the engine's command-granular approximations and both
documented where the engine makes them:

* REF is charged per bank as the bank becomes free, so logged REF
  commands carry a ``bank`` operand and the rank-level tRFC/tREFI
  rules are applied per bank.
* A defense's preventive-action burst (victim refreshes, migrations,
  swaps, counter traffic) is opaque bank-busy time; only its closing
  precharge appears in the log.  Rank-level ACT pacing (tRRD_S/tFAW)
  is therefore checked on the demand stream, which the engine paces
  *conservatively* (its rolling window also contains the unlogged
  preventive activations), so a pass here is still a pass.

Rules the engine intentionally does not model -- tRTP, tWR, tWTR --
are likewise not in the rulebook; adding one is a one-line table entry
once the engine models it.  Writing this checker also *found* one
such looseness: the engine paces back-to-back column commands by
tCCD_L on the row-hit path but only by the tBL burst occupancy right
after a row miss, so tCCD_L stays out of the rulebook until the
engine closes that gap (tBL and tCCD_L differ by well under a
nanosecond on every DDR4 grade, so no golden-protected result hinges
on it).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.dram.commands import CommandKind, TimedCommand
from repro.dram.timing import TimingParameters

#: Comparisons tolerate float-associativity noise (the engine computes
#: ``(a + tRAS) + tRP`` where the rulebook holds ``tRAS + tRP``); real
#: violations are fractions of a nanosecond or more.
DEFAULT_TOLERANCE_NS = 1e-6

#: JEDEC allows postponing up to eight REF commands, so the largest
#: legal gap between consecutive refreshes is nine intervals.
REFRESH_POSTPONE_LIMIT = 9


@dataclass(frozen=True)
class TimingRule:
    """One pairwise minimum-delay rule: ``curr >= last(prev) + delay``.

    ``scope`` is ``"bank"`` (the previous command on the *same bank*)
    or ``"rank"`` (the previous command on *any bank of the rank*).
    """

    name: str
    prev: CommandKind
    curr: CommandKind
    scope: str
    delay_ns: float

    def __post_init__(self) -> None:
        if self.scope not in ("bank", "rank"):
            raise ValueError(f"unknown rule scope {self.scope!r}")
        if self.delay_ns < 0:
            raise ValueError(f"{self.name}: delay must be non-negative")

    def __str__(self) -> str:
        return (
            f"{self.name}={self.delay_ns:g}ns "
            f"({self.prev.name}->{self.curr.name}, per {self.scope})"
        )


_COLUMN_KINDS = (CommandKind.RD, CommandKind.WR)


def timing_rules(timing: TimingParameters) -> Tuple[TimingRule, ...]:
    """The pairwise rulebook derived from one timing preset.

    The rulebook comes from the preset's *generation* -- each
    :class:`~repro.dram.timing.RuleSpec` row of
    ``timing.rule_table`` names the command pair, the scope, and the
    parameter holding the delay -- so LPDDR4 runs are checked against
    tRFCpb and the single tRRD, and DDR5 against tRFCsb, without this
    module re-listing any generation's rules.

    The two window/cadence constraints that are not command *pairs* --
    the rolling four-activate window (tFAW) and the refresh cadence
    (tREFI) -- are handled by :class:`TimingChecker` directly, driven
    by the same :class:`TimingParameters` fields.  (The per-bank tREFI
    cadence check holds for sliced refresh too: per-bank and same-bank
    rotation still refresh each bank exactly once per tREFI.)
    """
    return tuple(
        TimingRule(
            spec.name,
            CommandKind[spec.prev],
            CommandKind[spec.curr],
            spec.scope,
            getattr(timing, spec.parameter),
        )
        for spec in timing.rule_table
    )


@dataclass(frozen=True)
class Violation:
    """One broken rule: which command came too early, and by how much."""

    rule: str
    command: TimedCommand
    previous: Optional[TimedCommand]
    required_ns: float
    slack_ns: float
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.message}"


@dataclass
class ConformanceReport:
    """Outcome of one replay: per-rule check counts and violations."""

    commands: int
    checks: Dict[str, int]
    violations: List[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def violations_for(self, rule: str) -> List[Violation]:
        return [v for v in self.violations if v.rule == rule]

    def to_json_dict(self) -> dict:
        return {
            "commands": self.commands,
            "ok": self.ok,
            "checks": dict(sorted(self.checks.items())),
            "violation_count": len(self.violations),
            "violations": [
                {
                    "rule": violation.rule,
                    "time_ns": violation.command.time_ns,
                    "command": str(violation.command),
                    "previous": (
                        str(violation.previous)
                        if violation.previous is not None
                        else None
                    ),
                    "required_ns": violation.required_ns,
                    "slack_ns": violation.slack_ns,
                    "message": violation.message,
                }
                for violation in self.violations
            ],
        }

    def render_text(self, *, max_violations: int = 20) -> str:
        lines = [
            f"conformance: {self.commands} commands replayed, "
            f"{sum(self.checks.values())} rule checks, "
            f"{len(self.violations)} violation(s)"
        ]
        for rule, count in sorted(self.checks.items()):
            flagged = len(self.violations_for(rule))
            status = "ok" if not flagged else f"{flagged} VIOLATED"
            lines.append(f"  {rule:<12} {count:>8} checks  {status}")
        shown = self.violations[:max_violations]
        for violation in shown:
            lines.append(f"  {violation}")
        if len(self.violations) > len(shown):
            lines.append(
                f"  ... and {len(self.violations) - len(shown)} more"
            )
        return "\n".join(lines)


class _BankTrack:
    """Checker-side per-bank state: last command times and open row."""

    __slots__ = ("last", "open_row")

    def __init__(self) -> None:
        self.last: Dict[CommandKind, TimedCommand] = {}
        self.open_row: Optional[int] = None


class TimingChecker:
    """Replays a command log against the JEDEC rulebook.

    The checker is pure bookkeeping: a dictionary of last-command
    times per bank and per rank, a rolling ACT window per rank, and a
    linear walk over the (time-sorted) log.  It never computes a
    schedule, so it cannot inherit a scheduling bug from the engine.
    """

    def __init__(
        self,
        timing: TimingParameters,
        *,
        tolerance_ns: float = DEFAULT_TOLERANCE_NS,
        refresh_postpone_limit: int = REFRESH_POSTPONE_LIMIT,
    ) -> None:
        if tolerance_ns < 0:
            raise ValueError("tolerance must be non-negative")
        if refresh_postpone_limit < 1:
            raise ValueError("refresh postpone limit must be positive")
        self.timing = timing
        self.tolerance_ns = tolerance_ns
        self.refresh_postpone_limit = refresh_postpone_limit
        self.rules = timing_rules(timing)
        self._by_curr: Dict[CommandKind, List[TimingRule]] = {}
        for rule in self.rules:
            self._by_curr.setdefault(rule.curr, []).append(rule)

    # ------------------------------------------------------------------

    def replay(self, commands: Sequence[TimedCommand]) -> ConformanceReport:
        """Walk the log in time order and collect every violation."""
        timing = self.timing
        tolerance = self.tolerance_ns
        checks: Dict[str, int] = {rule.name: 0 for rule in self.rules}
        checks.setdefault("tFAW", 0)
        checks.setdefault("tREFI", 0)
        checks.setdefault("bank-state", 0)
        violations: List[Violation] = []

        banks: Dict[Tuple[int, int], _BankTrack] = {}
        rank_last: Dict[Tuple[int, CommandKind], TimedCommand] = {}
        act_windows: Dict[int, Deque[TimedCommand]] = {}

        def check(
            rule_name: str,
            previous: Optional[TimedCommand],
            current: TimedCommand,
            delay_ns: float,
        ) -> None:
            checks[rule_name] += 1
            if previous is None:
                return
            required = previous.time_ns + delay_ns
            slack = current.time_ns - required
            if slack < -tolerance:
                violations.append(Violation(
                    rule=rule_name,
                    command=current,
                    previous=previous,
                    required_ns=required,
                    slack_ns=slack,
                    message=(
                        f"{current} violates {rule_name}={delay_ns:g}ns "
                        f"after {previous} (slack {slack:.6g}ns)"
                    ),
                ))

        def structural(current: TimedCommand, message: str) -> None:
            checks["bank-state"] += 1
            violations.append(Violation(
                rule="bank-state",
                command=current,
                previous=None,
                required_ns=current.time_ns,
                slack_ns=0.0,
                message=f"{current}: {message}",
            ))

        # A stable sort restores global time order (the engine logs in
        # per-bank service order); ties keep emission order.
        ordered = sorted(commands, key=lambda timed: timed.time_ns)

        for timed in ordered:
            cmd = timed.command
            kind = cmd.kind
            if kind is CommandKind.WAIT:
                continue
            rank = cmd.rank
            bank_key = (rank, cmd.bank) if cmd.bank is not None else None
            track = None
            if bank_key is not None:
                track = banks.get(bank_key)
                if track is None:
                    track = banks[bank_key] = _BankTrack()

            # Pairwise rules from the declarative table.
            for rule in self._by_curr.get(kind, ()):
                if rule.scope == "bank":
                    if track is None:
                        continue
                    previous = track.last.get(rule.prev)
                else:
                    previous = rank_last.get((rank, rule.prev))
                check(rule.name, previous, timed, rule.delay_ns)

            # Window and cadence rules + bank-state structure.
            if kind is CommandKind.ACT:
                window = act_windows.setdefault(rank, deque(maxlen=4))
                if len(window) == 4:
                    check("tFAW", window[0], timed, timing.tFAW)
                window.append(timed)
                if track is not None:
                    if track.open_row is not None:
                        structural(
                            timed,
                            f"ACT while row {track.open_row} is open "
                            "(no PRE issued)",
                        )
                    track.open_row = cmd.row
            elif kind is CommandKind.PRE:
                if track is not None:
                    track.open_row = None
            elif kind in _COLUMN_KINDS:
                if track is not None and track.open_row is None:
                    structural(
                        timed, f"{kind.name} on a precharged bank"
                    )
            elif kind is CommandKind.REF:
                previous_ref = (
                    track.last.get(CommandKind.REF)
                    if track is not None
                    else rank_last.get((rank, CommandKind.REF))
                )
                limit = self.refresh_postpone_limit * timing.tREFI
                checks["tREFI"] += 1
                if previous_ref is not None:
                    gap = timed.time_ns - previous_ref.time_ns
                    if gap > limit + tolerance:
                        violations.append(Violation(
                            rule="tREFI",
                            command=timed,
                            previous=previous_ref,
                            required_ns=previous_ref.time_ns + limit,
                            slack_ns=limit - gap,
                            message=(
                                f"{timed} arrives {gap:g}ns after the "
                                f"previous REF; the refresh cadence "
                                f"allows at most "
                                f"{self.refresh_postpone_limit}x"
                                f"tREFI={limit:g}ns"
                            ),
                        ))
                elif timed.time_ns > limit + tolerance:
                    violations.append(Violation(
                        rule="tREFI",
                        command=timed,
                        previous=None,
                        required_ns=limit,
                        slack_ns=limit - timed.time_ns,
                        message=(
                            f"{timed}: first REF later than "
                            f"{self.refresh_postpone_limit}x"
                            f"tREFI={limit:g}ns"
                        ),
                    ))
                if track is not None:
                    track.open_row = None
                else:
                    # Rank-level REF: every bank of the rank loses its
                    # open row.
                    for (bank_rank, _), other in banks.items():
                        if bank_rank == rank:
                            other.open_row = None

            if track is not None:
                track.last[kind] = timed
            rank_last[(rank, kind)] = timed

        return ConformanceReport(
            commands=len(ordered),
            checks=checks,
            violations=violations,
        )


def check_run(
    system,
    *,
    timing: Optional[TimingParameters] = None,
    tolerance_ns: float = DEFAULT_TOLERANCE_NS,
) -> Tuple["SimulationResult", ConformanceReport]:
    """Run a :class:`~repro.sim.engine.MemorySystem` with logging on
    and replay the log; returns ``(result, report)``.

    Convenience wrapper used by the property tests, the smoke script,
    and ``runner check-timing``.
    """
    log: List[TimedCommand] = []
    result = system.run(command_log=log)
    checker = TimingChecker(
        timing if timing is not None else system.config.timing,
        tolerance_ns=tolerance_ns,
    )
    return result, checker.replay(log)
