"""Simulated system configuration (Table 4) and mitigation costs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DDR4_3200, TimingParameters


@dataclass(frozen=True)
class SystemConfig:
    """The paper's simulated system (Table 4), with scale knobs.

    The paper simulates 8 cores at 3.2 GHz over one DDR4 channel with
    2 ranks x 4 bank groups x 4 banks and 128K rows per bank, FR-FCFS
    with a column cap of 16, MOP address mapping, and a 2 MiB/core
    last-level cache.  ``requests_per_core`` replaces the paper's
    200M-instruction budget as the unit of work.
    """

    cores: int = 8
    ranks: int = 2
    bank_groups: int = 4
    banks_per_group: int = 4
    rows_per_bank: int = 128 * 1024
    columns_per_row: int = 128
    timing: TimingParameters = field(default_factory=lambda: DDR4_3200)
    column_cap: int = 16
    read_queue_entries: int = 64
    write_queue_entries: int = 64
    mlp_per_core: int = 4
    llc_bytes_per_core: int = 2 * 1024 * 1024
    requests_per_core: int = 2000
    #: Period of the defenses' epoch resets (None = the full tREFW).
    #: Experiments simulate a slice of a refresh window, so they
    #: compress the epoch to keep quota-per-window semantics
    #: representative (see EXPERIMENTS.md).
    defense_epoch_ns: float | None = None

    def __post_init__(self) -> None:
        if self.cores < 1 or self.ranks < 1:
            raise ValueError("cores and ranks must be positive")
        if self.column_cap < 1:
            raise ValueError("column cap must be positive")
        if self.mlp_per_core < 1:
            raise ValueError("MLP must be positive")
        if self.requests_per_core < 1:
            raise ValueError("requests_per_core must be positive")

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        return self.ranks * self.banks_per_rank


@dataclass(frozen=True)
class MitigationCosts:
    """DRAM-time cost of each preventive action, derived from timing.

    * A victim refresh is one row cycle (ACT + restore + PRE).
    * A counter read/write (Hydra) is a row cycle plus a column burst.
    * A row migration (AQUA) streams the whole row out and back.
    * A row swap (RRS) is two migrations.
    """

    timing: TimingParameters = field(default_factory=lambda: DDR4_3200)
    columns_per_row: int = 128

    @property
    def victim_refresh_ns(self) -> float:
        return self.timing.tRC

    @property
    def counter_access_ns(self) -> float:
        return self.timing.tRC + self.timing.tCL + self.timing.tBL

    @property
    def migration_ns(self) -> float:
        burst = self.columns_per_row * self.timing.column_to_column_ns
        return 2 * self.timing.tRC + 2 * burst

    @property
    def swap_ns(self) -> float:
        return 2 * self.migration_ns
