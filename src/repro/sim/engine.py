"""The event-driven memory-system simulator.

Cores issue dependent chains of memory requests (MLP = number of
chains); the memory controller queues them per bank and schedules
FR-FCFS with a column cap under DDR4 bank/rank timing.  Every row
activation is reported to the attached defense, whose preventive
actions are charged as bank-busy time (refreshes, migrations, swaps,
counter traffic) or as activation delay (throttling).

The engine is deliberately command-granular rather than cycle-
granular: every timing decision uses the JEDEC parameters, but time
advances from event to event, which keeps full Fig 12 sweeps
tractable in Python while preserving the contention behaviour the
defenses' overheads come from.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.defenses.base import (
    CounterTraffic,
    Defense,
    Mitigation,
    RowMigration,
    RowSwap,
    ThrottleDelay,
    VictimRefresh,
)
from repro.dram.commands import (
    Command,
    CommandKind,
    TimedCommand,
    act as _act,
    pre as _pre,
    rd as _rd,
    wr as _wr,
)
from repro.dram.timing import REFRESH_PER_BANK
from repro.sim.config import MitigationCosts, SystemConfig
from repro.sim.request import MemoryRequest


@dataclass(frozen=True)
class TraceStep:
    """One memory request emitted by a workload trace."""

    bank: int
    row: int
    column: int
    is_write: bool = False
    gap_ns: float = 0.0


class Trace(Protocol):
    """A per-core workload: yields the next request of one chain."""

    def next_step(self, chain: int) -> TraceStep: ...


@dataclass
class CoreResult:
    """Per-core outcome of one simulation."""

    core: int
    completed_requests: int
    finish_ns: float
    total_latency_ns: float

    @property
    def average_latency_ns(self) -> float:
        if self.completed_requests == 0:
            return 0.0
        return self.total_latency_ns / self.completed_requests


@dataclass
class SimulationResult:
    """Outcome of one run: per-core times plus controller counters."""

    cores: List[CoreResult]
    total_ns: float
    row_hits: int
    row_misses: int
    activations: int
    refreshes_issued: int

    def finish_times(self) -> List[float]:
        return [core.finish_ns for core in self.cores]

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0


class _BankState:
    """Per-bank scheduler state.

    Bank timing (``busy_until``/``wake_at``) lives in numpy arrays owned
    by :meth:`MemorySystem.run` so the refresh sweep can update every
    bank at once.
    """

    __slots__ = ("open_row", "last_act_ns", "hits_in_row", "queue")

    def __init__(self) -> None:
        self.open_row: Optional[int] = None
        self.last_act_ns = -1e18
        self.hits_in_row = 0
        self.queue: deque = deque()


class MemorySystem:
    """Wires cores, the memory controller, and an optional defense."""

    def __init__(
        self,
        config: SystemConfig,
        traces: Sequence[Trace],
        *,
        defense: Optional[Defense] = None,
        seed: int = 0,
    ) -> None:
        if len(traces) != config.cores:
            raise ValueError(
                f"{config.cores} cores need {config.cores} traces, "
                f"got {len(traces)}"
            )
        self.config = config
        self.traces = list(traces)
        self.defense = defense
        self.costs = MitigationCosts(
            timing=config.timing, columns_per_row=config.columns_per_row
        )
        self.seed = seed
        self._command_log: Optional[List[TimedCommand]] = None

    # ------------------------------------------------------------------

    def run(
        self, *, command_log: Optional[List[TimedCommand]] = None
    ) -> SimulationResult:
        """Simulate to completion.

        ``command_log``, when given, receives the implied DDR4 command
        stream as :class:`TimedCommand` records (ACT/PRE/RD/WR from
        demand servicing, per-bank REF at each bank's effective refresh
        start, and the implied PRE that ends a preventive-action burst).
        Logging is off by default and never changes a single scheduling
        decision -- results are bit-identical either way; the log is
        meant for :class:`repro.sim.conformance.TimingChecker`.  The
        log is *not* globally time-sorted (banks drain independently);
        the checker sorts it.
        """
        self._command_log = command_log
        config = self.config
        timing = config.timing
        n_banks = config.total_banks
        banks = [_BankState() for _ in range(n_banks)]
        busy_until = np.zeros(n_banks)
        wake_at = np.full(n_banks, np.inf)
        has_queue = np.zeros(n_banks, dtype=bool)
        rank_act_windows: List[deque] = [deque(maxlen=4) for _ in range(config.ranks)]
        rank_last_act = [-1e18] * config.ranks

        remaining = [config.requests_per_core] * config.cores
        in_flight = [0] * config.cores
        finish_time = [0.0] * config.cores
        total_latency = [0.0] * config.cores
        completed = [0] * config.cores

        self._stat_row_hits = 0
        self._stat_row_misses = 0
        self._stat_activations = 0
        refreshes = 0

        heap: List[Tuple[float, int, str, tuple]] = []
        seq = 0

        def push(time: float, kind: str, payload: tuple) -> None:
            nonlocal seq
            heapq.heappush(heap, (time, seq, kind, payload))
            seq += 1

        # Initial chain arrivals.
        issued = [0] * config.cores
        for core in range(config.cores):
            chains = min(config.mlp_per_core, remaining[core])
            for chain in range(chains):
                step = self.traces[core].next_step(chain)
                issued[core] += 1
                push(step.gap_ns, "arrival", (core, chain, step))

        # Periodic refresh and defense epochs.  All-bank generations
        # (DDR4) issue one REF per tREFI; sliced generations rotate --
        # LPDDR4 REFpb over the rank's banks, DDR5 REFsb over the bank
        # index within each group -- spacing slices tREFI / slices
        # apart so every bank still refreshes once per tREFI.
        refresh_slices = timing.refresh_slices(
            banks_per_rank=config.banks_per_rank,
            banks_per_group=config.banks_per_group,
        )
        if refresh_slices == 1:
            push(timing.tREFI, "refresh", ())
        else:
            refresh_interval = timing.tREFI / refresh_slices
            refresh_latency = timing.refresh_latency_ns
            if timing.refresh_granularity == REFRESH_PER_BANK:
                refresh_targets = [
                    [
                        rank * config.banks_per_rank + k
                        for rank in range(config.ranks)
                    ]
                    for k in range(refresh_slices)
                ]
            else:
                refresh_targets = [
                    [
                        rank * config.banks_per_rank
                        + group * config.banks_per_group
                        + k
                        for rank in range(config.ranks)
                        for group in range(config.bank_groups)
                    ]
                    for k in range(refresh_slices)
                ]
            push(refresh_interval, "refresh", (0,))
        epoch_ns = config.defense_epoch_ns or timing.tREFW
        if self.defense is not None:
            push(epoch_ns, "epoch", ())

        banks_per_rank = config.banks_per_rank

        def rank_of(bank: int) -> int:
            return bank // banks_per_rank

        # Hot-loop locals: try_schedule runs once per serviced request,
        # so the invariant attribute lookups (config knobs, bound
        # methods, trace list) are hoisted out of the closure body.
        column_cap = config.column_cap
        requests_per_core = config.requests_per_core
        pick = self._pick
        service = self._service
        traces = self.traces

        def try_schedule(bank_id: int, now: float) -> None:
            nonlocal total_completed, queued_total
            bank = banks[bank_id]
            while bank.queue:
                busy = busy_until[bank_id]
                if busy > now + 1e-9:
                    if busy < wake_at[bank_id]:
                        wake_at[bank_id] = busy
                        push(busy, "bank_free", (bank_id,))
                    return
                request = pick(bank, column_cap)
                queued_total -= 1
                if not bank.queue:
                    has_queue[bank_id] = False
                start = max(now, busy)
                finish = service(
                    bank, bank_id, request, start,
                    rank_act_windows, rank_last_act, rank_of, busy_until,
                )
                request.completion_ns = finish
                core = request.core
                completed[core] += 1
                total_completed += 1
                total_latency[core] += finish - request.arrival_ns
                in_flight[core] -= 1
                finish_time[core] = max(finish_time[core], finish)
                if issued[core] < requests_per_core:
                    step = traces[core].next_step(request.chain)
                    issued[core] += 1
                    push(finish + step.gap_ns, "arrival", (core, request.chain, step))
                now = max(now, finish)

        # ------------------------------------------------------------------
        # The event loop.
        # ------------------------------------------------------------------
        last_time = 0.0
        total_requests = config.requests_per_core * config.cores
        total_completed = 0
        queued_total = 0

        while heap:
            time, _, kind, payload = heapq.heappop(heap)
            last_time = max(last_time, time)
            if kind == "arrival":
                core, chain, step = payload
                request = MemoryRequest(
                    core=core,
                    bank=step.bank % n_banks,
                    row=step.row % config.rows_per_bank,
                    column=step.column % config.columns_per_row,
                    is_write=step.is_write,
                    arrival_ns=time,
                    chain=chain,
                )
                in_flight[core] += 1
                banks[request.bank].queue.append(request)
                queued_total += 1
                has_queue[request.bank] = True
                try_schedule(request.bank, time)
            elif kind == "bank_free":
                # Drain every bank_free at this timestamp in one go.
                # Banks are independent at equal times (nothing a bank's
                # scheduling does can retroactively wake another bank at
                # the *same* instant), so this batches the heap churn
                # without reordering any service decision.
                wake_at[payload[0]] = np.inf
                try_schedule(payload[0], time)
                while heap and heap[0][0] == time and heap[0][2] == "bank_free":
                    _, _, _, next_payload = heapq.heappop(heap)
                    wake_at[next_payload[0]] = np.inf
                    try_schedule(next_payload[0], time)
            elif kind == "refresh" and refresh_slices > 1:
                # Sliced refresh (LPDDR4 per-bank / DDR5 same-bank):
                # each REF locks only its slice's banks, scalar path.
                refreshes += 1
                slice_index = payload[0]
                for bank_id in refresh_targets[slice_index]:
                    ref_start = max(float(busy_until[bank_id]), time)
                    if command_log is not None:
                        command_log.append(TimedCommand(
                            ref_start,
                            Command(
                                CommandKind.REF,
                                rank=rank_of(bank_id),
                                bank=bank_id,
                            ),
                        ))
                    busy_until[bank_id] = ref_start + refresh_latency
                    banks[bank_id].open_row = None
                    if has_queue[bank_id] and busy_until[bank_id] < wake_at[bank_id]:
                        wake_at[bank_id] = busy_until[bank_id]
                        push(float(busy_until[bank_id]), "bank_free", (bank_id,))
                if total_completed < total_requests:
                    push(
                        time + refresh_interval,
                        "refresh",
                        ((slice_index + 1) % refresh_slices,),
                    )
            elif kind == "refresh":
                refreshes += 1
                if command_log is not None:
                    # The all-bank refresh is charged per bank as the
                    # bank becomes free (busy banks finish their work
                    # first); log each bank's effective refresh start,
                    # the instant its tRFC lockout begins.
                    for bank_id in range(n_banks):
                        command_log.append(TimedCommand(
                            max(float(busy_until[bank_id]), time),
                            Command(
                                CommandKind.REF,
                                rank=rank_of(bank_id),
                                bank=bank_id,
                            ),
                        ))
                # All-bank refresh: one vectorized timing sweep instead
                # of a per-bank pass.
                np.maximum(busy_until, time, out=busy_until)
                busy_until += timing.tRFC
                for bank in banks:
                    bank.open_row = None
                # flatnonzero walks banks in ascending order -- the same
                # push order the per-bank loop produced.
                for bank_id in np.flatnonzero(has_queue & (busy_until < wake_at)):
                    wake_at[bank_id] = busy_until[bank_id]
                    push(busy_until[bank_id], "bank_free", (int(bank_id),))
                if total_completed < total_requests:
                    push(time + timing.tREFI, "refresh", ())
            elif kind == "epoch":
                if self.defense is not None:
                    self.defense.on_refresh_window(time)
                    if total_completed < total_requests:
                        push(time + epoch_ns, "epoch", ())
            if total_completed >= total_requests and queued_total == 0:
                break

        cores = [
            CoreResult(
                core=core,
                completed_requests=completed[core],
                finish_ns=float(finish_time[core]),
                total_latency_ns=float(total_latency[core]),
            )
            for core in range(config.cores)
        ]
        return SimulationResult(
            cores=cores,
            total_ns=float(last_time),
            row_hits=self._stat_row_hits,
            row_misses=self._stat_row_misses,
            activations=self._stat_activations,
            refreshes_issued=refreshes,
        )

    # ------------------------------------------------------------------

    def _pick(self, bank: _BankState, column_cap: int) -> MemoryRequest:
        """FR-FCFS with a column cap: prefer row hits, oldest first."""
        if bank.open_row is not None and bank.hits_in_row < column_cap:
            for index, request in enumerate(bank.queue):
                if request.row == bank.open_row:
                    del bank.queue[index]
                    return request
        return bank.queue.popleft()

    def _service(
        self,
        bank: _BankState,
        bank_id: int,
        request: MemoryRequest,
        start: float,
        rank_act_windows: List[deque],
        rank_last_act: List[float],
        rank_of,
        busy_until: np.ndarray,
    ) -> float:
        """Serve one request; returns its completion time."""
        # One attribute fetch per timing parameter per call: this is
        # the hottest function in a Fig 12 sweep, and the dataclass
        # attribute walk (self -> config -> timing -> field) shows up.
        timing = self.config.timing
        tRCD = timing.tRCD
        tCL = timing.tCL
        tBL = timing.tBL
        log = self._command_log
        t = start
        if bank.open_row == request.row:
            self._stat_row_hits += 1
            data_start = max(t, bank.last_act_ns + tRCD)
            # Summed left-to-right exactly as before the locals were
            # hoisted: float addition is order-sensitive and these
            # results are golden-protected bit-for-bit.
            finish = data_start + tCL + tBL
            busy_until[bank_id] = data_start + timing.column_to_column_ns
            bank.hits_in_row += 1
            if log is not None:
                column_cmd = _wr if request.is_write else _rd
                log.append(TimedCommand(
                    data_start,
                    column_cmd(bank_id, request.column, rank=rank_of(bank_id)),
                ))
            return finish

        # Row miss: precharge (if open) + activate.  The scheduler
        # does not track bank-group adjacency, so it paces ACTs at the
        # generation's rank-level minimum (tRRD_S with bank groups,
        # the single tRRD without).
        tRRD_S = timing.act_to_act_ns
        tFAW = timing.tFAW
        rank = rank_of(bank_id)
        self._stat_row_misses += 1
        if bank.open_row is not None:
            # Split from the original one-liner `t = max(...) + tRP`
            # with identical operations in identical order, so the
            # PRE issue time is observable for the log.
            t = max(t, bank.last_act_ns + timing.tRAS)
            if log is not None:
                log.append(TimedCommand(t, _pre(bank_id, rank=rank)))
            t = t + timing.tRP
        act_time = max(t, rank_last_act[rank] + tRRD_S)
        window = rank_act_windows[rank]
        if len(window) == 4:
            act_time = max(act_time, window[0] + tFAW)
        if log is not None:
            log.append(TimedCommand(
                act_time, _act(bank_id, request.row, rank=rank)
            ))

        chain_delay = 0.0
        preventive: List[float] = []
        if self.defense is not None:
            mitigations = self.defense.on_activation(bank_id, request.row, act_time)
            chain_delay, preventive = self._mitigation_costs(mitigations)
        self._stat_activations += 1

        rank_last_act[rank] = act_time
        window.append(act_time)

        bank.open_row = request.row
        bank.last_act_ns = act_time
        bank.hits_in_row = 1
        data_start = act_time + tRCD
        if log is not None:
            column_cmd = _wr if request.is_write else _rd
            log.append(TimedCommand(
                data_start, column_cmd(bank_id, request.column, rank=rank)
            ))
        # Throttling (BlockHammer) stalls the issuing chain, not the
        # bank: other requests keep flowing while the aggressor waits.
        finish = data_start + tCL + tBL + chain_delay

        # Preventive actions are real DRAM activations: they occupy the
        # bank *and* consume rank-level ACT bandwidth (tRRD/tFAW), which
        # is how low-threshold defenses saturate the memory system.
        free_at = data_start + tBL
        for occupancy in preventive:
            act = max(free_at, rank_last_act[rank] + tRRD_S)
            if len(window) == 4:
                act = max(act, window[0] + tFAW)
            window.append(act)
            rank_last_act[rank] = act
            free_at = act + occupancy
        busy_until[bank_id] = free_at
        if preventive:
            # The preventive activations end with the bank precharged;
            # the just-opened demand row is lost.
            bank.open_row = None
            bank.hits_in_row = 0
            if log is not None:
                # Preventive bursts are modeled as opaque bank-busy
                # time (each occupancy already includes a full row
                # cycle), so only the closing precharge is observable:
                # the bank is usable again tRP after it.
                log.append(TimedCommand(
                    free_at - timing.tRP, _pre(bank_id, rank=rank)
                ))
        return finish

    def _mitigation_costs(
        self, mitigations: Sequence[Mitigation]
    ) -> Tuple[float, List[float]]:
        """(chain delay, per-preventive-ACT occupancy list) of actions.

        Each entry of the occupancy list is one preventive activation
        and the time the bank stays busy with it: a row cycle for a
        victim refresh or counter access, a row cycle plus the column
        burst for each half of a migration/swap.
        """
        costs = self.costs
        burst = self.config.columns_per_row * self.config.timing.column_to_column_ns
        delay = 0.0
        preventive: List[float] = []
        for mitigation in mitigations:
            if isinstance(mitigation, ThrottleDelay):
                delay += mitigation.delay_ns
            elif isinstance(mitigation, VictimRefresh):
                preventive.extend(
                    [costs.victim_refresh_ns] * len(mitigation.rows)
                )
            elif isinstance(mitigation, RowMigration):
                # Read the source row out, write the destination row.
                preventive.extend([costs.victim_refresh_ns + burst] * 2)
            elif isinstance(mitigation, RowSwap):
                preventive.extend([costs.victim_refresh_ns + burst] * 4)
            elif isinstance(mitigation, CounterTraffic):
                preventive.extend(
                    [costs.counter_access_ns]
                    * (mitigation.reads + mitigation.writes)
                )
        return delay, preventive
