"""Memory request records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class MemoryRequest:
    """One DRAM request as seen by the memory controller."""

    core: int
    bank: int  # flat bank id across ranks
    row: int
    column: int
    is_write: bool = False
    arrival_ns: float = 0.0
    chain: int = 0
    completion_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.core < 0 or self.bank < 0 or self.row < 0 or self.column < 0:
            raise ValueError("request coordinates must be non-negative")

    @property
    def latency_ns(self) -> float:
        if self.completion_ns is None:
            raise ValueError("request has not completed")
        return self.completion_ns - self.arrival_ns
