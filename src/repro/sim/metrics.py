"""Multiprogrammed performance metrics (Section 7.1).

The paper reports system throughput as *weighted speedup*, job
turnaround as *harmonic speedup*, and fairness as *maximum slowdown*,
all relative to each workload running alone on the same system.

With a fixed per-core work unit (N requests), a core's performance is
inversely proportional to its completion time, so:

* ``weighted speedup  = sum_i t_alone_i / t_shared_i``
* ``harmonic speedup  = n / sum_i (t_shared_i / t_alone_i)``
* ``max slowdown      = max_i t_shared_i / t_alone_i``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


def _validate(alone: Sequence[float], shared: Sequence[float]) -> None:
    if len(alone) != len(shared) or not alone:
        raise ValueError("need matching, non-empty alone/shared times")
    if any(t <= 0 for t in alone) or any(t <= 0 for t in shared):
        raise ValueError("times must be positive")


def weighted_speedup(alone_times: Sequence[float], shared_times: Sequence[float]) -> float:
    """System throughput: sum of per-core relative speeds."""
    _validate(alone_times, shared_times)
    return sum(a / s for a, s in zip(alone_times, shared_times))


def harmonic_speedup(alone_times: Sequence[float], shared_times: Sequence[float]) -> float:
    """Job-turnaround metric: harmonic mean of relative speeds."""
    _validate(alone_times, shared_times)
    return len(alone_times) / sum(s / a for a, s in zip(alone_times, shared_times))


def max_slowdown(alone_times: Sequence[float], shared_times: Sequence[float]) -> float:
    """Fairness metric: the worst per-core slowdown."""
    _validate(alone_times, shared_times)
    return max(s / a for a, s in zip(alone_times, shared_times))


@dataclass(frozen=True)
class MultiProgramMetrics:
    """The three Fig 12 metrics for one workload mix."""

    weighted_speedup: float
    harmonic_speedup: float
    max_slowdown: float

    def normalized_to(self, baseline: "MultiProgramMetrics") -> "MultiProgramMetrics":
        """Normalize to a no-defense baseline (Fig 12's y-axes)."""
        return MultiProgramMetrics(
            weighted_speedup=self.weighted_speedup / baseline.weighted_speedup,
            harmonic_speedup=self.harmonic_speedup / baseline.harmonic_speedup,
            max_slowdown=self.max_slowdown / baseline.max_slowdown,
        )


def compute_metrics(
    alone_times: Sequence[float], shared_times: Sequence[float]
) -> MultiProgramMetrics:
    return MultiProgramMetrics(
        weighted_speedup=weighted_speedup(alone_times, shared_times),
        harmonic_speedup=harmonic_speedup(alone_times, shared_times),
        max_slowdown=max_slowdown(alone_times, shared_times),
    )
