"""Aging model (Section 5.5, Fig 10).

The paper re-characterizes module H3 after 68 days of continuous
double-sided hammering at 80 C and finds that a small, HC_first-
dependent fraction of rows drops to the next lower hammer-count grid
value, while the strongest rows (HC_first = 128K) never change.

:data:`AGING_DROP_FRACTIONS` encodes the transition fractions read
from Fig 10; :class:`AgingModel` applies them (scaled to an arbitrary
stress duration) to a vulnerability field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.faults.variation import HC_GRID, SpatialVariationField

K = 1024

#: Fig 10: fraction of rows at each before-aging HC_first that moved to
#: the next lower grid value after 68 days of stress.  Grid values not
#: listed did not change (notably 96K and 128K).
AGING_DROP_FRACTIONS: Mapping[int, float] = {
    12 * K: 0.004,
    16 * K: 0.001,
    24 * K: 0.040,
    32 * K: 0.077,
    40 * K: 0.091,
    48 * K: 0.005,
    56 * K: 0.013,
}

#: Stress duration of the paper's experiment.
REFERENCE_DAYS = 68.0


@dataclass(frozen=True)
class AgingModel:
    """Applies HC_first drift due to prolonged hammer stress.

    The model is memoryless in grid space: a row at grid value ``g``
    drops to the previous grid value with the Fig 10 probability,
    scaled linearly with stress duration (clamped to [0, 1]).
    """

    days: float = REFERENCE_DAYS
    temperature_c: float = 80.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.days < 0:
            raise ValueError("days must be non-negative")

    def drop_probability(self, measured_hc_first: int) -> float:
        """Probability that a row at this grid value drops one step."""
        base = AGING_DROP_FRACTIONS.get(int(measured_hc_first), 0.0)
        return min(1.0, base * self.days / REFERENCE_DAYS)

    def age_measured_values(
        self, measured: np.ndarray, grid: Sequence[int] = HC_GRID
    ) -> np.ndarray:
        """Return post-aging grid values for an array of measured ones."""
        grid_list = sorted(int(g) for g in grid)
        index_of = {g: i for i, g in enumerate(grid_list)}
        rng = np.random.default_rng(np.random.SeedSequence([self.seed, 0xA9E]))
        aged = np.asarray(measured, dtype=np.int64).copy()
        for value in np.unique(aged):
            p = self.drop_probability(int(value))
            if p <= 0.0 or int(value) not in index_of:
                continue
            i = index_of[int(value)]
            if i == 0:
                continue
            mask = aged == value
            drops = rng.random(mask.sum()) < p
            lower = grid_list[i - 1]
            subset = np.where(mask)[0][drops]
            aged[subset] = lower
        return aged

    def age_field(self, field_: SpatialVariationField) -> SpatialVariationField:
        """Return a copy of a ground-truth field with aged HC_first.

        True thresholds of dropped rows are pulled just below their new
        grid value so a re-characterization measures the drop.
        """
        measured = field_.measured_hc_first()
        aged_measured = self.age_measured_values(measured)
        hc = field_.hc_first.copy()
        dropped = aged_measured < measured
        hc[dropped] = aged_measured[dropped] * 0.97
        return SpatialVariationField(
            params=field_.params,
            hc_first=hc,
            ber_sat=field_.ber_sat.copy(),
            wcdp_index=field_.wcdp_index.copy(),
        )

    def transition_matrix(
        self, measured_before: np.ndarray, measured_after: np.ndarray,
        grid: Sequence[int] = HC_GRID,
    ) -> Dict[Tuple[int, int], float]:
        """Fig 10's marker data: P(after | before) for observed pairs."""
        before = np.asarray(measured_before, dtype=np.int64)
        after = np.asarray(measured_after, dtype=np.int64)
        if before.shape != after.shape:
            raise ValueError("before/after shapes differ")
        result: Dict[Tuple[int, int], float] = {}
        for b in np.unique(before):
            mask = before == b
            total = mask.sum()
            for a in np.unique(after[mask]):
                count = int(((after == a) & mask).sum())
                result[(int(b), int(a))] = count / total
        return result
