"""Read-disturbance fault models.

This package is the substitution for the paper's 144 real DDR4 chips:
a per-row RowHammer/RowPress fault model whose parameters are
calibrated to the distributions the paper publishes (Table 5, Figs
3-7, and Fig 10).

* :mod:`repro.faults.datapatterns` -- Table 2 data patterns and the
  worst-case data pattern machinery.
* :mod:`repro.faults.variation` -- spatial variation field generation
  (per-row ``HC_first`` and saturated ``BER``).
* :mod:`repro.faults.modules` -- the registry of the 15 tested modules
  with per-module calibration.
* :mod:`repro.faults.disturbance` -- the device-attached fault model
  implementing the disturbance-observer interface.
* :mod:`repro.faults.aging` -- the Fig 10 aging drift model.
"""

from repro.faults.datapatterns import DataPattern, DATA_PATTERNS, bitwise_inverse
from repro.faults.variation import VariationFieldParams, SpatialVariationField
from repro.faults.modules import ModuleSpec, MODULES, module_by_label, Manufacturer
from repro.faults.disturbance import DisturbanceModel, RowVulnerability
from repro.faults.aging import AgingModel, AGING_DROP_FRACTIONS

__all__ = [
    "DataPattern",
    "DATA_PATTERNS",
    "bitwise_inverse",
    "VariationFieldParams",
    "SpatialVariationField",
    "ModuleSpec",
    "MODULES",
    "module_by_label",
    "Manufacturer",
    "DisturbanceModel",
    "RowVulnerability",
    "AgingModel",
    "AGING_DROP_FRACTIONS",
]
