"""Data patterns used in the paper's tests (Table 2).

Each pattern is a pair of fill bytes: one written to the aggressor
rows and one to the victim row.  The paper tests six patterns and
defines the worst-case data pattern (WCDP) of a row as the one that
yields the largest BER at a hammer count of 128K.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple


def bitwise_inverse(fill: int) -> int:
    """Invert a fill byte (the paper's ``bitwise_inverse``)."""
    if not 0 <= fill <= 0xFF:
        raise ValueError(f"fill byte {fill:#x} out of range")
    return fill ^ 0xFF


class DataPattern(Enum):
    """Table 2: (aggressor fill byte, victim fill byte)."""

    ROW_STRIPE = ("RS", 0xFF, 0x00)
    ROW_STRIPE_INV = ("RSI", 0x00, 0xFF)
    COLUMN_STRIPE = ("CS", 0xAA, 0xAA)
    COLUMN_STRIPE_INV = ("CSI", 0x55, 0x55)
    CHECKERBOARD = ("CB", 0xAA, 0x55)
    CHECKERBOARD_INV = ("CBI", 0x55, 0xAA)

    def __init__(self, short_name: str, aggressor_fill: int, victim_fill: int):
        self.short_name = short_name
        self.aggressor_fill = aggressor_fill
        self.victim_fill = victim_fill

    @property
    def bit_difference_fraction(self) -> float:
        """Fraction of bit positions where victim and aggressor differ."""
        diff = self.aggressor_fill ^ self.victim_fill
        return bin(diff).count("1") / 8.0

    @classmethod
    def from_fills(
        cls, aggressor_fill: int, victim_fill: int
    ) -> Optional["DataPattern"]:
        """The Table 2 pattern matching two fill bytes, if any."""
        for pattern in cls:
            if (
                pattern.aggressor_fill == aggressor_fill
                and pattern.victim_fill == victim_fill
            ):
                return pattern
        return None

    @property
    def inverse(self) -> "DataPattern":
        """The pattern with both fills inverted."""
        return {
            DataPattern.ROW_STRIPE: DataPattern.ROW_STRIPE_INV,
            DataPattern.ROW_STRIPE_INV: DataPattern.ROW_STRIPE,
            DataPattern.COLUMN_STRIPE: DataPattern.COLUMN_STRIPE_INV,
            DataPattern.COLUMN_STRIPE_INV: DataPattern.COLUMN_STRIPE,
            DataPattern.CHECKERBOARD: DataPattern.CHECKERBOARD_INV,
            DataPattern.CHECKERBOARD_INV: DataPattern.CHECKERBOARD,
        }[self]


#: Test order used by Algorithm 1.
DATA_PATTERNS: Tuple[DataPattern, ...] = (
    DataPattern.ROW_STRIPE,
    DataPattern.ROW_STRIPE_INV,
    DataPattern.COLUMN_STRIPE,
    DataPattern.COLUMN_STRIPE_INV,
    DataPattern.CHECKERBOARD,
    DataPattern.CHECKERBOARD_INV,
)

#: Patterns that can plausibly be a row's WCDP.  Column stripes charge
#: victim and aggressor cells identically, so they are never the most
#: effective pattern in the model (and rarely are on real chips).
WCDP_CANDIDATES: Tuple[DataPattern, ...] = (
    DataPattern.ROW_STRIPE,
    DataPattern.ROW_STRIPE_INV,
    DataPattern.CHECKERBOARD,
    DataPattern.CHECKERBOARD_INV,
)
