"""The read-disturbance fault model.

:class:`DisturbanceModel` attaches to a :class:`repro.dram.DramDevice`
as its disturbance observer.  It tracks, per physical row, the
*effective hammer exposure* accumulated since the row's charge was last
restored (by an activation, write, or refresh of the row itself), and
converts exposure into persistent bitflips in the device's cell array.

Model summary (calibration rationale in DESIGN.md):

* Each activation of a physical row adds 0.5 hammer-pair equivalents
  of exposure to its in-subarray neighbours at distance 1 and a damped
  amount at distance 2.  Rows in other subarrays are never disturbed
  (sense-amplifier stripes isolate them) -- the property the paper's
  subarray reverse engineering exploits.
* Keeping the aggressor open longer (RowPress) multiplies exposure by
  ``(tAggOn / 36 ns) ** rowpress_exponent``.
* Non-worst-case data patterns scale exposure by an affinity <= 1.
* A row flips its first bit when effective exposure reaches the row's
  ``HC_first`` and accumulates bitflips towards ``ber_sat`` (its Fig 3
  BER at a hammer count of 128K) as exposure grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.faults.datapatterns import DataPattern, WCDP_CANDIDATES
from repro.faults.modules import ModuleSpec
from repro.faults.variation import HC_128K, HC_GRID, SpatialVariationField

#: Reference aggressor-on time: the paper's minimum tRAS setting.
T_AGG_ON_MIN_NS = 36.0

#: Exposure weight of a distance-2 neighbour relative to distance-1.
BLAST_DAMPING = 0.12

#: BER growth exponent: flips accumulate convexly above HC_first.
BER_GROWTH_EXPONENT = 2.0

#: BER never exceeds this multiple of the row's calibrated saturation.
BER_OVERSHOOT_CAP = 1.6

_AFFINITY_SAME = 1.0
_AFFINITY_INVERSE = 0.92
_AFFINITY_CROSS = 0.84
_AFFINITY_COLUMN_STRIPE = 0.45


def rowpress_multiplier(t_agg_on_ns: float, exponent: float = 0.55) -> float:
    """Effective-exposure multiplier of keeping the aggressor open.

    Equal to 1 at the minimum on-time (36 ns) and growing sublinearly;
    at 2 us it is roughly 9x with the default exponent, matching the
    order-of-magnitude HC_first reduction in Fig 7.
    """
    if t_agg_on_ns <= 0:
        raise ValueError("tAggOn must be positive")
    return max(1.0, (t_agg_on_ns / T_AGG_ON_MIN_NS) ** exponent)


def pattern_affinity_scalar(pattern: DataPattern, wcdp: DataPattern) -> float:
    """Exposure/BER scale factor of testing ``pattern`` on a row whose
    worst-case pattern is ``wcdp``."""
    if pattern in (DataPattern.COLUMN_STRIPE, DataPattern.COLUMN_STRIPE_INV):
        return _AFFINITY_COLUMN_STRIPE
    if pattern is wcdp:
        return _AFFINITY_SAME
    if pattern is wcdp.inverse:
        return _AFFINITY_INVERSE
    return _AFFINITY_CROSS


#: ``AFFINITY_MATRIX[p, w]`` = affinity of testing ``list(DataPattern)[p]``
#: on a row whose WCDP is ``WCDP_CANDIDATES[w]`` -- the lookup-table form
#: of :func:`pattern_affinity_scalar` the vectorized kernels index with
#: whole arrays of pattern/WCDP indices at once.
AFFINITY_MATRIX = np.array(
    [
        [pattern_affinity_scalar(pattern, wcdp) for wcdp in WCDP_CANDIDATES]
        for pattern in DataPattern
    ],
    dtype=np.float64,
)

#: Sentinel in the per-bank pattern-hint arrays: no hint recorded.
_NO_HINT = np.int8(-1)


@dataclass
class RowVulnerability:
    """Per-bank vulnerability state: ground truth plus accumulators."""

    field_: SpatialVariationField
    exposure: np.ndarray
    n_flipped: np.ndarray

    @classmethod
    def fresh(cls, field_: SpatialVariationField) -> "RowVulnerability":
        n = field_.rows
        return cls(
            field_=field_,
            exposure=np.zeros(n, dtype=np.float64),
            n_flipped=np.zeros(n, dtype=np.int64),
        )

    @property
    def subarray_rows(self) -> int:
        return self.field_.params.subarray_rows


class DisturbanceModel:
    """Device-attachable read-disturbance fault model for one module."""

    def __init__(
        self,
        spec: ModuleSpec,
        *,
        rows_per_bank: Optional[int] = None,
        banks: Sequence[int] = tuple(range(16)),
        row_bits: int = 8 * 1024 * 8,
        seed: int = 0,
        temperature_c: float = 80.0,
        blast_damping: float = BLAST_DAMPING,
    ) -> None:
        self.spec = spec
        self.rows_per_bank = rows_per_bank or spec.rows_per_bank
        self.row_bits = row_bits
        self.seed = seed
        self.temperature_c = temperature_c
        self.blast_damping = blast_damping
        self._banks: Dict[int, RowVulnerability] = {}
        self._bank_ids = tuple(banks)
        self._affine_cache: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: Per-bank int8 array of pattern hints (index into
        #: ``list(DataPattern)``, ``_NO_HINT`` where none was recorded);
        #: an array rather than a dict so the vectorized kernels can
        #: gather hints for whole row ranges at once.
        self._pattern_hint: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Ground truth accessors
    # ------------------------------------------------------------------

    def bank_state(self, bank: int) -> RowVulnerability:
        """Vulnerability state for one bank, generated on first use."""
        if bank not in self._banks:
            field_ = self.spec.generate_field(
                bank=bank, rows_per_bank=self.rows_per_bank, seed=self.seed
            )
            self._banks[bank] = RowVulnerability.fresh(field_)
        return self._banks[bank]

    def field(self, bank: int) -> SpatialVariationField:
        return self.bank_state(bank).field_

    def true_hc_first(self, bank: int) -> np.ndarray:
        """Ground-truth per-row HC_first (WCDP, minimal tAggOn)."""
        return self.field(bank).hc_first

    def worst_case_hc_first(self, bank: int) -> float:
        return float(self.field(bank).hc_first.min())

    def wcdp(self, bank: int, row: int) -> DataPattern:
        """The row's worst-case data pattern."""
        index = int(self.field(bank).wcdp_index[row])
        return WCDP_CANDIDATES[index]

    # ------------------------------------------------------------------
    # Observer interface (physical rows)
    # ------------------------------------------------------------------

    def on_activate(self, bank: int, physical_row: int) -> None:
        state = self.bank_state(bank)
        state.exposure[physical_row] = 0.0

    def on_write(self, bank: int, physical_row: int) -> None:
        state = self.bank_state(bank)
        state.exposure[physical_row] = 0.0
        state.n_flipped[physical_row] = 0

    def on_refresh(self, bank: int, first_row: int, n_rows: int) -> None:
        state = self.bank_state(bank)
        state.exposure[first_row : first_row + n_rows] = 0.0

    def on_closure(
        self, bank: int, physical_row: int, on_time_ns: float
    ) -> Mapping[int, np.ndarray]:
        return self.on_bulk_closures(bank, physical_row, on_time_ns, 1)

    def on_bulk_closures(
        self,
        bank: int,
        physical_row: int,
        on_time_ns: float,
        count: int,
        restored: frozenset = frozenset(),
    ) -> Mapping[int, np.ndarray]:
        """Apply ``count`` closures of one aggressor in a single step.

        ``restored`` lists rows being concurrently re-activated every
        iteration (the other aggressors of an interleaved hammer);
        their exposure never accumulates, so they are skipped.
        """
        state = self.bank_state(bank)
        # Closures faster than the reference on-time (timing-violating
        # RowClone sequences) disturb at most as much as the reference.
        m = rowpress_multiplier(
            max(on_time_ns, T_AGG_ON_MIN_NS), self.spec.rowpress_exponent
        )
        victims: List[int] = []
        for victim, weight in self._neighbors(state, physical_row):
            if victim in restored:
                continue
            state.exposure[victim] += 0.5 * m * weight * count
            victims.append(victim)
        if not victims:
            return {}
        return self.materialize_bank(bank, np.asarray(victims, dtype=np.int64))

    def set_pattern_hint(self, bank: int, row: int, pattern: DataPattern) -> None:
        """Tell the model which Table 2 pattern a victim row holds.

        The test platform calls this when initializing rows; it drives
        the data-pattern affinity.  Rows without a hint are treated as
        holding their worst-case pattern (conservative).
        """
        self._hint_array(bank)[row] = list(DataPattern).index(pattern)

    def set_pattern_hints(
        self, bank: int, rows: np.ndarray, pattern_indices: np.ndarray
    ) -> None:
        """Bulk :meth:`set_pattern_hint`: per-row ``list(DataPattern)``
        indices for many physical rows at once."""
        self._hint_array(bank)[np.asarray(rows)] = np.asarray(
            pattern_indices, dtype=np.int8
        )

    def _hint_array(self, bank: int) -> np.ndarray:
        hints = self._pattern_hint.get(bank)
        if hints is None:
            hints = np.full(self.rows_per_bank, _NO_HINT, dtype=np.int8)
            self._pattern_hint[bank] = hints
        return hints

    # ------------------------------------------------------------------
    # Analytic fast paths (vectorized over all rows of a bank)
    # ------------------------------------------------------------------

    def analytic_ber(
        self,
        bank: int,
        hammer_count: float,
        *,
        t_agg_on_ns: float = T_AGG_ON_MIN_NS,
        pattern: Optional[DataPattern] = None,
    ) -> np.ndarray:
        """Per-row BER of a double-sided hammer test, closed form.

        ``pattern=None`` means each row is tested at its own WCDP --
        the configuration of Figs 3 and 4.  The closed form matches
        what the device/bender path measures (tested for equivalence);
        it exists so full-bank sweeps stay fast.
        """
        field_ = self.field(bank)
        m = rowpress_multiplier(t_agg_on_ns, self.spec.rowpress_exponent)
        affinity = self._affinity_vector(field_, pattern)
        h_eq = hammer_count * m * affinity
        return self._ber_curve(field_, h_eq, affinity)

    def analytic_measured_hc_first(
        self,
        bank: int,
        *,
        t_agg_on_ns: float = T_AGG_ON_MIN_NS,
        grid: Sequence[int] = HC_GRID,
    ) -> np.ndarray:
        """Per-row measured HC_first on the paper's test grid."""
        field_ = self.field(bank)
        m = rowpress_multiplier(t_agg_on_ns, self.spec.rowpress_exponent)
        effective_threshold = field_.hc_first / m
        grid_arr = np.asarray(sorted(grid), dtype=np.float64)
        idx = np.searchsorted(grid_arr, effective_threshold, side="left")
        idx = np.clip(idx, 0, len(grid_arr) - 1)
        return grid_arr[idx].astype(np.int64)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _neighbors(
        self, state: RowVulnerability, physical_row: int
    ) -> Iterable[Tuple[int, float]]:
        sa = state.subarray_rows
        sa_index = physical_row // sa
        for distance, weight in ((1, 1.0), (2, self.blast_damping)):
            for victim in (physical_row - distance, physical_row + distance):
                if not 0 <= victim < self.rows_per_bank:
                    continue
                if victim // sa != sa_index:
                    continue
                yield victim, weight

    def _row_affinity(self, bank: int, field_: SpatialVariationField, row: int) -> float:
        hint = int(self._hint_array(bank)[row])
        if hint < 0:
            return 1.0
        return float(AFFINITY_MATRIX[hint, int(field_.wcdp_index[row])])

    def _affinity_for_rows(
        self, bank: int, field_: SpatialVariationField, rows: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`_row_affinity` for many physical rows."""
        hints = self._hint_array(bank)[rows]
        affinity = AFFINITY_MATRIX[hints, field_.wcdp_index[rows]]
        return np.where(hints < 0, 1.0, affinity)

    def _affinity_vector(
        self, field_: SpatialVariationField, pattern: Optional[DataPattern]
    ) -> np.ndarray:
        if pattern is None:
            return np.ones(field_.rows)
        wcdps = field_.wcdp_index
        out = np.full(field_.rows, _AFFINITY_CROSS)
        if pattern in (DataPattern.COLUMN_STRIPE, DataPattern.COLUMN_STRIPE_INV):
            out[:] = _AFFINITY_COLUMN_STRIPE
            return out
        for index, wcdp in enumerate(WCDP_CANDIDATES):
            if pattern is wcdp:
                out[wcdps == index] = _AFFINITY_SAME
            elif pattern is wcdp.inverse:
                out[wcdps == index] = _AFFINITY_INVERSE
        return out

    def _ber_curve(
        self,
        field_: SpatialVariationField,
        h_eq: np.ndarray | float,
        affinity: np.ndarray | float,
    ) -> np.ndarray:
        """Vectorized BER given WCDP-equivalent hammer counts."""
        hcf = field_.hc_first
        h_eq = np.broadcast_to(np.asarray(h_eq, dtype=np.float64), hcf.shape)
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = np.log(HC_128K) - np.log(hcf)
            progress = (np.log(h_eq) - np.log(hcf)) / np.where(denom > 0, denom, np.inf)
        progress = np.where(h_eq >= hcf, np.maximum(progress, 0.0), 0.0)
        # Rows with HC_first at/above 128K jump straight to saturation.
        progress = np.where((h_eq >= hcf) & ~np.isfinite(progress), 1.0, progress)
        progress = np.minimum(progress**BER_GROWTH_EXPONENT, BER_OVERSHOOT_CAP)
        ber = field_.ber_sat * np.asarray(affinity) * progress
        # The defining property of HC_first: at least one bitflip there.
        min_ber = np.where(h_eq >= hcf, 1.0 / self.row_bits, 0.0)
        return np.maximum(ber, min_ber)

    def materialize_bank(
        self, bank: int, victims: Optional[np.ndarray] = None
    ) -> Dict[int, np.ndarray]:
        """Materialize accumulated exposure into bitflips, vectorized.

        The array-at-once replacement for the seed's per-victim
        ``_materialize`` loop: one pass computes exposure -> BER ->
        flip-count targets for every requested physical row, then emits
        the new weak-cell bit indices only for rows whose target grew.
        ``victims=None`` means all rows of the bank.  The returned
        mapping (victim physical row -> new bit indices) and the
        ``n_flipped`` state updates are bit-identical to running the
        scalar loop row by row.
        """
        state = self.bank_state(bank)
        field_ = state.field_
        if victims is None:
            victims = np.arange(self.rows_per_bank, dtype=np.int64)
        affinity = self._affinity_for_rows(bank, field_, victims)
        h_eq = state.exposure[victims] * affinity
        hcf = field_.hc_first[victims]
        targets = self.flip_targets(
            h_eq=h_eq, hcf=hcf, ber_sat=field_.ber_sat[victims],
            affinity=affinity,
        )
        grown = np.flatnonzero(targets > state.n_flipped[victims])
        flips: Dict[int, np.ndarray] = {}
        for index in grown:
            victim = int(victims[index])
            flips[victim] = self._bit_sequence(
                bank, victim, int(state.n_flipped[victim]), int(targets[index])
            )
            state.n_flipped[victim] = targets[index]
        return flips

    def flip_targets(
        self,
        *,
        h_eq: np.ndarray,
        hcf: np.ndarray,
        ber_sat: np.ndarray,
        affinity: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Per-row cumulative flip-count targets, vectorized.

        Zero below ``HC_first``; otherwise at least one flip, and never
        more than ``row_bits`` (the BER kernel clips at 1.0).
        """
        ber = self._ber_vector(
            h_eq=h_eq, hcf=hcf, ber_sat=ber_sat, affinity=affinity
        )
        targets = np.maximum(1, np.rint(ber * self.row_bits)).astype(np.int64)
        return np.where(h_eq >= hcf, targets, 0)

    def _ber_vector(
        self,
        *,
        h_eq: np.ndarray,
        hcf: np.ndarray,
        ber_sat: np.ndarray,
        affinity: np.ndarray | float,
    ) -> np.ndarray:
        """Measured-path BER kernel (elementwise over victim rows).

        The single source of truth for the command-faithful path:
        :meth:`on_bulk_closures`, :meth:`materialize_bank`, and the
        batched platform measurements all price bitflips through here,
        so the loop and kernel paths cannot drift apart.  Unlike the
        physically meaningless raw curve, the result is clipped to 1.0:
        a row cannot flip more bits than it has, however far
        ``ber_sat * BER_OVERSHOOT_CAP`` overshoots.
        """
        h_eq = np.asarray(h_eq, dtype=np.float64)
        hcf = np.asarray(hcf, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = np.log(HC_128K) - np.log(hcf)
            progress = np.maximum(
                0.0,
                (np.log(h_eq) - np.log(hcf))
                / np.where(denom > 0, denom, np.inf),
            )
        progress = np.where(denom > 0, progress, 1.0)
        progress = np.minimum(progress**BER_GROWTH_EXPONENT, BER_OVERSHOOT_CAP)
        ber = np.minimum(
            np.maximum(ber_sat * affinity * progress, 1.0 / self.row_bits), 1.0
        )
        return np.where(h_eq >= hcf, ber, 0.0)

    def _ber_scalar(
        self, *, h_eq: float, hcf: float, ber_sat: float, affinity: float
    ) -> float:
        """Scalar convenience wrapper over :meth:`_ber_vector`.

        Routed through the vectorized kernel (1-element arrays) rather
        than scalar arithmetic: numpy's scalar ``**`` takes a different
        libm path than the array ufunc in the last ulp, and the loop
        oracle must match the kernels bit for bit.
        """
        return float(
            self._ber_vector(
                h_eq=np.asarray([h_eq]),
                hcf=np.asarray([hcf]),
                ber_sat=np.asarray([ber_sat]),
                affinity=affinity,
            )[0]
        )

    def _bit_sequence(self, bank: int, row: int, start: int, stop: int) -> np.ndarray:
        """Deterministic weak-cell ordering for a row.

        The same physical cells flip first every time a row is
        re-hammered (as on real chips).  A full-cycle affine walk over
        bit positions gives a cheap, collision-free ordering.
        """
        key = (bank, row)
        if key not in self._affine_cache:
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, bank, row, 0xB17])
            )
            a = int(rng.integers(0, self.row_bits // 2)) * 2 + 1
            b = int(rng.integers(0, self.row_bits))
            self._affine_cache[key] = (a, b)
        a, b = self._affine_cache[key]
        i = np.arange(start, min(stop, self.row_bits), dtype=np.int64)
        return (a * i + b) % self.row_bits
