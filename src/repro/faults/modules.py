"""Registry of the 15 tested DDR4 modules (Tables 1 and 5).

Every module in the paper's test pool is represented by a
:class:`ModuleSpec` carrying both its catalogue identity (vendor,
density, die revision, organization, speed grade) and the calibration
our fault model needs: the measured min/avg/max ``HC_first`` from
Table 5 and the mean BER and coefficient of variation read from Fig 3.

The four Samsung modules of Table 3 additionally carry the spatial
feature effects that make their ``HC_first`` fields predictable from
address bits (Takeaway 6); the remaining eleven modules have none.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Dict, Optional, Tuple

from repro.dram.mapping import ScramblingScheme
from repro.dram.timing import TimingParameters, timing_for_speed
from repro.faults.variation import (
    ChunkEffect,
    SpatialFeatureEffect,
    SpatialVariationField,
    VariationFieldParams,
)

K = 1024


class Manufacturer(Enum):
    """The three major DRAM manufacturers in the paper's test pool."""

    SK_HYNIX = "H"
    MICRON = "M"
    SAMSUNG = "S"

    @property
    def display_name(self) -> str:
        return {"H": "SK Hynix", "M": "Micron", "S": "Samsung"}[self.value]


@dataclass(frozen=True)
class ModuleSpec:
    """One tested DRAM module: identity plus fault-model calibration."""

    label: str
    manufacturer: Manufacturer
    n_chips: int
    density_gb: int
    die_revision: str
    organization: str
    freq_mts: int
    mfr_date: Optional[str]
    rows_per_bank: int
    hc_min: int
    hc_avg: int
    hc_max: int
    ber_mean: float
    ber_cv_pct: float
    n_ber_periods: float = 4.0
    subarray_rows: int = 512
    scrambling: ScramblingScheme = ScramblingScheme.IDENTITY
    feature_effects: Tuple[SpatialFeatureEffect, ...] = ()
    chunk_effects: Tuple[ChunkEffect, ...] = ()
    rowpress_exponent: float = 0.55
    #: Beta concentration of the HC_first marginal: higher = tighter
    #: histogram with a thinner weak tail (Fig 5: Samsung histograms
    #: are sharply peaked, SK Hynix ones broad).  The weak-tail mass
    #: drives how much headroom Svärd can exploit (Obsv 15).
    hc_concentration: float = 6.0

    @property
    def timing(self) -> TimingParameters:
        return timing_for_speed(self.freq_mts)

    def variation_params(
        self, rows_per_bank: Optional[int] = None
    ) -> VariationFieldParams:
        """Field-generation parameters, optionally scaled down.

        Scaling reduces the number of rows while keeping the marginal
        distributions and the number of BER periods, so scaled-down
        experiments reproduce the same statistics in less time.  The
        subarray size is kept unless it exceeds a quarter of the
        scaled bank (reverse engineering needs several subarrays).
        """
        rows = self.rows_per_bank if rows_per_bank is None else rows_per_bank
        subarray_rows = min(self.subarray_rows, max(2, rows // 4))
        return VariationFieldParams(
            rows_per_bank=rows,
            hc_min=self.hc_min,
            hc_avg=self.hc_avg,
            hc_max=self.hc_max,
            ber_mean=self.ber_mean,
            ber_cv_pct=self.ber_cv_pct,
            n_ber_periods=self.n_ber_periods,
            hc_concentration=self.hc_concentration,
            subarray_rows=subarray_rows,
            feature_effects=self.feature_effects,
            chunk_effects=self.chunk_effects,
        )

    def generate_field(
        self, *, bank: int = 0, rows_per_bank: Optional[int] = None, seed: int = 0
    ) -> SpatialVariationField:
        """Generate this module's ground-truth field for one bank."""
        params = self.variation_params(rows_per_bank)
        return SpatialVariationField.generate(
            params, bank=bank, seed=seed ^ _stable_hash(self.label)
        )


def _stable_hash(text: str) -> int:
    """A seed derived from a label, stable across interpreter runs."""
    value = 0
    for ch in text:
        value = (value * 131 + ord(ch)) % (2**31)
    return value


MODULES: Dict[str, ModuleSpec] = {
    spec.label: spec
    for spec in (
        # ----------------------------- SK Hynix ----------------------
        ModuleSpec(
            label="H0", manufacturer=Manufacturer.SK_HYNIX, n_chips=8,
            density_gb=16, die_revision="A", organization="x8",
            freq_mts=3200, mfr_date="51-20", rows_per_bank=128 * K,
            hc_min=16 * K, hc_avg=int(46.2 * K), hc_max=96 * K,
            ber_mean=2.0e-2, ber_cv_pct=3.36, hc_concentration=4.5, n_ber_periods=6.0,
            subarray_rows=832, scrambling=ScramblingScheme.XOR_FOLD,
        ),
        ModuleSpec(
            label="H1", manufacturer=Manufacturer.SK_HYNIX, n_chips=8,
            density_gb=16, die_revision="C", organization="x8",
            freq_mts=3200, mfr_date="51-20", rows_per_bank=128 * K,
            hc_min=12 * K, hc_avg=54 * K, hc_max=128 * K,
            ber_mean=3.2e-2, ber_cv_pct=2.25, hc_concentration=4.5, n_ber_periods=6.0,
            subarray_rows=832, scrambling=ScramblingScheme.XOR_FOLD,
        ),
        ModuleSpec(
            label="H2", manufacturer=Manufacturer.SK_HYNIX, n_chips=8,
            density_gb=16, die_revision="C", organization="x8",
            freq_mts=3200, mfr_date="36-21", rows_per_bank=128 * K,
            hc_min=12 * K, hc_avg=int(55.4 * K), hc_max=128 * K,
            ber_mean=3.2e-2, ber_cv_pct=2.43, hc_concentration=4.5, n_ber_periods=6.0,
            subarray_rows=832, scrambling=ScramblingScheme.XOR_FOLD,
        ),
        ModuleSpec(
            label="H3", manufacturer=Manufacturer.SK_HYNIX, n_chips=8,
            density_gb=16, die_revision="C", organization="x8",
            freq_mts=3200, mfr_date="36-21", rows_per_bank=128 * K,
            hc_min=12 * K, hc_avg=int(57.8 * K), hc_max=128 * K,
            ber_mean=3.2e-2, ber_cv_pct=1.99, hc_concentration=4.5, n_ber_periods=6.0,
            subarray_rows=832, scrambling=ScramblingScheme.XOR_FOLD,
        ),
        ModuleSpec(
            label="H4", manufacturer=Manufacturer.SK_HYNIX, n_chips=8,
            density_gb=8, die_revision="D", organization="x8",
            freq_mts=3200, mfr_date="48-20", rows_per_bank=64 * K,
            hc_min=16 * K, hc_avg=int(38.1 * K), hc_max=96 * K,
            ber_mean=2.2e-2, ber_cv_pct=2.5, hc_concentration=4.5, n_ber_periods=5.0,
            subarray_rows=832, scrambling=ScramblingScheme.XOR_FOLD,
            chunk_effects=(ChunkEffect(0.55, 0.75, ber_boost=1.06, hc_shift=-0.2),),
        ),
        # ----------------------------- Micron ------------------------
        ModuleSpec(
            label="M0", manufacturer=Manufacturer.MICRON, n_chips=4,
            density_gb=16, die_revision="E", organization="x16",
            freq_mts=3200, mfr_date="46-20", rows_per_bank=128 * K,
            hc_min=8 * K, hc_avg=int(24.5 * K), hc_max=40 * K,
            ber_mean=1.7e-2, ber_cv_pct=0.8, hc_concentration=6.0, n_ber_periods=8.0,
            subarray_rows=1024, scrambling=ScramblingScheme.MIRROR,
        ),
        ModuleSpec(
            label="M1", manufacturer=Manufacturer.MICRON, n_chips=16,
            density_gb=8, die_revision="B", organization="x4",
            freq_mts=2400, mfr_date=None, rows_per_bank=128 * K,
            hc_min=40 * K, hc_avg=int(64.5 * K), hc_max=96 * K,
            ber_mean=6.0e-4, ber_cv_pct=8.08, hc_concentration=6.0, n_ber_periods=3.0,
            subarray_rows=1024, scrambling=ScramblingScheme.MIRROR,
            chunk_effects=(ChunkEffect(0.03, 0.12, ber_boost=1.20, hc_shift=-0.35),),
        ),
        ModuleSpec(
            label="M2", manufacturer=Manufacturer.MICRON, n_chips=16,
            density_gb=16, die_revision="E", organization="x4",
            freq_mts=2933, mfr_date="14-20", rows_per_bank=128 * K,
            hc_min=8 * K, hc_avg=int(28.6 * K), hc_max=48 * K,
            ber_mean=8.1e-2, ber_cv_pct=0.63, hc_concentration=6.0, n_ber_periods=8.0,
            subarray_rows=1024, scrambling=ScramblingScheme.MIRROR,
        ),
        ModuleSpec(
            label="M3", manufacturer=Manufacturer.MICRON, n_chips=16,
            density_gb=8, die_revision="B", organization="x4",
            freq_mts=2400, mfr_date="36-21", rows_per_bank=128 * K,
            hc_min=56 * K, hc_avg=90 * K, hc_max=128 * K,
            ber_mean=1.2e-4, ber_cv_pct=5.21, hc_concentration=6.0, n_ber_periods=3.0,
            subarray_rows=1024, scrambling=ScramblingScheme.MIRROR,
            chunk_effects=(ChunkEffect(0.40, 0.55, ber_boost=1.10, hc_shift=-0.25),),
        ),
        ModuleSpec(
            label="M4", manufacturer=Manufacturer.MICRON, n_chips=4,
            density_gb=16, die_revision="B", organization="x16",
            freq_mts=3200, mfr_date="26-21", rows_per_bank=128 * K,
            hc_min=12 * K, hc_avg=int(42.2 * K), hc_max=96 * K,
            ber_mean=2.2e-2, ber_cv_pct=0.65, hc_concentration=6.0, n_ber_periods=8.0,
            subarray_rows=1024, scrambling=ScramblingScheme.MIRROR,
        ),
        # ----------------------------- Samsung -----------------------
        ModuleSpec(
            label="S0", manufacturer=Manufacturer.SAMSUNG, n_chips=8,
            density_gb=8, die_revision="B", organization="x8",
            freq_mts=2666, mfr_date="52-20", rows_per_bank=64 * K,
            hc_min=32 * K, hc_avg=57 * K, hc_max=128 * K,
            ber_mean=1.15e-3, ber_cv_pct=4.37, hc_concentration=10.0, n_ber_periods=4.0,
            subarray_rows=512, scrambling=ScramblingScheme.MIRROR,
            feature_effects=(
                SpatialFeatureEffect("row", 7, 1.30),
                SpatialFeatureEffect("row", 8, 0.25),
                SpatialFeatureEffect("subarray", 0, 1.35),
                SpatialFeatureEffect("distance", 7, 0.25),
            ),
        ),
        ModuleSpec(
            label="S1", manufacturer=Manufacturer.SAMSUNG, n_chips=8,
            density_gb=8, die_revision="B", organization="x8",
            freq_mts=2666, mfr_date="52-20", rows_per_bank=64 * K,
            hc_min=24 * K, hc_avg=int(59.8 * K), hc_max=128 * K,
            ber_mean=1.3e-3, ber_cv_pct=5.77, hc_concentration=9.0, n_ber_periods=4.0,
            subarray_rows=512, scrambling=ScramblingScheme.MIRROR,
            feature_effects=(
                SpatialFeatureEffect("row", 7, 1.20),
                SpatialFeatureEffect("row", 8, 1.25),
                SpatialFeatureEffect("row", 10, 0.20),
                SpatialFeatureEffect("row", 12, 0.20),
                SpatialFeatureEffect("subarray", 0, 0.20),
            ),
        ),
        ModuleSpec(
            label="S2", manufacturer=Manufacturer.SAMSUNG, n_chips=8,
            density_gb=8, die_revision="B", organization="x8",
            freq_mts=2666, mfr_date="10-21", rows_per_bank=64 * K,
            hc_min=12 * K, hc_avg=int(42.7 * K), hc_max=96 * K,
            ber_mean=1.3e-2, ber_cv_pct=4.1, hc_concentration=7.0, n_ber_periods=4.0,
            subarray_rows=512, scrambling=ScramblingScheme.MIRROR,
        ),
        ModuleSpec(
            label="S3", manufacturer=Manufacturer.SAMSUNG, n_chips=8,
            density_gb=4, die_revision="F", organization="x8",
            freq_mts=2400, mfr_date="04-21", rows_per_bank=32 * K,
            hc_min=16 * K, hc_avg=int(59.2 * K), hc_max=128 * K,
            ber_mean=1.9e-2, ber_cv_pct=2.99, hc_concentration=9.0, n_ber_periods=4.0,
            subarray_rows=330, scrambling=ScramblingScheme.MIRROR,
            feature_effects=(
                SpatialFeatureEffect("row", 10, 1.10),
                SpatialFeatureEffect("subarray", 1, 1.50),
                SpatialFeatureEffect("subarray", 2, 0.30),
            ),
        ),
        ModuleSpec(
            label="S4", manufacturer=Manufacturer.SAMSUNG, n_chips=16,
            density_gb=8, die_revision="C", organization="x4",
            freq_mts=2666, mfr_date="35-21", rows_per_bank=128 * K,
            hc_min=12 * K, hc_avg=int(55.4 * K), hc_max=128 * K,
            ber_mean=1.25e-2, ber_cv_pct=3.65, hc_concentration=8.0, n_ber_periods=4.0,
            subarray_rows=512, scrambling=ScramblingScheme.MIRROR,
            feature_effects=(SpatialFeatureEffect("subarray", 0, 0.75),),
        ),
    )
}

#: Modules whose spatial features correlate with HC_first (Table 3).
FEATURE_CORRELATED_MODULES: Tuple[str, ...] = ("S0", "S1", "S3", "S4")

#: Representative module per manufacturer used in the Svard evaluation.
REPRESENTATIVE_MODULES: Tuple[str, ...] = ("H1", "M0", "S0")


def module_by_label(label: str) -> ModuleSpec:
    """Look up a module by its Table 5 label (e.g. ``"S0"``)."""
    try:
        return MODULES[label]
    except KeyError:
        raise KeyError(
            f"unknown module {label!r}; known: {sorted(MODULES)}"
        ) from None


def modules_by_manufacturer(manufacturer: Manufacturer) -> Tuple[ModuleSpec, ...]:
    """All modules from one manufacturer, in label order."""
    return tuple(
        spec for label, spec in sorted(MODULES.items())
        if spec.manufacturer is manufacturer
    )
