"""Spatial variation field generation.

This module builds the per-row ground truth the fault model consumes:
for every row of a bank, the row's true ``HC_first`` (at its worst-case
data pattern), its saturated bit error rate at a hammer count of 128K,
and its preferred (worst-case) data pattern.

The construction follows the structure the paper observes:

* ``HC_first`` varies *irregularly* across rows (Obsv 9): a strong
  i.i.d. latent component dominates.
* ``BER`` varies *regularly*: a periodic component with local minima at
  fixed relative locations (Obsv 4) plus chunk-level offsets (Obsv 5).
* Both are mapped onto module-calibrated marginal distributions
  (Table 5 min/avg/max ``HC_first``; Fig 3 mean BER and CV).
* For the four modules of Table 3, specific address bits modulate the
  latent ``HC_first`` field so the spatial-feature F1 analysis can
  recover them; all other modules get no such dependence, reproducing
  Takeaway 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.faults.datapatterns import WCDP_CANDIDATES

#: The paper's hammer-count grid (K = 1024), Algorithm 1.
HC_GRID: Tuple[int, ...] = tuple(
    k * 1024 for k in (1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64, 96, 128)
)

HC_128K: int = 128 * 1024


@dataclass(frozen=True)
class SpatialFeatureEffect:
    """One address-bit effect injected into the HC_first latent field.

    ``kind`` selects which address the bit is taken from: ``"row"``
    (row address), ``"subarray"`` (subarray index), or ``"distance"``
    (distance to the local sense amplifiers).  ``amplitude`` is the
    latent-field shift applied when the bit is set.
    """

    kind: str
    bit: int
    amplitude: float

    _KINDS = ("row", "subarray", "distance")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown feature kind {self.kind!r}")
        if self.bit < 0:
            raise ValueError("bit index must be non-negative")


@dataclass(frozen=True)
class ChunkEffect:
    """A contiguous range of rows with elevated vulnerability (Obsv 5).

    ``start``/``end`` are relative bank locations in [0, 1];
    ``ber_boost`` multiplies the BER field and ``hc_shift`` shifts the
    HC_first latent field (negative = weaker rows).
    """

    start: float
    end: float
    ber_boost: float = 1.0
    hc_shift: float = 0.0


@dataclass(frozen=True)
class VariationFieldParams:
    """Everything needed to generate one module's per-row ground truth."""

    rows_per_bank: int
    hc_min: int
    hc_avg: int
    hc_max: int
    ber_mean: float
    ber_cv_pct: float
    n_ber_periods: float = 4.0
    ber_period_amplitude: float = 0.15
    hc_concentration: float = 6.0
    subarray_rows: int = 512
    feature_effects: Tuple[SpatialFeatureEffect, ...] = ()
    chunk_effects: Tuple[ChunkEffect, ...] = ()
    wcdp_probabilities: Tuple[float, ...] = (0.55, 0.20, 0.15, 0.10)

    def __post_init__(self) -> None:
        if not self.hc_min <= self.hc_avg <= self.hc_max:
            raise ValueError("require hc_min <= hc_avg <= hc_max")
        if self.rows_per_bank < 2:
            raise ValueError("need at least two rows")
        if not 0 < self.ber_mean < 1:
            raise ValueError("ber_mean must be a rate in (0, 1)")
        if len(self.wcdp_probabilities) != len(WCDP_CANDIDATES):
            raise ValueError("one WCDP probability per candidate pattern")
        if abs(sum(self.wcdp_probabilities) - 1.0) > 1e-9:
            raise ValueError("WCDP probabilities must sum to 1")


@dataclass
class SpatialVariationField:
    """Per-row ground-truth vulnerability for one bank.

    Attributes:
        hc_first: float array; the true minimum hammer count (in
            aggressor-pair units, at the worst-case data pattern) that
            induces the row's first bitflip.
        ber_sat: float array; the row's BER at HC = 128K with the
            worst-case data pattern and minimal ``tAggOn``.
        wcdp_index: int array; index into
            :data:`repro.faults.datapatterns.WCDP_CANDIDATES`.
    """

    params: VariationFieldParams
    hc_first: np.ndarray
    ber_sat: np.ndarray
    wcdp_index: np.ndarray

    @classmethod
    def generate(
        cls, params: VariationFieldParams, *, bank: int = 0, seed: int = 0
    ) -> "SpatialVariationField":
        """Generate the field for one bank.

        Banks of the same module share ``params`` (hence marginal
        distributions -- Obsvs 2 and 6) but use independent sub-seeds,
        so row-level values differ across banks.
        """
        n = params.rows_per_bank
        rng = np.random.default_rng(np.random.SeedSequence([seed, bank, 0xD15C]))
        x = np.arange(n) / max(n - 1, 1)

        # --- HC_first latent field: dominated by irregular noise. ----
        latent = rng.standard_normal(n)
        latent += 0.15 * np.sin(2 * np.pi * params.n_ber_periods * x + rng.uniform(0, 2 * np.pi))
        latent += cls._feature_term(params, n)
        latent += cls._chunk_term(params, x, which="hc")
        latent = (latent - latent.mean()) / max(latent.std(), 1e-12)

        hc_first = cls._map_to_hc_distribution(params, latent)

        # --- BER field: regular periodic + chunks + mild noise. ------
        phase = rng.uniform(0, 2 * np.pi)
        periodic = 0.5 - 0.5 * np.cos(2 * np.pi * params.n_ber_periods * x + phase)
        rel = 1.0 + params.ber_period_amplitude * periodic
        rel *= cls._chunk_term(params, x, which="ber")
        rel *= 1.0 + 0.02 * rng.standard_normal(n)
        rel = np.clip(rel, 0.05, None)

        target_cv = params.ber_cv_pct / 100.0
        mean = rel.mean()
        cv = rel.std() / mean
        if cv > 1e-12:
            rel = mean + (rel - mean) * (target_cv / cv)
            rel = np.clip(rel, 0.05 * mean, None)
        ber_sat = params.ber_mean * rel / rel.mean()
        ber_sat = np.clip(ber_sat, 1e-9, 0.5)

        wcdp_index = rng.choice(
            len(WCDP_CANDIDATES), size=n, p=np.asarray(params.wcdp_probabilities)
        ).astype(np.int8)

        return cls(
            params=params,
            hc_first=hc_first.astype(np.float64),
            ber_sat=ber_sat.astype(np.float64),
            wcdp_index=wcdp_index,
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _map_to_hc_distribution(
        params: VariationFieldParams, latent: np.ndarray
    ) -> np.ndarray:
        """Map a standard-normal latent field onto the HC_first marginal.

        The marginal is a Beta distribution scaled to
        ``[0.9 * hc_min, hc_max]`` with its mean at ``hc_avg``; the 0.9
        factor leaves room below the lowest grid value so that rows
        measured at ``hc_min`` on the discrete grid actually exist.
        """
        lo = 0.9 * params.hc_min
        hi = float(params.hc_max)
        u = stats.norm.cdf(latent)
        u = np.clip(u, 1e-9, 1 - 1e-9)
        c = params.hc_concentration
        # Table 5 reports the mean of *grid-measured* values, which a
        # grid snap biases upward; calibrate the continuous mean so the
        # snapped mean lands on the published average.
        target = float(params.hc_avg)
        mean_frac = np.clip((target - lo) / (hi - lo), 0.02, 0.98)
        values = np.empty_like(u)
        grid = np.asarray(HC_GRID, dtype=np.float64)
        for _ in range(4):
            a, b = mean_frac * c, (1.0 - mean_frac) * c
            values = lo + (hi - lo) * stats.beta.ppf(u, a, b)
            idx = np.clip(
                np.searchsorted(grid, values, side="left"), 0, len(grid) - 1
            )
            snapped_mean = float(grid[idx].mean())
            correction = target / max(snapped_mean, 1e-9)
            mean_frac = np.clip(mean_frac * correction, 0.02, 0.98)
        return values

    @staticmethod
    def _feature_term(params: VariationFieldParams, n: int) -> np.ndarray:
        if not params.feature_effects:
            return np.zeros(n)
        rows = np.arange(n)
        subarray = rows // params.subarray_rows
        within = rows % params.subarray_rows
        distance = np.minimum(within, params.subarray_rows - 1 - within)
        term = np.zeros(n)
        for effect in params.feature_effects:
            if effect.kind == "row":
                bits = (rows >> effect.bit) & 1
            elif effect.kind == "subarray":
                bits = (subarray >> effect.bit) & 1
            else:
                bits = (distance >> effect.bit) & 1
            term += effect.amplitude * (2.0 * bits - 1.0)
        return term

    @staticmethod
    def _chunk_term(
        params: VariationFieldParams, x: np.ndarray, *, which: str
    ) -> np.ndarray:
        if which == "ber":
            term = np.ones_like(x)
            for chunk in params.chunk_effects:
                mask = (x >= chunk.start) & (x < chunk.end)
                term[mask] *= chunk.ber_boost
            return term
        term = np.zeros_like(x)
        for chunk in params.chunk_effects:
            mask = (x >= chunk.start) & (x < chunk.end)
            term[mask] += chunk.hc_shift
        return term

    # ------------------------------------------------------------------

    @property
    def rows(self) -> int:
        return len(self.hc_first)

    def measured_hc_first(self, grid: Sequence[int] = HC_GRID) -> np.ndarray:
        """Grid-snapped HC_first: the smallest tested count >= truth.

        Mirrors the paper's definition: a row's measured ``HC_first``
        is the minimum *tested* hammer count at which it flips.  Rows
        whose truth exceeds the largest grid value report that largest
        value (they flip by 128K in every tested module).
        """
        grid_arr = np.asarray(sorted(grid), dtype=np.float64)
        idx = np.searchsorted(grid_arr, self.hc_first, side="left")
        idx = np.clip(idx, 0, len(grid_arr) - 1)
        return grid_arr[idx].astype(np.int64)

    def normalized_to_min(self) -> np.ndarray:
        """HC_first normalized to the bank minimum (Fig 6's y-axis)."""
        return self.hc_first / self.hc_first.min()
