"""Parallel experiment orchestration with an on-disk result cache.

See ORCHESTRATION.md at the repository root for the task model, the
execution-backend protocol, the worker/queue model, the cache layout,
and the invalidation rules.
"""

from repro.orchestration.backends import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    PendingTask,
    ProcessBackend,
    QueueBackend,
    QueueTaskFailed,
    SerialBackend,
    create_backend,
    default_backend,
)
from repro.orchestration.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    default_cache_dir,
    scan_cache_entry_keys,
    shard_name,
)
from repro.orchestration.executor import (
    OrchestrationContext,
    OrchestrationStats,
    serial_context,
)
from repro.orchestration.jobqueue import (
    JobQueue,
    TaskEnvelope,
    WorkerHeartbeat,
    default_queue_dir,
)
from repro.orchestration.status import (
    DEFAULT_STALE_AFTER,
    queue_status,
    render_status,
)
from repro.orchestration.worker import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HeartbeatWriter,
    QueueWorker,
    WorkerStats,
)
from repro.orchestration.hashing import (
    canonicalize,
    code_version,
    derive_task_seed,
    stable_hash,
)
from repro.orchestration.task import Task, TaskGroup, make_task, run_task

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_STALE_AFTER",
    "CacheStats",
    "ExecutionBackend",
    "HeartbeatWriter",
    "JobQueue",
    "OrchestrationContext",
    "OrchestrationStats",
    "PendingTask",
    "ProcessBackend",
    "QueueBackend",
    "QueueTaskFailed",
    "QueueWorker",
    "ResultCache",
    "SerialBackend",
    "Task",
    "TaskEnvelope",
    "TaskGroup",
    "WorkerHeartbeat",
    "WorkerStats",
    "create_backend",
    "default_backend",
    "default_queue_dir",
    "canonicalize",
    "code_version",
    "default_cache_dir",
    "derive_task_seed",
    "make_task",
    "queue_status",
    "render_status",
    "run_task",
    "scan_cache_entry_keys",
    "serial_context",
    "shard_name",
    "stable_hash",
]
