"""Parallel experiment orchestration with an on-disk result cache.

See ORCHESTRATION.md at the repository root for the task model, the
execution-backend protocol, the worker/queue model, the cache layout,
and the invalidation rules.
"""

from repro.orchestration.backends import (
    BACKEND_NAMES,
    BackendError,
    ExecutionBackend,
    PendingTask,
    ProcessBackend,
    QueueBackend,
    QueueTaskFailed,
    SerialBackend,
    create_backend,
    default_backend,
)
from repro.orchestration.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    PROFILE_FIELDS,
    CacheStats,
    ResultCache,
    default_cache_dir,
    profile_from_provenance,
    scan_cache_entry_keys,
    shard_name,
)
from repro.orchestration.executor import (
    OrchestrationContext,
    OrchestrationStats,
    serial_context,
)
from repro.orchestration.jobqueue import (
    ChunkEnvelope,
    JobQueue,
    TaskEnvelope,
    WorkerHeartbeat,
    chunk_queue_key,
    default_queue_dir,
    envelope_from_payload,
)
from repro.orchestration.status import (
    DEFAULT_STALE_AFTER,
    profile_cache,
    queue_status,
    render_profile,
    render_status,
)
from repro.orchestration.worker import (
    DEFAULT_HEARTBEAT_INTERVAL,
    HeartbeatWriter,
    QueueWorker,
    WorkerStats,
)
from repro.orchestration.hashing import (
    OMIT_IF_NONE,
    canonicalize,
    code_version,
    derive_task_seed,
    stable_hash,
)
from repro.orchestration.task import (
    SetupCache,
    Task,
    TaskGroup,
    execute_task_profiled,
    make_task,
    run_task,
    run_task_profiled,
)

__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_STALE_AFTER",
    "PROFILE_FIELDS",
    "CacheStats",
    "ChunkEnvelope",
    "ExecutionBackend",
    "HeartbeatWriter",
    "JobQueue",
    "OrchestrationContext",
    "OrchestrationStats",
    "PendingTask",
    "ProcessBackend",
    "QueueBackend",
    "QueueTaskFailed",
    "QueueWorker",
    "ResultCache",
    "SerialBackend",
    "SetupCache",
    "Task",
    "TaskEnvelope",
    "TaskGroup",
    "WorkerHeartbeat",
    "WorkerStats",
    "chunk_queue_key",
    "create_backend",
    "default_backend",
    "default_queue_dir",
    "OMIT_IF_NONE",
    "canonicalize",
    "code_version",
    "default_cache_dir",
    "derive_task_seed",
    "envelope_from_payload",
    "execute_task_profiled",
    "make_task",
    "profile_cache",
    "profile_from_provenance",
    "queue_status",
    "render_profile",
    "render_status",
    "run_task",
    "run_task_profiled",
    "scan_cache_entry_keys",
    "serial_context",
    "shard_name",
    "stable_hash",
]
