"""Parallel experiment orchestration with an on-disk result cache.

See ORCHESTRATION.md at the repository root for the task model, the
cache layout, and the invalidation rules.
"""

from repro.orchestration.cache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    CacheStats,
    ResultCache,
    default_cache_dir,
)
from repro.orchestration.executor import (
    OrchestrationContext,
    OrchestrationStats,
    serial_context,
)
from repro.orchestration.hashing import (
    canonicalize,
    code_version,
    derive_task_seed,
    stable_hash,
)
from repro.orchestration.task import Task, TaskGroup, make_task, run_task

__all__ = [
    "CACHE_DIR_ENV",
    "DEFAULT_CACHE_DIR",
    "CacheStats",
    "OrchestrationContext",
    "OrchestrationStats",
    "ResultCache",
    "Task",
    "TaskGroup",
    "canonicalize",
    "code_version",
    "default_cache_dir",
    "derive_task_seed",
    "make_task",
    "run_task",
    "serial_context",
    "stable_hash",
]
