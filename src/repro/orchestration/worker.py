"""The queue worker: claim, execute, publish, repeat.

``runner worker`` wraps :class:`QueueWorker` in a CLI; the queue
backend reuses :func:`execute_lease` for its own local participation.
A worker is stateless between tasks -- kill it at any instant and the
worst case is one stale lease, which a submitter or another worker
reclaims after ``lease_timeout`` (results live in the shared cache,
so nothing completed is ever lost or recomputed).

While running, a worker maintains a **heartbeat file** under the
queue's ``workers/`` directory (see
:class:`~repro.orchestration.jobqueue.WorkerHeartbeat`): a background
thread refreshes the beat every few seconds even while the main thread
is deep inside a long task, so stale-lease reclaim can tell a dead
worker (beats stopped) from a slow task (beats continue), and
``runner queue status`` can show who is attached and what each worker
is doing.  A SIGKILLed worker leaves its heartbeat behind; the file
going stale IS the death notice.  Clean exits remove it.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.orchestration.cache import ResultCache
from repro.orchestration.jobqueue import (
    DEFAULT_HEARTBEAT_INTERVAL,
    JobQueue,
    Lease,
    QueueEnvelope,
    WorkerHeartbeat,
    reclaim_throttle,
    worker_identity,
)
from repro.orchestration.task import SetupCache, execute_task_profiled


@dataclass
class WorkerStats:
    """What one worker did across its lifetime.

    ``claimed`` counts leases (one per task *or chunk*); ``completed``
    and ``failed`` count individual tasks, so throughput derived from
    them stays in tasks/second regardless of chunking.
    """

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    refused: int = 0
    reclaimed: int = 0


def execute_lease(
    lease: Lease,
    cache: ResultCache,
    queue: JobQueue,
    *,
    setup_cache: Optional[SetupCache] = None,
    stats: Optional[WorkerStats] = None,
) -> bool:
    """Run one claimed task or chunk end to end; ``True`` if every
    member succeeded.

    Each result is stored in the cache *before* the lease is retired
    -- and, for chunks, **as it completes** -- so a crash at any
    instant loses at most the task in flight: a reclaimed chunk's
    already-cached members are skipped on re-execution and only the
    remainder re-runs.  (Single-task leases keep the original
    contract: re-execution is a cheap cache overwrite, never checked
    first.)  A member that raises produces a per-task failure record
    for the submitter instead of killing the worker or the rest of
    the chunk.  An operator interrupt (Ctrl-C / SystemExit) is *not*
    a task failure: the lease goes straight back to the queue for
    another worker, keeping the "kill a worker at any instant"
    contract.

    Executions are profiled (``setup_s``/``run_s``, chunk size; the
    cache adds ``store_s``/``result_bytes``) and routed through
    ``setup_cache`` when given, so chunk members sharing a
    ``setup_key`` build their setup context once.
    """
    members = lease.envelope.members
    chunked = len(members) > 1
    all_ok = True
    try:
        for member in members:
            if chunked and cache.exists(member.entry_key):
                # Re-execution of a reclaimed chunk: this member's
                # result survived the previous owner; only the
                # remainder re-runs.
                continue
            try:
                result, profile = execute_task_profiled(
                    member.task, setup_cache
                )
                profile["chunk_size"] = len(members)
                cache.store(
                    member.entry_key, member.task.key, result,
                    profile=profile,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 -- published, not hidden
                queue.record_failure(member.entry_key, member.task.key, error)
                if stats is not None:
                    stats.failed += 1
                all_ok = False
                continue
            if stats is not None:
                stats.completed += 1
    except (KeyboardInterrupt, SystemExit):
        queue.release(lease)
        raise
    queue.complete(lease)
    return all_ok


class HeartbeatWriter:
    """Maintains one worker's heartbeat file in a queue directory.

    ``beat(**updates)`` applies field updates (current lease, counts)
    and rewrites the file immediately; a daemon thread re-beats every
    ``interval`` seconds so the heartbeat stays fresh while the main
    thread is busy executing a task.  ``clock`` is injectable so tests
    can pin timestamps.
    """

    def __init__(
        self,
        queue: JobQueue,
        *,
        interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        identity: Optional[str] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.queue = queue
        self.interval = interval
        self.clock = clock
        self.worker_id = identity if identity is not None else worker_identity()
        host, _, pid = self.worker_id.rpartition(":")
        now = clock()
        self.state = WorkerHeartbeat(
            worker_id=self.worker_id,
            host=host or self.worker_id,
            pid=int(pid) if pid.isdigit() else 0,
            started=now,
            last_beat=now,
            interval=max(interval, 0.0),
        )
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HeartbeatWriter":
        self.beat()
        if self.interval > 0:
            self._thread = threading.Thread(
                target=self._refresh_loop,
                name=f"heartbeat-{self.worker_id}",
                daemon=True,
            )
            self._thread.start()
        return self

    def beat(self, **updates) -> None:
        """Apply field updates, stamp the time, rewrite the file."""
        with self._lock:
            if self._closed:
                return  # a late refresh must not resurrect the file
            for name, value in updates.items():
                setattr(self.state, name, value)
            self.state.last_beat = self.clock()
            try:
                self.queue.write_heartbeat(self.state)
            except OSError:
                pass  # advisory: a full/flaky disk must not kill work

    def stop(self, *, remove: bool = True) -> None:
        """Stop refreshing; remove the file (clean exit) or leave a
        final beat behind (the worker is done but observable)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if remove:
            # Take the lock so an in-flight refresh finishes first and
            # the closed flag stops any later one -- otherwise a beat
            # racing this removal could re-publish the file and leave
            # a cleanly exited worker looking like a SIGKILL victim
            # forever.  If the refresh thread is wedged mid-write past
            # the join timeout, remove best-effort anyway.
            acquired = self._lock.acquire(timeout=10.0)
            try:
                self._closed = True
                self.queue.remove_heartbeat(self.worker_id)
            finally:
                if acquired:
                    self._lock.release()
        else:
            self.beat(current_lease=None)
            with self._lock:
                self._closed = True

    def _refresh_loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.beat()


class QueueWorker:
    """Drains a queue directory until told (or timed out) to stop."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        *,
        poll_interval: float = 0.2,
        idle_timeout: Optional[float] = None,
        max_tasks: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        heartbeat_interval: Optional[float] = DEFAULT_HEARTBEAT_INTERVAL,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.queue = queue
        self.cache = cache
        self.poll_interval = poll_interval
        #: Exit after this many seconds without claiming anything
        #: (``None`` = run until killed).
        self.idle_timeout = idle_timeout
        self.max_tasks = max_tasks
        #: When set, this worker also reclaims leases of dead peers.
        self.lease_timeout = lease_timeout
        #: ``None`` or 0 disables the heartbeat file entirely.
        self.heartbeat_interval = heartbeat_interval
        self.stats = WorkerStats()
        self.log = log or (lambda message: None)
        #: Entry keys already refused for version mismatch.  Consulted
        #: *before* the claim rename (``JobQueue.claim(skip=...)``), so
        #: a mismatched worker refuses each foreign task exactly once
        #: instead of churning two renames per task per poll forever.
        self._refused_keys = set()
        self._heartbeat: Optional[HeartbeatWriter] = None
        #: Per-worker-process memo of built setup contexts, shared
        #: across every lease this worker executes (not just within a
        #: chunk): consecutive chunks from one sweep reuse contexts.
        self._setup_cache = SetupCache()

    def run(self) -> WorkerStats:
        self.queue.ensure()
        self.log(f"worker {worker_identity()} attached to {self.queue.directory}")
        if self.heartbeat_interval:
            self._heartbeat = HeartbeatWriter(
                self.queue, interval=self.heartbeat_interval
            ).start()
        try:
            self._drain()
        finally:
            if self._heartbeat is not None:
                self._heartbeat.stop(remove=True)
                self._heartbeat = None
        self.log(
            f"worker {worker_identity()} exiting: "
            f"{self.stats.completed} completed, {self.stats.failed} failed, "
            f"{self.stats.refused} refused"
        )
        return self.stats

    def _drain(self) -> None:
        last_claim = time.monotonic()
        # Reclaim scans are throttled exactly like the submitter's
        # (the shared reclaim_throttle rule): an idle worker at a
        # 0.2s poll must not hammer a shared filesystem 5x per second.
        # The first idle pass is allowed through, so a short-lived
        # mop-up worker (--idle-timeout below the interval) still
        # reclaims before it exits.
        reclaim_interval = reclaim_throttle(self.poll_interval)
        last_reclaim = time.monotonic() - reclaim_interval
        while True:
            if self.max_tasks is not None and self.stats.claimed >= self.max_tasks:
                break
            refused_before = self.stats.refused
            lease = self.queue.claim(
                accept=self._accept, skip=self._refused_keys.__contains__
            )
            if lease is None:
                if self.stats.refused != refused_before:
                    self._beat()  # publish the new refusal count
                if (
                    self.lease_timeout is not None
                    and time.monotonic() - last_reclaim >= reclaim_interval
                ):
                    self.stats.reclaimed += self.queue.reclaim_stale(
                        self.lease_timeout
                    )
                    last_reclaim = time.monotonic()
                if (
                    self.idle_timeout is not None
                    and time.monotonic() - last_claim >= self.idle_timeout
                ):
                    break
                time.sleep(self.poll_interval)
                continue
            last_claim = time.monotonic()
            self.stats.claimed += 1
            try:
                # The heartbeat write can stall on a slow filesystem;
                # an operator interrupt landing before execute_lease's
                # own interrupt handling must still give the claimed
                # task back.
                self._beat(current_lease=lease.envelope.queue_key)
            except (KeyboardInterrupt, SystemExit):
                self.queue.release(lease)
                raise
            self._run_one(lease)
            self._beat(current_lease=None)

    # ------------------------------------------------------------------

    def _accept(self, envelope) -> bool:
        """Claim filter: refuse tasks from a different source tree.

        Publishing results computed by different code under the
        submitter's key would silently poison the cache; refused tasks
        stay queued for a matching worker (or the submitter itself)
        and -- because the filter skips rather than blocks -- never
        starve claimable tasks behind them.
        """
        if envelope.cache_version == self.cache.version:
            return True
        if envelope.queue_key not in self._refused_keys:
            self._refused_keys.add(envelope.queue_key)
            self.stats.refused += 1
            self.log(
                f"refused {self._envelope_label(envelope)}: code version "
                f"{self.cache.version} != submitter "
                f"{envelope.cache_version} (update this worker's checkout)"
            )
        return False

    def _beat(self, **updates) -> None:
        if self._heartbeat is None:
            return
        self._heartbeat.beat(
            claimed=self.stats.claimed,
            completed=self.stats.completed,
            failed=self.stats.failed,
            refused=self.stats.refused,
            **updates,
        )

    def _run_one(self, lease: Lease) -> None:
        envelope = lease.envelope
        ok = execute_lease(
            lease, self.cache, self.queue,
            setup_cache=self._setup_cache, stats=self.stats,
        )
        label = self._envelope_label(envelope)
        self.log(f"completed {label}" if ok else f"FAILED {label}")

    @classmethod
    def _envelope_label(cls, envelope: QueueEnvelope) -> str:
        members = envelope.members
        if len(members) == 1:
            return cls._label(members[0].task.key)
        return f"chunk {envelope.queue_key[-8:]} ({len(members)} tasks)"

    @staticmethod
    def _label(key) -> str:
        return "/".join(str(part) for part in key)


def stderr_log(message: str) -> None:
    print(f"[worker] {message}", file=sys.stderr, flush=True)
