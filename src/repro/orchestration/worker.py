"""The queue worker: claim, execute, publish, repeat.

``runner worker`` wraps :class:`QueueWorker` in a CLI; the queue
backend reuses :func:`execute_lease` for its own local participation.
A worker is stateless between tasks -- kill it at any instant and the
worst case is one stale lease, which a submitter or another worker
reclaims after ``lease_timeout`` (results live in the shared cache,
so nothing completed is ever lost or recomputed).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.orchestration.cache import ResultCache
from repro.orchestration.jobqueue import JobQueue, Lease, worker_identity


@dataclass
class WorkerStats:
    """What one worker did across its lifetime."""

    claimed: int = 0
    completed: int = 0
    failed: int = 0
    refused: int = 0
    reclaimed: int = 0


def execute_lease(lease: Lease, cache: ResultCache, queue: JobQueue) -> bool:
    """Run one claimed task end to end; ``True`` on success.

    The result is stored in the cache *before* the lease is retired, so
    a crash between the two leaves a stale lease whose re-execution is
    a cheap cache overwrite -- never a lost result.  A task that raises
    produces a failure record for the submitter instead of killing the
    worker.  An operator interrupt (Ctrl-C / SystemExit) is *not* a
    task failure: the task goes straight back to the queue for another
    worker, keeping the "kill a worker at any instant" contract.
    """
    try:
        result = lease.envelope.task.execute()
        cache.store(lease.envelope.entry_key, lease.envelope.task.key, result)
    except (KeyboardInterrupt, SystemExit):
        queue.release(lease)
        raise
    except BaseException as error:  # noqa: BLE001 -- published, not hidden
        queue.fail(lease, error)
        return False
    queue.complete(lease)
    return True


class QueueWorker:
    """Drains a queue directory until told (or timed out) to stop."""

    def __init__(
        self,
        queue: JobQueue,
        cache: ResultCache,
        *,
        poll_interval: float = 0.2,
        idle_timeout: Optional[float] = None,
        max_tasks: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.queue = queue
        self.cache = cache
        self.poll_interval = poll_interval
        #: Exit after this many seconds without claiming anything
        #: (``None`` = run until killed).
        self.idle_timeout = idle_timeout
        self.max_tasks = max_tasks
        #: When set, this worker also reclaims leases of dead peers.
        self.lease_timeout = lease_timeout
        self.stats = WorkerStats()
        self.log = log or (lambda message: None)
        #: Entry keys already refused for version mismatch (warn once).
        self._refused_keys = set()

    def run(self) -> WorkerStats:
        self.queue.ensure()
        self.log(f"worker {worker_identity()} attached to {self.queue.directory}")
        last_claim = time.monotonic()
        while True:
            if self.max_tasks is not None and self.stats.claimed >= self.max_tasks:
                break
            lease = self.queue.claim(accept=self._accept)
            if lease is None:
                if self.lease_timeout is not None:
                    self.stats.reclaimed += self.queue.reclaim_stale(
                        self.lease_timeout
                    )
                if (
                    self.idle_timeout is not None
                    and time.monotonic() - last_claim >= self.idle_timeout
                ):
                    break
                time.sleep(self.poll_interval)
                continue
            last_claim = time.monotonic()
            self.stats.claimed += 1
            self._run_one(lease)
        self.log(
            f"worker {worker_identity()} exiting: "
            f"{self.stats.completed} completed, {self.stats.failed} failed, "
            f"{self.stats.refused} refused"
        )
        return self.stats

    # ------------------------------------------------------------------

    def _accept(self, envelope) -> bool:
        """Claim filter: refuse tasks from a different source tree.

        Publishing results computed by different code under the
        submitter's key would silently poison the cache; refused tasks
        stay queued for a matching worker (or the submitter itself)
        and -- because the filter skips rather than blocks -- never
        starve claimable tasks behind them.
        """
        if envelope.cache_version == self.cache.version:
            return True
        if envelope.entry_key not in self._refused_keys:
            self._refused_keys.add(envelope.entry_key)
            self.stats.refused += 1
            self.log(
                f"refused {self._label(envelope.task.key)}: code version "
                f"{self.cache.version} != submitter "
                f"{envelope.cache_version} (update this worker's checkout)"
            )
        return False

    def _run_one(self, lease: Lease) -> None:
        envelope = lease.envelope
        if execute_lease(lease, self.cache, self.queue):
            self.stats.completed += 1
            self.log(f"completed {self._label(envelope.task.key)}")
        else:
            self.stats.failed += 1
            self.log(f"FAILED {self._label(envelope.task.key)}")

    @staticmethod
    def _label(key) -> str:
        return "/".join(str(part) for part in key)


def stderr_log(message: str) -> None:
    print(f"[worker] {message}", file=sys.stderr, flush=True)
