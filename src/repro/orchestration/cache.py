"""On-disk result cache for orchestrated tasks.

Layout: one pickle file per result under the cache directory
(default ``.repro_cache/``, overridable via ``$REPRO_CACHE_DIR``),
named ``<sha256>.pkl`` where the hash covers::

    (task.key, fingerprint, code_version)

``fingerprint`` is the experiment-level context -- by convention the
full :class:`~repro.experiments.common.ExperimentScale` plus the
:class:`~repro.sim.config.SystemConfig` -- so an entry written under
one scale is *never* served for another.  ``code_version``
fingerprints the ``repro`` source tree, so editing the code
invalidates every cached result instead of replaying stale values.

Each file stores a small header next to the payload and is verified
on load; a truncated, corrupted, or mismatched file is deleted and
treated as a miss (the task is simply recomputed).  Writes go through
a temporary file and :func:`os.replace`, so concurrent runs sharing a
cache directory never observe half-written entries.

Entries also carry a **provenance** stamp -- which worker
(``host:pid``) stored the result, when, and under which code version.
Provenance is outside the content hash and outside the payload: it
never influences results, it only makes them attributable (the CLI
folds the per-worker counts into ``meta.provenance`` and the HTML
report renders them per section).

Cache files are ordinary pickles: they are a *local* artifact, not an
interchange format -- do not load cache directories from untrusted
sources.
"""

from __future__ import annotations

import os
import pickle
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.orchestration.hashing import TaskKey, code_version, stable_hash

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bumped when the on-disk entry format changes.
_FORMAT = 1

_MISS = object()


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def scan_cache_entry_keys(directory: Union[str, Path]) -> set:
    """Entry keys of every cache file in ``directory``, in ONE scan.

    The single home of the cache filename contract (``<key>.pkl``,
    dot-prefixed temp files excluded) -- shared by the submitter's
    collection pass and ``runner queue status``.
    """
    try:
        with os.scandir(directory) as entries:
            return {
                entry.name[: -len(".pkl")]
                for entry in entries
                if entry.name.endswith(".pkl")
                and not entry.name.startswith(".")
            }
    except FileNotFoundError:
        return set()


def result_provenance(version: str) -> Dict[str, Any]:
    """The provenance stamp for a result computed by THIS process."""
    return {
        "worker": f"{socket.gethostname()}:{os.getpid()}",
        "stored_at": time.time(),
        "code_version": version,
    }


@dataclass
class CacheStats:
    """Counters for one cache instance (cumulative across runs)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_discarded: int = 0


class ResultCache:
    """Content-addressed pickle store for task results."""

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        *,
        version: Optional[str] = None,
    ) -> None:
        #: ``version`` defaults to the live source fingerprint; tests
        #: inject fixed strings to exercise invalidation.
        self.directory = Path(directory) if directory else default_cache_dir()
        self.version = version if version is not None else code_version()
        self.stats = CacheStats()
        #: ``entry_key -> worker label`` for every entry this instance
        #: stored or served.  Keyed by entry so a store immediately
        #: re-read (the participating queue submitter does this)
        #: counts once, and so the queue backend can blank entries it
        #: executed on behalf of a *foreign* submitter.
        self.provenance_seen: Dict[str, Optional[str]] = {}
        #: Append-only log of every provenance observation, one entry
        #: key per load or store.  Unlike ``provenance_seen`` this
        #: grows on *every* observation -- including a cache hit on an
        #: already-seen key -- so the CLI's per-experiment length
        #: snapshots still delimit a repeated experiment; the CLI
        #: dedups keys within a slice and resolves worker labels
        #: through ``provenance_seen`` when folding the slice into
        #: ``meta.provenance`` so reports can say *which workers*
        #: computed a figure.
        self.provenance_events: List[str] = []

    # ------------------------------------------------------------------

    def entry_key(self, task_key: TaskKey, fingerprint: Any) -> str:
        """The content hash addressing one result on disk."""
        return stable_hash((tuple(task_key), fingerprint, self.version))

    def path_for(self, entry_key: str) -> Path:
        return self.directory / f"{entry_key}.pkl"

    def scan_entry_keys(self) -> set:
        """Every entry key currently on disk, from ONE directory scan.

        The queue submitter polls outstanding entries each pass; doing
        so with per-entry ``stat`` calls is O(N) metadata round-trips
        per pass -- O(N^2) over a draining sweep, ruinous on NFS.  One
        ``scandir`` answers the whole pass.
        """
        return scan_cache_entry_keys(self.directory)

    # ------------------------------------------------------------------

    def load(self, entry_key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for an entry; corrupt files become misses."""
        path = self.path_for(entry_key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            self._discard(path)
            self.stats.misses += 1
            return False, None
        value = self._validate(entry, entry_key)
        if value is _MISS:
            self._discard(path)
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        self._note_provenance(entry_key, entry.get("provenance"))
        return True, value

    def load_provenance(self, entry_key: str) -> Optional[Dict[str, Any]]:
        """The provenance stamp of one stored entry, if readable.

        Purely observational (``runner queue status``, tests): does not
        touch hit/miss statistics and never deletes anything.
        """
        try:
            with open(self.path_for(entry_key), "rb") as handle:
                entry = pickle.load(handle)
        except Exception:
            return None
        if isinstance(entry, dict) and isinstance(
            entry.get("provenance"), dict
        ):
            return entry["provenance"]
        return None

    def store(
        self,
        entry_key: str,
        task_key: TaskKey,
        value: Any,
        *,
        provenance: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist one result.

        ``provenance`` defaults to a stamp for *this* process (worker
        label, wall-clock store time, code version); queue workers thus
        sign their results without any extra plumbing.
        """
        if provenance is None:
            provenance = result_provenance(self.version)
        entry = {
            "format": _FORMAT,
            "entry_key": entry_key,
            "task_key": tuple(task_key),
            "version": self.version,
            "provenance": provenance,
            "payload": value,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path_for(entry_key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._note_provenance(entry_key, provenance)

    # ------------------------------------------------------------------

    def _note_provenance(self, entry_key: str, provenance: Any) -> None:
        worker = (
            provenance.get("worker") if isinstance(provenance, dict) else None
        )
        self.provenance_events.append(entry_key)
        if entry_key not in self.provenance_seen or worker is not None:
            self.provenance_seen[entry_key] = worker

    def _validate(self, entry: Any, entry_key: str) -> Any:
        if (
            isinstance(entry, dict)
            and entry.get("format") == _FORMAT
            and entry.get("entry_key") == entry_key
            and entry.get("version") == self.version
            and "payload" in entry
        ):
            return entry["payload"]
        return _MISS

    def _discard(self, path: Path) -> None:
        self.stats.corrupt_discarded += 1
        try:
            path.unlink()
        except OSError:
            pass
