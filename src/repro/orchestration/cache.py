"""On-disk result cache for orchestrated tasks.

Layout: one pickle file per result under the cache directory
(default ``.repro_cache/``, overridable via ``$REPRO_CACHE_DIR``),
**sharded** by entry-key prefix into 256 fan-out directories::

    <cache-dir>/ab/<ab...sha256...>.pkl

where the hash covers::

    (task.key, fingerprint, code_version)

Sharding exists for the always-on service: a million-entry cache in
one flat directory makes every ``scandir`` (the submitter's
collection pass, ``runner queue status``, the HTTP ``/queue``
endpoint) a storm over one giant directory and brings out the worst
in every filesystem's per-directory scaling.  256-way fan-out keeps
each shard at ~1/256th of the entries while the full scan stays one
pass: one top-level ``scandir`` plus one per shard directory, no
per-entry ``stat`` calls.

Caches written before sharding (flat ``<cache-dir>/<sha256>.pkl``)
stay readable forever: reads fall through to the legacy flat path,
scans count both layouts (each key once -- the sharded copy wins when
both exist), and new stores always land sharded, so a legacy cache
migrates incrementally as results are recomputed, never by a flag
day.  Shard directories are exactly the two-character subdirectories
of the cache dir; everything else (``queue/``, ``service/``) is
ignored by scans.

``fingerprint`` is the experiment-level context -- by convention the
full :class:`~repro.experiments.common.ExperimentScale` plus the
:class:`~repro.sim.config.SystemConfig` -- so an entry written under
one scale is *never* served for another.  ``code_version``
fingerprints the ``repro`` source tree, so editing the code
invalidates every cached result instead of replaying stale values.

Each file stores a small header next to the payload and is verified
on load; a truncated, corrupted, or mismatched file is deleted and
treated as a miss (the task is simply recomputed).  Writes go through
a temporary file and :func:`os.replace`, so concurrent runs sharing a
cache directory never observe half-written entries.

Entries also carry a **provenance** stamp -- which worker
(``host:pid``) stored the result, when, and under which code version.
Provenance is outside the content hash and outside the payload: it
never influences results, it only makes them attributable (the CLI
folds the per-worker counts into ``meta.provenance`` and the HTML
report renders them per section).

Executions that went through the profiled path extend the stamp with
a **profile**: ``{setup_s, run_s, store_s, result_bytes, chunk_size}``
(see :data:`PROFILE_FIELDS`).  Like the rest of provenance it is
outside the content hash, so profiled and unprofiled stores of the
same task are interchangeable cache entries with byte-identical
payloads.  ``runner profile`` and ``runner queue status --profile``
aggregate these stamps into per-experiment timing distributions.

Cache files are ordinary pickles: they are a *local* artifact, not an
interchange format -- do not load cache directories from untrusted
sources.
"""

from __future__ import annotations

import os
import pickle
import socket
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.orchestration.hashing import TaskKey, code_version, stable_hash

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bumped when the on-disk entry format changes.
_FORMAT = 1

#: Entry-key prefix length naming a shard directory: 2 hex chars =
#: 256-way fan-out.  Changing this would orphan existing sharded
#: entries (they would only be found by a full scan, not by
#: ``path_for``), so treat it as part of the on-disk format.
SHARD_WIDTH = 2

_MISS = object()


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


def shard_name(entry_key: str) -> str:
    """The shard directory holding ``entry_key`` (its first 2 chars)."""
    return entry_key[:SHARD_WIDTH]


def is_shard_dir(name: str) -> bool:
    """Whether a cache subdirectory name is a shard directory.

    The contract is purely structural -- exactly ``SHARD_WIDTH``
    characters, not hidden -- so sibling directories the cache shares
    its home with (``queue/``, ``service/``, dot-prefixed scratch)
    are never mistaken for shards.
    """
    return len(name) == SHARD_WIDTH and not name.startswith(".")


def _scan_one_dir(directory: Union[str, Path]) -> Tuple[set, List[str]]:
    """``(entry_keys, shard_dir_names)`` from ONE ``scandir`` pass."""
    keys, shards = set(), []
    try:
        with os.scandir(directory) as entries:
            for entry in entries:
                if entry.name.startswith("."):
                    continue
                if entry.name.endswith(".pkl"):
                    keys.add(entry.name[: -len(".pkl")])
                elif is_shard_dir(entry.name) and entry.is_dir(
                    follow_symlinks=False
                ):
                    shards.append(entry.name)
    except FileNotFoundError:
        pass
    return keys, shards


def scan_cache_entry_keys(directory: Union[str, Path]) -> set:
    """Entry keys of every cache file in ``directory``, in ONE pass.

    The single home of the cache layout contract (``<key>.pkl`` flat
    or under a ``<key[:2]>/`` shard, dot-prefixed temp files
    excluded) -- shared by the submitter's collection pass, ``runner
    queue status``, and the service's ``/queue`` endpoint.  One
    top-level ``scandir`` plus one per shard directory; no per-entry
    ``stat`` calls, no re-listing a shard twice.  Keys present in
    both layouts (a cache mid-migration) are counted **once** -- the
    set union -- matching ``load``'s preference for the sharded copy.
    """
    directory = Path(directory)
    keys, shards = _scan_one_dir(directory)
    for shard in shards:
        shard_keys, _ = _scan_one_dir(directory / shard)
        keys |= shard_keys
    return keys


def result_provenance(version: str) -> Dict[str, Any]:
    """The provenance stamp for a result computed by THIS process."""
    return {
        "worker": f"{socket.gethostname()}:{os.getpid()}",
        "stored_at": time.time(),
        "code_version": version,
    }


#: Profiling keys a profiled execution merges into the provenance
#: stamp.  ``setup_s``/``run_s`` are measured around the task function,
#: ``store_s``/``result_bytes`` around result serialization, and
#: ``chunk_size`` records the transport batch the task travelled in.
PROFILE_FIELDS = ("setup_s", "run_s", "store_s", "result_bytes", "chunk_size")


def profile_from_provenance(provenance: Any) -> Optional[Dict[str, Any]]:
    """The profile stamp embedded in a provenance dict, if any.

    ``None`` for entries stored by unprofiled code paths (including
    every pre-profiling cache entry) -- aggregation simply skips them.
    """
    if not isinstance(provenance, dict) or "run_s" not in provenance:
        return None
    return {
        name: provenance[name]
        for name in PROFILE_FIELDS
        if name in provenance
    }


@dataclass
class CacheStats:
    """Counters for one cache instance (cumulative across runs)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_discarded: int = 0


class ResultCache:
    """Content-addressed pickle store for task results."""

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        *,
        version: Optional[str] = None,
    ) -> None:
        #: ``version`` defaults to the live source fingerprint; tests
        #: inject fixed strings to exercise invalidation.
        self.directory = Path(directory) if directory else default_cache_dir()
        self.version = version if version is not None else code_version()
        self.stats = CacheStats()
        #: ``entry_key -> worker label`` for every entry this instance
        #: stored or served.  Keyed by entry so a store immediately
        #: re-read (the participating queue submitter does this)
        #: counts once, and so the queue backend can blank entries it
        #: executed on behalf of a *foreign* submitter.
        self.provenance_seen: Dict[str, Optional[str]] = {}
        #: Append-only log of every provenance observation, one entry
        #: key per load or store.  Unlike ``provenance_seen`` this
        #: grows on *every* observation -- including a cache hit on an
        #: already-seen key -- so the CLI's per-experiment length
        #: snapshots still delimit a repeated experiment; the CLI
        #: dedups keys within a slice and resolves worker labels
        #: through ``provenance_seen`` when folding the slice into
        #: ``meta.provenance`` so reports can say *which workers*
        #: computed a figure.
        self.provenance_events: List[str] = []
        #: ``entry_key -> profile stamp`` for every profiled entry this
        #: instance stored or served; the sweep engine aggregates the
        #: slice it touched into ``meta.provenance``.
        self.profile_seen: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------

    def entry_key(self, task_key: TaskKey, fingerprint: Any) -> str:
        """The content hash addressing one result on disk."""
        return stable_hash((tuple(task_key), fingerprint, self.version))

    def path_for(self, entry_key: str) -> Path:
        """Where ``entry_key`` lives (and is written): its shard."""
        return self.directory / shard_name(entry_key) / f"{entry_key}.pkl"

    def legacy_path_for(self, entry_key: str) -> Path:
        """The pre-sharding flat location, still honored on reads."""
        return self.directory / f"{entry_key}.pkl"

    def candidate_paths(self, entry_key: str) -> Tuple[Path, Path]:
        """Read locations in preference order: sharded, then flat.

        The sharded copy wins when both exist (a cache mid-migration):
        it is the one new stores overwrite, so it is never staler than
        the flat leftover.
        """
        return (self.path_for(entry_key), self.legacy_path_for(entry_key))

    def exists(self, entry_key: str) -> bool:
        """Whether a stored entry exists in either layout (no read)."""
        return any(path.exists() for path in self.candidate_paths(entry_key))

    def scan_entry_keys(self) -> set:
        """Every entry key currently on disk, from ONE scan pass.

        The queue submitter polls outstanding entries each pass; doing
        so with per-entry ``stat`` calls is O(N) metadata round-trips
        per pass -- O(N^2) over a draining sweep, ruinous on NFS.  One
        pass over the shard fan-out answers the whole poll.
        """
        return scan_cache_entry_keys(self.directory)

    # ------------------------------------------------------------------

    def load(self, entry_key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for an entry; corrupt files become misses.

        Reads prefer the sharded location and fall through to the
        legacy flat one, so caches written before sharding replay
        without migration.  A corrupt copy is deleted and the *next*
        candidate still gets its chance -- a torn sharded overwrite
        can never shadow a valid flat original.
        """
        for path in self.candidate_paths(entry_key):
            try:
                with open(path, "rb") as handle:
                    entry = pickle.load(handle)
            except FileNotFoundError:
                continue
            except Exception:
                self._discard(path)
                continue
            value = self._validate(entry, entry_key)
            if value is _MISS:
                self._discard(path)
                continue
            self.stats.hits += 1
            self._note_provenance(entry_key, entry.get("provenance"))
            return True, value
        self.stats.misses += 1
        return False, None

    def load_provenance(self, entry_key: str) -> Optional[Dict[str, Any]]:
        """The provenance stamp of one stored entry, if readable.

        Purely observational (``runner queue status``, tests): does not
        touch hit/miss statistics and never deletes anything.
        """
        for path in self.candidate_paths(entry_key):
            try:
                with open(path, "rb") as handle:
                    entry = pickle.load(handle)
            except Exception:
                continue
            if isinstance(entry, dict) and isinstance(
                entry.get("provenance"), dict
            ):
                return entry["provenance"]
        return None

    def store(
        self,
        entry_key: str,
        task_key: TaskKey,
        value: Any,
        *,
        provenance: Optional[Dict[str, Any]] = None,
        profile: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically persist one result.

        ``provenance`` defaults to a stamp for *this* process (worker
        label, wall-clock store time, code version); queue workers thus
        sign their results without any extra plumbing.

        ``profile`` (``setup_s``/``run_s`` from the executor, plus an
        optional ``chunk_size``) is merged flat into the provenance
        stamp, completed here with ``store_s`` and ``result_bytes``
        from a timed serialization of the payload.  The payload is
        pickled once extra for the measurement -- results are small
        (lists of floats), and the profile must live *inside* the
        entry being written, so measuring the publishing write itself
        is not possible.
        """
        if provenance is None:
            provenance = result_provenance(self.version)
        if profile is not None:
            measure_started = time.perf_counter()
            result_bytes = len(
                pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            )
            provenance = dict(provenance)
            provenance.update(profile)
            provenance.setdefault("chunk_size", 1)
            provenance["result_bytes"] = result_bytes
            provenance["store_s"] = time.perf_counter() - measure_started
        entry = {
            "format": _FORMAT,
            "entry_key": entry_key,
            "task_key": tuple(task_key),
            "version": self.version,
            "provenance": provenance,
            "payload": value,
        }
        destination = self.path_for(entry_key)
        destination.parent.mkdir(parents=True, exist_ok=True)
        # The temp file lives in the shard directory itself so the
        # publishing os.replace stays a same-directory rename (atomic
        # on every filesystem that matters, including NFS).
        fd, tmp_name = tempfile.mkstemp(
            dir=destination.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self._note_provenance(entry_key, provenance)

    # ------------------------------------------------------------------

    def _note_provenance(self, entry_key: str, provenance: Any) -> None:
        worker = (
            provenance.get("worker") if isinstance(provenance, dict) else None
        )
        self.provenance_events.append(entry_key)
        if entry_key not in self.provenance_seen or worker is not None:
            self.provenance_seen[entry_key] = worker
        profile = profile_from_provenance(provenance)
        if profile is not None:
            self.profile_seen[entry_key] = profile

    def _validate(self, entry: Any, entry_key: str) -> Any:
        if (
            isinstance(entry, dict)
            and entry.get("format") == _FORMAT
            and entry.get("entry_key") == entry_key
            and entry.get("version") == self.version
            and "payload" in entry
        ):
            return entry["payload"]
        return _MISS

    def _discard(self, path: Path) -> None:
        self.stats.corrupt_discarded += 1
        try:
            path.unlink()
        except OSError:
            pass
