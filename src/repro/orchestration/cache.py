"""On-disk result cache for orchestrated tasks.

Layout: one pickle file per result under the cache directory
(default ``.repro_cache/``, overridable via ``$REPRO_CACHE_DIR``),
named ``<sha256>.pkl`` where the hash covers::

    (task.key, fingerprint, code_version)

``fingerprint`` is the experiment-level context -- by convention the
full :class:`~repro.experiments.common.ExperimentScale` plus the
:class:`~repro.sim.config.SystemConfig` -- so an entry written under
one scale is *never* served for another.  ``code_version``
fingerprints the ``repro`` source tree, so editing the code
invalidates every cached result instead of replaying stale values.

Each file stores a small header next to the payload and is verified
on load; a truncated, corrupted, or mismatched file is deleted and
treated as a miss (the task is simply recomputed).  Writes go through
a temporary file and :func:`os.replace`, so concurrent runs sharing a
cache directory never observe half-written entries.

Cache files are ordinary pickles: they are a *local* artifact, not an
interchange format -- do not load cache directories from untrusted
sources.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Tuple, Union

from repro.orchestration.hashing import TaskKey, code_version, stable_hash

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the current working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Bumped when the on-disk entry format changes.
_FORMAT = 1

_MISS = object()


def default_cache_dir() -> Path:
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass
class CacheStats:
    """Counters for one cache instance (cumulative across runs)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_discarded: int = 0


class ResultCache:
    """Content-addressed pickle store for task results."""

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        *,
        version: Optional[str] = None,
    ) -> None:
        #: ``version`` defaults to the live source fingerprint; tests
        #: inject fixed strings to exercise invalidation.
        self.directory = Path(directory) if directory else default_cache_dir()
        self.version = version if version is not None else code_version()
        self.stats = CacheStats()

    # ------------------------------------------------------------------

    def entry_key(self, task_key: TaskKey, fingerprint: Any) -> str:
        """The content hash addressing one result on disk."""
        return stable_hash((tuple(task_key), fingerprint, self.version))

    def path_for(self, entry_key: str) -> Path:
        return self.directory / f"{entry_key}.pkl"

    # ------------------------------------------------------------------

    def load(self, entry_key: str) -> Tuple[bool, Any]:
        """``(hit, value)`` for an entry; corrupt files become misses."""
        path = self.path_for(entry_key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return False, None
        except Exception:
            self._discard(path)
            self.stats.misses += 1
            return False, None
        value = self._validate(entry, entry_key)
        if value is _MISS:
            self._discard(path)
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def store(self, entry_key: str, task_key: TaskKey, value: Any) -> None:
        """Atomically persist one result."""
        entry = {
            "format": _FORMAT,
            "entry_key": entry_key,
            "task_key": tuple(task_key),
            "version": self.version,
            "payload": value,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path_for(entry_key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # ------------------------------------------------------------------

    def _validate(self, entry: Any, entry_key: str) -> Any:
        if (
            isinstance(entry, dict)
            and entry.get("format") == _FORMAT
            and entry.get("entry_key") == entry_key
            and entry.get("version") == self.version
            and "payload" in entry
        ):
            return entry["payload"]
        return _MISS

    def _discard(self, path: Path) -> None:
        self.stats.corrupt_discarded += 1
        try:
            path.unlink()
        except OSError:
            pass
