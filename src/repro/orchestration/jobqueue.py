"""File-based job queue: lease files and atomic renames.

The queue is a directory (by convention ``<cache_dir>/queue``) shared
between one or more *submitters* (an
:class:`~repro.orchestration.backends.queue.QueueBackend` inside a
runner process) and any number of *workers* (``runner worker``
processes) -- on one host or on several hosts sharing a filesystem.
No daemon, no sockets, no locks beyond what ``os.rename`` gives us:

```
queue/
  tasks/<entry_key>.task    pickled TaskEnvelope, awaiting a claim
  leases/<entry_key>.task   the same file, claimed by some worker
  failed/<entry_key>.pkl    failure record for a task that raised
```

State transitions are single atomic renames, so two workers can never
both own a task:

* **enqueue**   -- write to a temp file, ``os.replace`` into ``tasks/``.
* **claim**     -- ``os.rename(tasks/X, leases/X)``; losing the race
  raises ``FileNotFoundError`` and the claimer just moves on.  The
  lease file's mtime is bumped to record the claim time.
* **complete**  -- the worker stores the result in the shared
  :class:`~repro.orchestration.cache.ResultCache` (atomic in its own
  right) and unlinks the lease.  *The cache is the result channel*:
  submitters detect completion by watching for the entry key to become
  loadable.
* **fail**      -- a failure record lands in ``failed/`` (temp file +
  ``os.replace``) and the lease is unlinked; submitters surface it.
* **reclaim**   -- a lease older than ``lease_timeout`` belongs to a
  worker presumed dead; ``os.rename(leases/X, tasks/X)`` makes the
  task claimable again.  Reclaiming a lease whose worker was merely
  slow is harmless: tasks are pure and cache stores are atomic, so a
  duplicated execution wastes time but can never corrupt a result.

Queue files are ordinary pickles, exactly like the cache entries next
to them: a local/cluster artifact, not an interchange format.  Do not
attach workers to queue directories from untrusted sources.
"""

from __future__ import annotations

import os
import pickle
import socket
import tempfile
import time
import traceback
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, List, Optional, Union

from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import Task

#: Bumped when the on-disk envelope format changes.
ENVELOPE_FORMAT = 1

#: Subdirectory of a cache directory conventionally used as the queue.
DEFAULT_QUEUE_SUBDIR = "queue"


@dataclass(frozen=True)
class TaskEnvelope:
    """What travels through the queue: one task plus its cache address.

    ``cache_version`` pins the submitter's code fingerprint; a worker
    whose source tree differs refuses the task (its results would be
    published under a key computed by different code).
    """

    entry_key: str
    task: Task
    cache_version: str

    def to_payload(self) -> dict:
        return {
            "format": ENVELOPE_FORMAT,
            "entry_key": self.entry_key,
            "task": self.task,
            "cache_version": self.cache_version,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "TaskEnvelope":
        if (
            not isinstance(payload, dict)
            or payload.get("format") != ENVELOPE_FORMAT
            or not isinstance(payload.get("task"), Task)
        ):
            raise QueueFormatError(f"unrecognized task envelope: {payload!r}")
        return cls(
            entry_key=payload["entry_key"],
            task=payload["task"],
            cache_version=payload["cache_version"],
        )


@dataclass(frozen=True)
class FailureRecord:
    """Why one task failed, published for the submitter to surface."""

    entry_key: str
    task_key: TaskKey
    error: str
    traceback: str
    worker: str


@dataclass(frozen=True)
class Lease:
    """A claimed task: the envelope plus its lease file."""

    envelope: TaskEnvelope
    path: Path


class QueueFormatError(RuntimeError):
    """A queue file did not contain what its name promised."""


def worker_identity() -> str:
    """``host:pid``, recorded in failure records for debugging."""
    return f"{socket.gethostname()}:{os.getpid()}"


class JobQueue:
    """One queue directory; safe for any number of concurrent users."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.tasks_dir = self.directory / "tasks"
        self.leases_dir = self.directory / "leases"
        self.failed_dir = self.directory / "failed"

    def ensure(self) -> "JobQueue":
        for path in (self.tasks_dir, self.leases_dir, self.failed_dir):
            path.mkdir(parents=True, exist_ok=True)
        return self

    # ------------------------------------------------------------------
    # Submitter side
    # ------------------------------------------------------------------

    def enqueue(self, envelope: TaskEnvelope) -> bool:
        """Publish one task; ``False`` if it is already in flight.

        "In flight" means a task or lease file for the same entry key
        already exists -- e.g. a second submitter sharing the sweep, or
        a leftover from an interrupted run that a worker can still
        finish.
        """
        self.ensure()
        task_path = self._task_path(envelope.entry_key)
        if task_path.exists() or self._lease_path(envelope.entry_key).exists():
            return False
        self._atomic_write_pickle(envelope.to_payload(), task_path)
        return True

    def failure_for(self, entry_key: str) -> Optional[FailureRecord]:
        path = self.failed_dir / f"{entry_key}.pkl"
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except (FileNotFoundError, OSError):
            return None
        except Exception:
            # A half-readable failure record still means the task
            # failed; synthesize a minimal one.
            return FailureRecord(
                entry_key=entry_key,
                task_key=(),
                error="unreadable failure record",
                traceback="",
                worker="unknown",
            )
        if isinstance(record, FailureRecord):
            return record
        return None

    def clear_failure(self, entry_key: str) -> None:
        self._unlink_quietly(self.failed_dir / f"{entry_key}.pkl")

    def discard_task(self, entry_key: str) -> None:
        """Drop an unclaimed task file (its result arrived elsewhere)."""
        self._unlink_quietly(self._task_path(entry_key))

    def reclaim_stale(self, lease_timeout: float) -> int:
        """Return leases older than ``lease_timeout`` seconds to ``tasks/``."""
        reclaimed = 0
        now = time.time()
        for lease_path in self._listdir(self.leases_dir):
            try:
                age = now - lease_path.stat().st_mtime
            except OSError:
                continue
            if age < lease_timeout:
                continue
            try:
                os.rename(lease_path, self.tasks_dir / lease_path.name)
                reclaimed += 1
            except OSError:
                continue  # someone else beat us to it
        return reclaimed

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(
        self,
        accept: Optional[Callable[[TaskEnvelope], bool]] = None,
    ) -> Optional[Lease]:
        """Atomically take one queued task; ``None`` when none qualify.

        ``accept`` filters envelopes *after* the atomic rename: a task
        it rejects is put straight back and scanning continues, so an
        unacceptable task (e.g. one published by a submitter on a
        different code version) can never starve the claimable ones
        behind it.  Corrupt task files (truncated writes from a
        submitter killed at the wrong instant never happen -- enqueue
        is atomic -- but a stray file someone dropped in ``tasks/``
        might) are claimed, discarded, and skipped.
        """
        self.ensure()
        for task_path in sorted(self._listdir(self.tasks_dir)):
            lease_path = self.leases_dir / task_path.name
            try:
                os.rename(task_path, lease_path)
            except OSError:
                continue  # lost the race; try the next file
            os.utime(lease_path)  # claim time, for stale-lease reclaim
            try:
                with open(lease_path, "rb") as handle:
                    envelope = TaskEnvelope.from_payload(pickle.load(handle))
            except Exception:
                self._unlink_quietly(lease_path)
                continue
            if accept is not None and not accept(envelope):
                try:
                    os.rename(lease_path, task_path)
                except OSError:
                    pass
                continue
            return Lease(envelope=envelope, path=lease_path)
        return None

    def complete(self, lease: Lease) -> None:
        """The result is in the cache; retire the lease."""
        self._unlink_quietly(lease.path)

    def fail(self, lease: Lease, error: BaseException) -> None:
        record = FailureRecord(
            entry_key=lease.envelope.entry_key,
            task_key=lease.envelope.task.key,
            error=f"{type(error).__name__}: {error}",
            traceback="".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
            worker=worker_identity(),
        )
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write_pickle(
            record, self.failed_dir / f"{lease.envelope.entry_key}.pkl"
        )
        self._unlink_quietly(lease.path)

    def release(self, lease: Lease) -> None:
        """Put a claimed task back unexecuted (e.g. version mismatch)."""
        try:
            os.rename(lease.path, self.tasks_dir / lease.path.name)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        return len(self._listdir(self.tasks_dir))

    def leased_count(self) -> int:
        return len(self._listdir(self.leases_dir))

    # ------------------------------------------------------------------

    def _task_path(self, entry_key: str) -> Path:
        return self.tasks_dir / f"{entry_key}.task"

    def _lease_path(self, entry_key: str) -> Path:
        return self.leases_dir / f"{entry_key}.task"

    def _listdir(self, directory: Path) -> List[Path]:
        try:
            return [
                directory / name
                for name in os.listdir(directory)
                if not name.startswith(".")
            ]
        except FileNotFoundError:
            return []

    def _atomic_write_pickle(self, payload: Any, destination: Path) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=destination.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def default_queue_dir(cache_directory: Union[str, Path]) -> Path:
    """The conventional queue location inside a shared cache dir."""
    return Path(cache_directory) / DEFAULT_QUEUE_SUBDIR
