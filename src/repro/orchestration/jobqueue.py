"""File-based job queue: lease files and atomic renames.

The queue is a directory (by convention ``<cache_dir>/queue``) shared
between one or more *submitters* (an
:class:`~repro.orchestration.backends.queue.QueueBackend` inside a
runner process) and any number of *workers* (``runner worker``
processes) -- on one host or on several hosts sharing a filesystem.
No daemon, no sockets, no locks beyond what ``os.rename`` gives us:

```
queue/
  tasks/<queue_key>.task    pickled TaskEnvelope or ChunkEnvelope,
                            awaiting a claim
  leases/<queue_key>.task   the same file, claimed by some worker
  failed/<entry_key>.pkl    failure record for a task that raised
  workers/<worker>.json     heartbeat: who is attached, doing what
```

A *queue key* names one queue file: the cache entry key for a single
:class:`TaskEnvelope`, a deterministic ``chunk-<sha>`` digest of the
member entry keys for a :class:`ChunkEnvelope` (K tasks travelling
under one lease; see "Chunking" in ORCHESTRATION.md).  Failure records
are always per *entry key* -- a chunk member that raises gets its own
record, exactly as if it had travelled alone.

State transitions are single atomic renames, so two workers can never
both own a task:

* **enqueue**   -- write to a temp file, ``os.replace`` into ``tasks/``.
* **claim**     -- ``os.rename(tasks/X, leases/X)``; losing the race
  raises ``FileNotFoundError`` and the claimer just moves on.  The
  lease file's mtime is bumped to record the claim time.
* **complete**  -- the worker stores the result in the shared
  :class:`~repro.orchestration.cache.ResultCache` (atomic in its own
  right) and unlinks the lease.  *The cache is the result channel*:
  submitters detect completion by watching for the entry key to become
  loadable.
* **fail**      -- a failure record lands in ``failed/`` (temp file +
  ``os.replace``) and the lease is unlinked; submitters surface it.
* **reclaim**   -- a lease older than ``lease_timeout`` belongs to a
  worker presumed dead; ``os.rename(leases/X, tasks/X)`` makes the
  task claimable again.  A lease whose owner's *heartbeat* is still
  fresh is exempt: the worker is alive, the task merely slow.
  Reclaiming a lease whose worker was merely slow is still harmless:
  tasks are pure and cache stores are atomic, so a duplicated
  execution wastes time but can never corrupt a result.

Heartbeats (``workers/<worker>.json``) are small JSON files each
worker rewrites every few seconds -- worker id, host, pid, start and
last-beat timestamps, the entry key it is currently executing, and
done/failed/refused counters.  They are *advisory*: the queue state
machine above never depends on them for correctness, they only make
reclaim smarter and a live sweep observable (``runner queue status``).

Queue files are ordinary pickles, exactly like the cache entries next
to them: a local/cluster artifact, not an interchange format.  Do not
attach workers to queue directories from untrusted sources.
"""

from __future__ import annotations

import json
import os
import pickle
import re
import socket
import tempfile
import time
import traceback
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple, Union

from repro.orchestration.hashing import TaskKey, stable_hash
from repro.orchestration.task import Task

#: Bumped when the on-disk envelope format changes.
ENVELOPE_FORMAT = 1

#: How often workers refresh their heartbeat files (``runner worker
#: --heartbeat-interval`` overrides per worker).  Reclaim assumes this
#: default when deciding whether a heartbeat is fresh enough to prove
#: its worker alive, so keep per-worker overrides at or below it when
#: also shortening lease timeouts.
DEFAULT_HEARTBEAT_INTERVAL = 5.0

#: Subdirectory of a cache directory conventionally used as the queue.
DEFAULT_QUEUE_SUBDIR = "queue"


def reclaim_throttle(poll_interval: float) -> float:
    """How often a polling loop may run a reclaim scan: ~10 polls,
    floored at one second.  Shared by submitters and workers so their
    cadences cannot silently drift apart."""
    return max(poll_interval * 10, 1.0)


@dataclass(frozen=True)
class TaskEnvelope:
    """What travels through the queue: one task plus its cache address.

    ``cache_version`` pins the submitter's code fingerprint; a worker
    whose source tree differs refuses the task (its results would be
    published under a key computed by different code).
    """

    entry_key: str
    task: Task
    cache_version: str

    @property
    def queue_key(self) -> str:
        """The queue-file stem this envelope travels under."""
        return self.entry_key

    @property
    def members(self) -> Tuple["TaskEnvelope", ...]:
        """Uniform per-task view shared with :class:`ChunkEnvelope`."""
        return (self,)

    def to_payload(self) -> dict:
        return {
            "format": ENVELOPE_FORMAT,
            "entry_key": self.entry_key,
            "task": self.task,
            "cache_version": self.cache_version,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "TaskEnvelope":
        if (
            not isinstance(payload, dict)
            or payload.get("format") != ENVELOPE_FORMAT
            or not isinstance(payload.get("task"), Task)
        ):
            raise QueueFormatError(f"unrecognized task envelope: {payload!r}")
        return cls(
            entry_key=payload["entry_key"],
            task=payload["task"],
            cache_version=payload["cache_version"],
        )


def chunk_queue_key(entry_keys) -> str:
    """Deterministic queue-file stem for a chunk of entry keys.

    Derived from the member keys alone, so two submitters racing over
    the same sweep (and chunking it the same way) produce the *same*
    file name and dedupe through the existing enqueue existence check,
    exactly like single-task envelopes do.
    """
    return "chunk-" + stable_hash(tuple(entry_keys))[:32]


@dataclass(frozen=True)
class ChunkEnvelope:
    """K tasks travelling through the queue under one lease.

    Purely a *transport* batching: each member keeps its own cache
    entry key, its own failure record, and is published to the result
    cache individually as it completes.  A worker killed mid-chunk
    therefore loses only the unfinished remainder -- the reclaimed
    chunk's already-cached members are skipped on re-execution.
    """

    members: Tuple[TaskEnvelope, ...]
    cache_version: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(self.members))

    @property
    def queue_key(self) -> str:
        return chunk_queue_key(
            member.entry_key for member in self.members
        )

    def to_payload(self) -> dict:
        return {
            "format": ENVELOPE_FORMAT,
            "kind": "chunk",
            "members": [member.to_payload() for member in self.members],
            "cache_version": self.cache_version,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "ChunkEnvelope":
        if (
            not isinstance(payload, dict)
            or payload.get("format") != ENVELOPE_FORMAT
            or payload.get("kind") != "chunk"
            or not isinstance(payload.get("members"), list)
            or not payload["members"]
        ):
            raise QueueFormatError(f"unrecognized chunk envelope: {payload!r}")
        return cls(
            members=tuple(
                TaskEnvelope.from_payload(member)
                for member in payload["members"]
            ),
            cache_version=payload["cache_version"],
        )


#: Anything a queue file may contain.
QueueEnvelope = Union[TaskEnvelope, ChunkEnvelope]


def envelope_from_payload(payload: Any) -> QueueEnvelope:
    """Decode either envelope kind; raises :class:`QueueFormatError`."""
    if isinstance(payload, dict) and payload.get("kind") == "chunk":
        return ChunkEnvelope.from_payload(payload)
    return TaskEnvelope.from_payload(payload)


@dataclass(frozen=True)
class FailureRecord:
    """Why one task failed, published for the submitter to surface."""

    entry_key: str
    task_key: TaskKey
    error: str
    traceback: str
    worker: str


@dataclass(frozen=True)
class Lease:
    """A claimed task or chunk: the envelope plus its lease file."""

    envelope: QueueEnvelope
    path: Path


#: Bumped when the heartbeat JSON schema changes.
HEARTBEAT_FORMAT = 1


@dataclass
class WorkerHeartbeat:
    """One worker's liveness record, richer than a lease mtime.

    Stored as JSON (not pickle) under ``workers/`` so operators and
    ``runner queue status`` can read it with nothing but a text editor.
    A heartbeat is advisory: losing or corrupting one never breaks the
    queue, it only degrades reclaim back to mtime-age heuristics.
    """

    worker_id: str
    host: str
    pid: int
    started: float
    last_beat: float
    #: Entry key of the task currently executing, ``None`` between
    #: tasks.  A fresh heartbeat naming a lease protects it from
    #: stale-lease reclaim: the worker is alive, the task merely slow.
    current_lease: Optional[str] = None
    claimed: int = 0
    completed: int = 0
    failed: int = 0
    refused: int = 0
    #: This worker's own refresh cadence; reclaim derives its
    #: freshness window from it, so a deliberately slow-beating
    #: worker does not lose protection between beats.
    interval: float = DEFAULT_HEARTBEAT_INTERVAL

    def to_json_dict(self) -> dict:
        payload = asdict(self)
        payload["format"] = HEARTBEAT_FORMAT
        return payload

    @classmethod
    def from_json_dict(cls, data: Any) -> Optional["WorkerHeartbeat"]:
        """A heartbeat from its JSON form; ``None`` if unrecognizable."""
        if not isinstance(data, dict) or data.get("format") != HEARTBEAT_FORMAT:
            return None
        try:
            return cls(
                worker_id=str(data["worker_id"]),
                host=str(data["host"]),
                pid=int(data["pid"]),
                started=float(data["started"]),
                last_beat=float(data["last_beat"]),
                current_lease=data.get("current_lease"),
                claimed=int(data.get("claimed", 0)),
                completed=int(data.get("completed", 0)),
                failed=int(data.get("failed", 0)),
                refused=int(data.get("refused", 0)),
                interval=float(
                    data.get("interval", DEFAULT_HEARTBEAT_INTERVAL)
                ),
            )
        except (KeyError, TypeError, ValueError):
            return None


class QueueFormatError(RuntimeError):
    """A queue file did not contain what its name promised."""


def worker_identity() -> str:
    """``host:pid``, recorded in failure records for debugging."""
    return f"{socket.gethostname()}:{os.getpid()}"


class JobQueue:
    """One queue directory; safe for any number of concurrent users."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.tasks_dir = self.directory / "tasks"
        self.leases_dir = self.directory / "leases"
        self.failed_dir = self.directory / "failed"
        self.workers_dir = self.directory / "workers"

    def ensure(self) -> "JobQueue":
        for path in (
            self.tasks_dir, self.leases_dir, self.failed_dir, self.workers_dir
        ):
            path.mkdir(parents=True, exist_ok=True)
        return self

    # ------------------------------------------------------------------
    # Submitter side
    # ------------------------------------------------------------------

    def enqueue(self, envelope: QueueEnvelope) -> bool:
        """Publish one task/chunk; ``False`` if it is already in flight.

        "In flight" means a task or lease file for the same queue key
        already exists -- e.g. a second submitter sharing the sweep, or
        a leftover from an interrupted run that a worker can still
        finish.  Chunk queue keys are content-derived, so two
        submitters chunking the same sweep identically dedupe here.
        """
        self.ensure()
        task_path = self._task_path(envelope.queue_key)
        if task_path.exists() or self._lease_path(envelope.queue_key).exists():
            return False
        self._atomic_write_pickle(envelope.to_payload(), task_path)
        return True

    def in_flight(self, queue_key: str) -> bool:
        """Whether a task or lease file for ``queue_key`` exists."""
        return (
            self._task_path(queue_key).exists()
            or self._lease_path(queue_key).exists()
        )

    def failure_for(self, entry_key: str) -> Optional[FailureRecord]:
        path = self.failed_dir / f"{entry_key}.pkl"
        try:
            with open(path, "rb") as handle:
                record = pickle.load(handle)
        except (FileNotFoundError, OSError):
            return None
        except Exception:
            # A half-readable failure record still means the task
            # failed; synthesize a minimal one.
            return FailureRecord(
                entry_key=entry_key,
                task_key=(),
                error="unreadable failure record",
                traceback="",
                worker="unknown",
            )
        if isinstance(record, FailureRecord):
            return record
        return None

    def clear_failure(self, entry_key: str) -> None:
        self._unlink_quietly(self.failed_dir / f"{entry_key}.pkl")

    def discard_task(self, queue_key: str) -> None:
        """Drop an unclaimed task/chunk file (its results arrived
        elsewhere)."""
        self._unlink_quietly(self._task_path(queue_key))

    def reclaim_stale(
        self, lease_timeout: float, *, now: Optional[float] = None
    ) -> int:
        """Return leases older than ``lease_timeout`` seconds to ``tasks/``.

        A lease is exempt while a sufficiently fresh heartbeat names
        it as its ``current_lease``: that worker is demonstrably
        alive, the task is merely slow.  "Fresh" means younger than
        the lease timeout, floored at a few of *that worker's own*
        beat intervals (self-declared in the heartbeat) -- so neither
        an aggressive ``--lease-timeout 3`` nor a deliberately slow
        ``--heartbeat-interval 60`` worker gets its live task
        reclaimed between two beats.  Freshness is judged by the
        heartbeat *file's mtime* -- the same (shared-filesystem) clock
        domain the lease ages use -- so cross-host wall-clock skew can
        neither extend a dead worker's protection nor strip a live
        worker's.  A dead worker's protection lapses with its
        heartbeat and the lease is reclaimed exactly as it was before
        heartbeats existed.
        """
        reclaimed = 0
        now = time.time() if now is None else now
        # The heartbeat read (one file per attached worker) is only
        # paid once an over-age lease actually exists; the common
        # idle/healthy pass is just the lease listdir.
        protected: Optional[set] = None
        for lease_path in self._listdir(self.leases_dir):
            try:
                age = now - lease_path.stat().st_mtime
            except OSError:
                continue
            if age < lease_timeout:
                continue
            if protected is None:
                # Floored at the worker's OWN declared cadence (legacy
                # heartbeats default to DEFAULT_HEARTBEAT_INTERVAL),
                # with a 1s absolute floor -- so a fast-beating dead
                # worker fails over after a lease-timeout of silence,
                # not after a globally padded grace period.
                protected = {
                    beat.current_lease
                    for beat, mtime in self.heartbeat_entries()
                    if beat.current_lease is not None
                    and now - mtime < max(
                        lease_timeout, 3 * beat.interval, 1.0
                    )
                }
            if lease_path.stem in protected:
                continue
            try:
                os.rename(lease_path, self.tasks_dir / lease_path.name)
                reclaimed += 1
            except OSError:
                continue  # someone else beat us to it
        return reclaimed

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def claim(
        self,
        accept: Optional[Callable[[QueueEnvelope], bool]] = None,
        *,
        skip: Optional[Callable[[str], bool]] = None,
    ) -> Optional[Lease]:
        """Atomically take one queued task/chunk; ``None`` when none qualify.

        ``skip`` filters by **queue key** *before* the claim rename.
        Rejections ``accept`` will repeat forever (a version-mismatched
        envelope looks the same on every poll) should be remembered and
        fed back through ``skip``, so an incompatible task stops
        costing two renames per poll once it has been refused once.

        ``accept`` filters envelopes *after* the atomic rename: a task
        it rejects is put straight back and scanning continues, so an
        unacceptable task (e.g. one published by a submitter on a
        different code version) can never starve the claimable ones
        behind it.  Corrupt task files (truncated writes from a
        submitter killed at the wrong instant never happen -- enqueue
        is atomic -- but a stray file someone dropped in ``tasks/``
        might) are claimed, discarded, and skipped.
        """
        self.ensure()
        for task_path in sorted(self._listdir(self.tasks_dir)):
            if skip is not None and skip(task_path.stem):
                continue
            lease_path = self.leases_dir / task_path.name
            try:
                os.rename(task_path, lease_path)
            except OSError:
                continue  # lost the race; try the next file
            try:
                os.utime(lease_path)  # claim time, for stale-lease reclaim
            except FileNotFoundError:
                # Renames preserve mtime, so a task that sat queued
                # longer than the lease timeout *starts out* looking
                # stale -- a concurrent reclaimer can legitimately take
                # the lease back between our rename and this bump.  The
                # task is claimable (or already claimed) again
                # elsewhere; it is no longer ours.
                continue
            except OSError:
                # Any other failure (EACCES on an odd mount, EIO): the
                # lease is still ours, so keep it -- the bump is only
                # an optimization.  Worst case the stale-looking mtime
                # triggers an early reclaim, which duplicates work but
                # never corrupts a result.
                pass
            try:
                with open(lease_path, "rb") as handle:
                    envelope = envelope_from_payload(pickle.load(handle))
            except FileNotFoundError:
                continue  # reclaimed between the bump and the read
            except Exception:
                self._unlink_quietly(lease_path)
                continue
            if accept is not None and not accept(envelope):
                try:
                    os.rename(lease_path, task_path)
                except OSError:
                    pass
                continue
            return Lease(envelope=envelope, path=lease_path)
        return None

    def complete(self, lease: Lease) -> None:
        """The result is in the cache; retire the lease."""
        self._unlink_quietly(lease.path)

    def record_failure(
        self, entry_key: str, task_key: TaskKey, error: BaseException
    ) -> None:
        """Publish a per-task failure record (no lease bookkeeping).

        Chunk executors use this directly: a member that raises gets
        its own record -- addressable by *entry key*, exactly as if it
        had travelled alone -- while the chunk lease stays live until
        the remaining members have run.
        """
        record = FailureRecord(
            entry_key=entry_key,
            task_key=task_key,
            error=f"{type(error).__name__}: {error}",
            traceback="".join(
                traceback.format_exception(
                    type(error), error, error.__traceback__
                )
            ),
            worker=worker_identity(),
        )
        self.failed_dir.mkdir(parents=True, exist_ok=True)
        self._atomic_write_pickle(
            record, self.failed_dir / f"{entry_key}.pkl"
        )

    def fail(self, lease: Lease, error: BaseException) -> None:
        """Record failure(s) for the lease's task(s) and retire it."""
        for member in lease.envelope.members:
            self.record_failure(member.entry_key, member.task.key, error)
        self._unlink_quietly(lease.path)

    def release(self, lease: Lease) -> None:
        """Put a claimed task back unexecuted (e.g. version mismatch)."""
        try:
            os.rename(lease.path, self.tasks_dir / lease.path.name)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Heartbeats
    # ------------------------------------------------------------------

    def write_heartbeat(self, beat: WorkerHeartbeat) -> None:
        """Atomically publish one worker's heartbeat (JSON)."""
        self.workers_dir.mkdir(parents=True, exist_ok=True)
        destination = self.heartbeat_path(beat.worker_id)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.workers_dir, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(beat.to_json_dict(), handle, sort_keys=True)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def read_heartbeats(self) -> List[WorkerHeartbeat]:
        """Every readable heartbeat, sorted by worker id.

        Corrupt or foreign files are skipped: heartbeats are advisory,
        so a torn write only costs observability, never correctness.
        """
        return [beat for beat, _ in self.heartbeat_entries()]

    def heartbeat_entries(self) -> List[tuple]:
        """``(heartbeat, file_mtime)`` pairs, sorted by worker id.

        The file mtime is the authoritative "last beat" for anything
        that *decides* or *classifies* (reclaim protection, live/stale
        status): it comes from the shared filesystem's clock -- the
        same domain lease ages use -- so cross-host wall-clock skew
        cannot make a dead worker look alive or a live one dead.  The
        embedded timestamps remain self-reported context.
        """
        entries = []
        for path in self._listdir(self.workers_dir):
            try:
                mtime = path.stat().st_mtime
                beat = WorkerHeartbeat.from_json_dict(
                    json.loads(path.read_text(encoding="utf-8"))
                )
            except (OSError, ValueError):
                continue
            if beat is not None:
                entries.append((beat, mtime))
        return sorted(entries, key=lambda entry: entry[0].worker_id)

    def remove_heartbeat(self, worker_id: str) -> None:
        """Retire a worker's heartbeat on clean exit."""
        self._unlink_quietly(self.heartbeat_path(worker_id))

    def heartbeat_path(self, worker_id: str) -> Path:
        # Worker ids are host:pid; keep filenames filesystem-neutral.
        return self.workers_dir / (
            re.sub(r"[^A-Za-z0-9._-]", "-", worker_id) + ".json"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def pending_count(self) -> int:
        return len(self._listdir(self.tasks_dir))

    def leased_count(self) -> int:
        return len(self._listdir(self.leases_dir))

    def lease_entries(self) -> List[tuple]:
        """``(queue_key, claim_mtime)`` for every live lease file."""
        entries = []
        for path in sorted(self._listdir(self.leases_dir)):
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue  # completed or reclaimed mid-scan
            entries.append((path.stem, mtime))
        return entries

    def failed_entry_keys(self) -> set:
        """Entry keys with a failure record, from ONE directory scan.

        Submitters poll for failures once per collection pass; opening
        ``failed/<key>.pkl`` speculatively for every outstanding task
        is an O(N) pickle-open storm per pass, this is one ``listdir``.
        """
        return {path.stem for path in self._listdir(self.failed_dir)}

    def failure_records(self) -> List[FailureRecord]:
        """Every readable failure record, sorted by entry key."""
        records = []
        for entry_key in sorted(self.failed_entry_keys()):
            record = self.failure_for(entry_key)
            if record is not None:
                records.append(record)
        return records

    # ------------------------------------------------------------------

    def _task_path(self, queue_key: str) -> Path:
        return self.tasks_dir / f"{queue_key}.task"

    def _lease_path(self, queue_key: str) -> Path:
        return self.leases_dir / f"{queue_key}.task"

    def _listdir(self, directory: Path) -> List[Path]:
        try:
            return [
                directory / name
                for name in os.listdir(directory)
                if not name.startswith(".")
            ]
        except FileNotFoundError:
            return []

    def _atomic_write_pickle(self, payload: Any, destination: Path) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=destination.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, destination)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def default_queue_dir(cache_directory: Union[str, Path]) -> Path:
    """The conventional queue location inside a shared cache dir."""
    return Path(cache_directory) / DEFAULT_QUEUE_SUBDIR
