"""Stable hashing for cache keys and derived task seeds.

Cache keys must survive process restarts, so they cannot rely on
Python's randomized ``hash()``.  :func:`stable_hash` canonicalizes a
value (dataclasses, dicts, sequences, enums, primitives) into a
deterministic string and SHA-256 hashes it.

:func:`code_version` fingerprints the source of the installed
``repro`` package; the on-disk cache folds it into every key so that
editing any source file invalidates previously cached results rather
than serving values computed by older code.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from pathlib import Path
from typing import Optional, Tuple, Union

TaskKey = Tuple[object, ...]

#: Dataclass field metadata flag: a field marked
#: ``field(metadata={OMIT_IF_NONE: True})`` is left out of the
#: canonical form while its value is ``None``.  This lets a dataclass
#: grow an *optional* dimension (e.g. ``ExperimentScale.device``)
#: without renaming every cache entry keyed under the old shape: the
#: default-``None`` rendering is byte-identical to the pre-field one,
#: and only runs that actually set the field get fresh keys.
OMIT_IF_NONE = "canonicalize_omit_if_none"


def canonicalize(value: object) -> str:
    """A deterministic, repr-like rendering of ``value``.

    Supports the types experiment parameters are made of: dataclasses
    (rendered as sorted field maps), mappings, sequences, sets, enums,
    and primitives.  Floats use ``repr``, which round-trips exactly.
    Fields flagged with :data:`OMIT_IF_NONE` are skipped while unset.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: getattr(value, f.name)
            for f in dataclasses.fields(value)
            if not (
                f.metadata.get(OMIT_IF_NONE)
                and getattr(value, f.name) is None
            )
        }
        body = ",".join(
            f"{name}={canonicalize(fields[name])}" for name in sorted(fields)
        )
        return f"{type(value).__qualname__}({body})"
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, dict):
        body = ",".join(
            f"{canonicalize(k)}:{canonicalize(v)}"
            for k, v in sorted(value.items(), key=lambda kv: canonicalize(kv[0]))
        )
        return "{" + body + "}"
    if isinstance(value, (list, tuple)):
        return "(" + ",".join(canonicalize(v) for v in value) + ")"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonicalize(v) for v in value)) + "}"
    if isinstance(value, (str, bytes, int, float, bool, complex)) or value is None:
        return f"{type(value).__name__}:{value!r}"
    raise TypeError(
        f"cannot canonicalize {type(value).__name__!r} for a cache key; "
        "task keys and fingerprints must be built from dataclasses, "
        "mappings, sequences, enums, and primitives"
    )


def stable_hash(value: object) -> str:
    """Hex SHA-256 of the canonical form of ``value``."""
    return hashlib.sha256(canonicalize(value).encode("utf-8")).hexdigest()


def derive_task_seed(base_seed: int, key: TaskKey) -> int:
    """A deterministic per-task seed from ``(base_seed, task key)``.

    Distinct keys (or base seeds) yield independent 63-bit seeds; the
    same pair always yields the same seed, regardless of submission
    order or worker placement.
    """
    digest = hashlib.sha256(
        canonicalize((int(base_seed), tuple(key))).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Fingerprint of the ``repro`` package source (cached per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION
