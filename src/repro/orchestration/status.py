"""Queue observability: one-shot snapshots of a live sweep.

``runner queue status <cache-dir>`` calls :func:`queue_status` and
renders the snapshot either as one JSON document (``--json``, for
scripts and the chaos smoke) or as the human-readable table of
:func:`render_status`.  Everything here is read-only and advisory: a
snapshot races the sweep it observes by design, and nothing the queue
state machine does depends on it.

The snapshot answers the operator questions a black-box sweep raises:

* how many tasks are **pending / leased / failed**, and how many
  results are already in the cache;
* which workers are attached, which are **live** (fresh heartbeat)
  and which **stale** (beats stopped -- crashed, SIGKILLed, or
  unplugged), and what each one is doing right now;
* what exactly failed, where, and with which traceback;
* rough **throughput** across all workers that ever beat.

This module also hosts the **profiling aggregation** behind
``runner profile <cache-dir>`` and ``runner queue status --profile``:
every profiled execution stamps ``{setup_s, run_s, store_s,
result_bytes, chunk_size}`` into its cache entry's provenance (see
``repro.orchestration.cache``), and :func:`profile_cache` folds those
stamps into per-experiment timing distributions (p50/p95 task times,
overhead share) -- the raw series a perf-trend dashboard charts.
"""

from __future__ import annotations

import pickle
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.orchestration.cache import (
    profile_from_provenance,
    scan_cache_entry_keys,
    shard_name,
)
from repro.orchestration.jobqueue import JobQueue, default_queue_dir

#: A worker whose heartbeat is older than this many seconds is shown
#: as stale (``runner queue status --stale-after`` overrides).
DEFAULT_STALE_AFTER = 30.0

#: Bumped when the snapshot JSON shape changes.
STATUS_FORMAT = 1

#: Bumped when the profile aggregation JSON shape changes.
PROFILE_FORMAT = 1


def queue_status(
    cache_dir: Union[str, Path],
    queue_dir: Union[str, Path, None] = None,
    *,
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
    profile: bool = False,
) -> Dict[str, Any]:
    """A JSON-ready snapshot of one queue directory and its cache.

    ``now`` is injectable so tests (and golden snapshots) can pin
    every derived age; production callers leave it to the wall clock.
    ``profile=True`` additionally folds the cache's per-task profile
    stamps into the snapshot (one full cache read -- opt-in because a
    status poll should stay cheap on large caches).
    """
    cache_dir = Path(cache_dir)
    queue = JobQueue(
        Path(queue_dir) if queue_dir is not None else default_queue_dir(cache_dir)
    )
    now = time.time() if now is None else now

    # Ages come from heartbeat *file mtimes*: the shared filesystem's
    # clock, the same domain lease ages use (and the same rule
    # reclaim_stale applies), so a worker host with a skewed wall
    # clock is not misclassified.  Embedded timestamps stay
    # self-reported context (uptime).
    heartbeats = queue.heartbeat_entries()
    workers = []
    for beat, mtime in heartbeats:
        age = max(0.0, now - mtime)
        # Uptime = the worker's own started->last_beat span (both from
        # its clock, so skew cancels) plus -- for live workers only --
        # the file age since that beat.  Never observer-now minus
        # worker-started (a fast worker clock would clamp it to a
        # nonsense 0), and never still-ticking after death: a stale
        # worker's uptime freezes at its last beat.
        uptime = max(0.0, beat.last_beat - beat.started) + (
            age if age < stale_after else 0.0
        )
        workers.append({
            "worker_id": beat.worker_id,
            "host": beat.host,
            "pid": beat.pid,
            "status": "live" if age < stale_after else "stale",
            "beat_age_seconds": round(age, 3),
            "uptime_seconds": round(uptime, 3),
            "current_lease": beat.current_lease,
            "claimed": beat.claimed,
            "completed": beat.completed,
            "failed": beat.failed,
            "refused": beat.refused,
        })

    # After a reclaim, a dead worker's frozen heartbeat and the live
    # re-claimer can both name the same lease; process stale beats
    # first so the live owner wins the attribution.
    owners: Dict[str, str] = {}
    for beat, mtime in sorted(
        heartbeats, key=lambda entry: now - entry[1] < stale_after
    ):
        if beat.current_lease is not None:
            owners[beat.current_lease] = beat.worker_id
    leases = [
        {
            "entry_key": entry_key,
            "age_seconds": round(max(0.0, now - mtime), 3),
            "worker": owners.get(entry_key),
        }
        for entry_key, mtime in queue.lease_entries()
    ]

    failures = [
        {
            "entry_key": record.entry_key,
            "task_key": [str(part) for part in record.task_key],
            "worker": record.worker,
            "error": record.error,
            "traceback": record.traceback,
        }
        for record in queue.failure_records()
    ]

    # Throughput only counts *live* workers: stale heartbeats are
    # never garbage-collected (they are the death notices), so folding
    # yesterday's SIGKILLed worker into today's rate would make the
    # number meaningless on any long-lived queue directory.
    live_workers = [
        worker for worker in workers if worker["status"] == "live"
    ]
    completed = sum(worker["completed"] for worker in live_workers)
    window = max(
        (worker["uptime_seconds"] for worker in live_workers), default=0.0
    )
    # The fleet rate is the SUM of per-worker rates: dividing the
    # pooled count by the single longest uptime would understate a
    # fleet of fresh workers riding alongside one old-timer by an
    # order of magnitude.
    rates = [
        worker["completed"] / worker["uptime_seconds"]
        for worker in live_workers
        if worker["uptime_seconds"] > 0
    ]
    throughput = {
        "completed": completed,
        "window_seconds": round(window, 3),
        "tasks_per_second": round(sum(rates), 4) if rates else None,
    }

    status = {
        "format": STATUS_FORMAT,
        "generated_at": now,
        "cache_dir": str(cache_dir),
        "queue_dir": str(queue.directory),
        "stale_after_seconds": stale_after,
        "tasks": {
            "pending": queue.pending_count(),
            "leased": len(leases),
            "failed": len(failures),
            "results_cached": len(scan_cache_entry_keys(cache_dir)),
        },
        "workers": workers,
        "leases": leases,
        "failures": failures,
        "throughput": throughput,
    }
    if profile:
        status["profile"] = profile_cache(cache_dir)
    return status


def render_status(status: Dict[str, Any]) -> str:
    """The human-readable form of one :func:`queue_status` snapshot."""
    tasks = status["tasks"]
    lines = [
        f"queue {status['queue_dir']}",
        f"cache {status['cache_dir']}",
        "",
        f"tasks: {tasks['pending']} pending, {tasks['leased']} leased, "
        f"{tasks['failed']} failed, {tasks['results_cached']} results in cache",
    ]

    workers = status["workers"]
    live = sum(1 for worker in workers if worker["status"] == "live")
    lines.append("")
    if not workers:
        lines.append(
            "workers: none attached (start some with `runner worker`)"
        )
    else:
        lines.append(
            f"workers: {live} live, {len(workers) - live} stale "
            f"(heartbeat older than {_seconds(status['stale_after_seconds'])})"
        )
        rows = [(
            "worker", "status", "beat", "up", "lease",
            "done", "failed", "refused",
        )]
        for worker in workers:
            rows.append((
                worker["worker_id"],
                worker["status"],
                _seconds(worker["beat_age_seconds"]),
                _seconds(worker["uptime_seconds"]),
                _short(worker["current_lease"]),
                str(worker["completed"]),
                str(worker["failed"]),
                str(worker["refused"]),
            ))
        lines.extend(_table(rows, indent="  "))

    leases = status["leases"]
    lines.append("")
    if not leases:
        lines.append("leases: none")
    else:
        lines.append(f"leases: {len(leases)}")
        rows = [("entry", "age", "worker")]
        for lease in leases:
            rows.append((
                _short(lease["entry_key"]),
                _seconds(lease["age_seconds"]),
                lease["worker"] or "?",
            ))
        lines.extend(_table(rows, indent="  "))

    failures = status["failures"]
    lines.append("")
    if not failures:
        lines.append("failures: none")
    else:
        lines.append(f"failures: {len(failures)} (tracebacks in --json)")
        for failure in failures:
            label = "/".join(failure["task_key"]) or _short(failure["entry_key"])
            lines.append(
                f"  {label}: {failure['error']} "
                f"(worker {failure['worker']})"
            )

    throughput = status["throughput"]
    lines.append("")
    if throughput["tasks_per_second"] is None:
        lines.append(
            f"throughput: {throughput['completed']} completed by live "
            "workers"
        )
    else:
        lines.append(
            f"throughput: {throughput['completed']} completed by live "
            f"workers over {_seconds(throughput['window_seconds'])} "
            f"({throughput['tasks_per_second']:g} tasks/s)"
        )
    if status.get("profile") is not None:
        lines.append("")
        lines.append(render_profile(status["profile"]))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Profiling aggregation
# ----------------------------------------------------------------------


def summarize_profiles(profiles: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-task profile stamps into one distribution summary.

    ``overhead_share`` is the fraction of total busy time spent
    *around* the task function (setup construction + result
    serialization) rather than inside it -- the number chunking and
    setup memoization exist to drive down.
    """
    setup = [float(p.get("setup_s", 0.0)) for p in profiles]
    run = [float(p.get("run_s", 0.0)) for p in profiles]
    store = [float(p.get("store_s", 0.0)) for p in profiles]
    sizes = [int(p.get("result_bytes", 0)) for p in profiles]
    chunks = [int(p.get("chunk_size", 1)) for p in profiles]
    overhead = sum(setup) + sum(store)
    busy = overhead + sum(run)
    return {
        "tasks": len(profiles),
        "setup_s": _distribution(setup),
        "run_s": _distribution(run),
        "store_s": _distribution(store),
        "result_bytes": {
            "total": sum(sizes),
            "mean": sum(sizes) / len(sizes) if sizes else 0.0,
        },
        "chunk_size": {
            "mean": sum(chunks) / len(chunks) if chunks else 0.0,
            "max": max(chunks, default=0),
        },
        "overhead_share": round(overhead / busy, 6) if busy > 0 else 0.0,
    }


def profile_cache(cache_dir: Union[str, Path]) -> Dict[str, Any]:
    """Aggregate every profile stamp in a cache directory.

    Entries stored by unprofiled code paths (anything pre-profiling)
    simply lack the stamp and are counted in ``entries_total`` only.
    Grouping is by the first task-key element -- by convention the
    experiment name (``fig12``, ``fig7`` ...).  Reads are raw and
    version-agnostic: the aggregation is observational, so entries
    written by other code versions still count.
    """
    cache_dir = Path(cache_dir)
    per_experiment: Dict[str, List[Dict[str, Any]]] = {}
    everything: List[Dict[str, Any]] = []
    entries_total = 0
    for entry_key in sorted(scan_cache_entry_keys(cache_dir)):
        entry = _read_entry(cache_dir, entry_key)
        if not isinstance(entry, dict):
            continue
        entries_total += 1
        stamp = profile_from_provenance(entry.get("provenance"))
        if stamp is None:
            continue
        task_key = entry.get("task_key") or ()
        name = str(task_key[0]) if task_key else "(unknown)"
        per_experiment.setdefault(name, []).append(stamp)
        everything.append(stamp)
    return {
        "format": PROFILE_FORMAT,
        "cache_dir": str(cache_dir),
        "entries_total": entries_total,
        "entries_profiled": len(everything),
        "experiments": {
            name: summarize_profiles(stamps)
            for name, stamps in sorted(per_experiment.items())
        },
        "overall": summarize_profiles(everything),
    }


def render_profile(profile: Dict[str, Any]) -> str:
    """The human-readable form of one :func:`profile_cache` summary."""
    lines = [
        f"profile of cache {profile['cache_dir']}",
        f"entries: {profile['entries_profiled']} profiled / "
        f"{profile['entries_total']} total",
    ]
    if not profile["entries_profiled"]:
        lines.append(
            "no profiled entries yet (stored by a pre-profiling code "
            "path, or the cache is empty)"
        )
        return "\n".join(lines)
    lines.append("")
    rows = [(
        "experiment", "tasks", "run p50", "run p95",
        "setup mean", "store mean", "overhead", "chunk",
    )]
    sections = list(profile["experiments"].items())
    if len(sections) != 1:
        sections.append(("(overall)", profile["overall"]))
    for name, summary in sections:
        rows.append((
            name,
            str(summary["tasks"]),
            _seconds(summary["run_s"]["p50"]),
            _seconds(summary["run_s"]["p95"]),
            _seconds(summary["setup_s"]["mean"]),
            _seconds(summary["store_s"]["mean"]),
            f"{100.0 * summary['overhead_share']:.1f}%",
            f"{summary['chunk_size']['mean']:.1f}",
        ))
    lines.extend(_table(rows, indent="  "))
    return "\n".join(lines)


def _read_entry(cache_dir: Path, entry_key: str) -> Any:
    """One raw cache entry, sharded layout preferred; ``None`` if
    unreadable (racing writers, corrupt files -- skip, never raise)."""
    for path in (
        cache_dir / shard_name(entry_key) / f"{entry_key}.pkl",
        cache_dir / f"{entry_key}.pkl",
    ):
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            continue
        except Exception:
            return None
    return None


def _distribution(values: List[float]) -> Dict[str, float]:
    if not values:
        return {"total": 0.0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
    ordered = sorted(values)
    return {
        "total": sum(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": _percentile(ordered, 0.50),
        "p95": _percentile(ordered, 0.95),
        "max": ordered[-1],
    }


def _percentile(ordered: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted sample."""
    rank = max(1, -(-int(q * 100) * len(ordered) // 100))
    return ordered[min(rank, len(ordered)) - 1]


# ----------------------------------------------------------------------


def _short(entry_key: Optional[str], width: int = 12) -> str:
    if not entry_key:
        return "-"
    return entry_key[:width] if len(entry_key) > width else entry_key


def _seconds(value: float) -> str:
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def _table(rows: List[tuple], indent: str = "") -> List[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    return [
        indent + "  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip()
        for row in rows
    ]
