"""Queue observability: one-shot snapshots of a live sweep.

``runner queue status <cache-dir>`` calls :func:`queue_status` and
renders the snapshot either as one JSON document (``--json``, for
scripts and the chaos smoke) or as the human-readable table of
:func:`render_status`.  Everything here is read-only and advisory: a
snapshot races the sweep it observes by design, and nothing the queue
state machine does depends on it.

The snapshot answers the operator questions a black-box sweep raises:

* how many tasks are **pending / leased / failed**, and how many
  results are already in the cache;
* which workers are attached, which are **live** (fresh heartbeat)
  and which **stale** (beats stopped -- crashed, SIGKILLed, or
  unplugged), and what each one is doing right now;
* what exactly failed, where, and with which traceback;
* rough **throughput** across all workers that ever beat.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.orchestration.cache import scan_cache_entry_keys
from repro.orchestration.jobqueue import JobQueue, default_queue_dir

#: A worker whose heartbeat is older than this many seconds is shown
#: as stale (``runner queue status --stale-after`` overrides).
DEFAULT_STALE_AFTER = 30.0

#: Bumped when the snapshot JSON shape changes.
STATUS_FORMAT = 1


def queue_status(
    cache_dir: Union[str, Path],
    queue_dir: Union[str, Path, None] = None,
    *,
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> Dict[str, Any]:
    """A JSON-ready snapshot of one queue directory and its cache.

    ``now`` is injectable so tests (and golden snapshots) can pin
    every derived age; production callers leave it to the wall clock.
    """
    cache_dir = Path(cache_dir)
    queue = JobQueue(
        Path(queue_dir) if queue_dir is not None else default_queue_dir(cache_dir)
    )
    now = time.time() if now is None else now

    # Ages come from heartbeat *file mtimes*: the shared filesystem's
    # clock, the same domain lease ages use (and the same rule
    # reclaim_stale applies), so a worker host with a skewed wall
    # clock is not misclassified.  Embedded timestamps stay
    # self-reported context (uptime).
    heartbeats = queue.heartbeat_entries()
    workers = []
    for beat, mtime in heartbeats:
        age = max(0.0, now - mtime)
        # Uptime = the worker's own started->last_beat span (both from
        # its clock, so skew cancels) plus -- for live workers only --
        # the file age since that beat.  Never observer-now minus
        # worker-started (a fast worker clock would clamp it to a
        # nonsense 0), and never still-ticking after death: a stale
        # worker's uptime freezes at its last beat.
        uptime = max(0.0, beat.last_beat - beat.started) + (
            age if age < stale_after else 0.0
        )
        workers.append({
            "worker_id": beat.worker_id,
            "host": beat.host,
            "pid": beat.pid,
            "status": "live" if age < stale_after else "stale",
            "beat_age_seconds": round(age, 3),
            "uptime_seconds": round(uptime, 3),
            "current_lease": beat.current_lease,
            "claimed": beat.claimed,
            "completed": beat.completed,
            "failed": beat.failed,
            "refused": beat.refused,
        })

    # After a reclaim, a dead worker's frozen heartbeat and the live
    # re-claimer can both name the same lease; process stale beats
    # first so the live owner wins the attribution.
    owners: Dict[str, str] = {}
    for beat, mtime in sorted(
        heartbeats, key=lambda entry: now - entry[1] < stale_after
    ):
        if beat.current_lease is not None:
            owners[beat.current_lease] = beat.worker_id
    leases = [
        {
            "entry_key": entry_key,
            "age_seconds": round(max(0.0, now - mtime), 3),
            "worker": owners.get(entry_key),
        }
        for entry_key, mtime in queue.lease_entries()
    ]

    failures = [
        {
            "entry_key": record.entry_key,
            "task_key": [str(part) for part in record.task_key],
            "worker": record.worker,
            "error": record.error,
            "traceback": record.traceback,
        }
        for record in queue.failure_records()
    ]

    # Throughput only counts *live* workers: stale heartbeats are
    # never garbage-collected (they are the death notices), so folding
    # yesterday's SIGKILLed worker into today's rate would make the
    # number meaningless on any long-lived queue directory.
    live_workers = [
        worker for worker in workers if worker["status"] == "live"
    ]
    completed = sum(worker["completed"] for worker in live_workers)
    window = max(
        (worker["uptime_seconds"] for worker in live_workers), default=0.0
    )
    # The fleet rate is the SUM of per-worker rates: dividing the
    # pooled count by the single longest uptime would understate a
    # fleet of fresh workers riding alongside one old-timer by an
    # order of magnitude.
    rates = [
        worker["completed"] / worker["uptime_seconds"]
        for worker in live_workers
        if worker["uptime_seconds"] > 0
    ]
    throughput = {
        "completed": completed,
        "window_seconds": round(window, 3),
        "tasks_per_second": round(sum(rates), 4) if rates else None,
    }

    return {
        "format": STATUS_FORMAT,
        "generated_at": now,
        "cache_dir": str(cache_dir),
        "queue_dir": str(queue.directory),
        "stale_after_seconds": stale_after,
        "tasks": {
            "pending": queue.pending_count(),
            "leased": len(leases),
            "failed": len(failures),
            "results_cached": len(scan_cache_entry_keys(cache_dir)),
        },
        "workers": workers,
        "leases": leases,
        "failures": failures,
        "throughput": throughput,
    }


def render_status(status: Dict[str, Any]) -> str:
    """The human-readable form of one :func:`queue_status` snapshot."""
    tasks = status["tasks"]
    lines = [
        f"queue {status['queue_dir']}",
        f"cache {status['cache_dir']}",
        "",
        f"tasks: {tasks['pending']} pending, {tasks['leased']} leased, "
        f"{tasks['failed']} failed, {tasks['results_cached']} results in cache",
    ]

    workers = status["workers"]
    live = sum(1 for worker in workers if worker["status"] == "live")
    lines.append("")
    if not workers:
        lines.append(
            "workers: none attached (start some with `runner worker`)"
        )
    else:
        lines.append(
            f"workers: {live} live, {len(workers) - live} stale "
            f"(heartbeat older than {_seconds(status['stale_after_seconds'])})"
        )
        rows = [(
            "worker", "status", "beat", "up", "lease",
            "done", "failed", "refused",
        )]
        for worker in workers:
            rows.append((
                worker["worker_id"],
                worker["status"],
                _seconds(worker["beat_age_seconds"]),
                _seconds(worker["uptime_seconds"]),
                _short(worker["current_lease"]),
                str(worker["completed"]),
                str(worker["failed"]),
                str(worker["refused"]),
            ))
        lines.extend(_table(rows, indent="  "))

    leases = status["leases"]
    lines.append("")
    if not leases:
        lines.append("leases: none")
    else:
        lines.append(f"leases: {len(leases)}")
        rows = [("entry", "age", "worker")]
        for lease in leases:
            rows.append((
                _short(lease["entry_key"]),
                _seconds(lease["age_seconds"]),
                lease["worker"] or "?",
            ))
        lines.extend(_table(rows, indent="  "))

    failures = status["failures"]
    lines.append("")
    if not failures:
        lines.append("failures: none")
    else:
        lines.append(f"failures: {len(failures)} (tracebacks in --json)")
        for failure in failures:
            label = "/".join(failure["task_key"]) or _short(failure["entry_key"])
            lines.append(
                f"  {label}: {failure['error']} "
                f"(worker {failure['worker']})"
            )

    throughput = status["throughput"]
    lines.append("")
    if throughput["tasks_per_second"] is None:
        lines.append(
            f"throughput: {throughput['completed']} completed by live "
            "workers"
        )
    else:
        lines.append(
            f"throughput: {throughput['completed']} completed by live "
            f"workers over {_seconds(throughput['window_seconds'])} "
            f"({throughput['tasks_per_second']:g} tasks/s)"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------


def _short(entry_key: Optional[str], width: int = 12) -> str:
    if not entry_key:
        return "-"
    return entry_key[:width] if len(entry_key) > width else entry_key


def _seconds(value: float) -> str:
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def _table(rows: List[tuple], indent: str = "") -> List[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    return [
        indent + "  ".join(
            cell.ljust(width) for cell, width in zip(row, widths)
        ).rstrip()
        for row in rows
    ]
