"""The unit of orchestrated work.

A :class:`Task` is one independent, picklable computation: a single
simulation, one bank characterization, one baseline run.  Experiments
decompose their sweeps into tasks, hand them to an
:class:`~repro.orchestration.executor.OrchestrationContext`, and
reassemble figure/table results from the returned mapping.

Requirements on a task:

* ``fn`` must be a **module-level** function (workers unpickle it by
  qualified name) taking the task itself and returning a picklable
  result.
* ``params`` must be picklable and, together with ``key``, fully
  determine the result -- task functions must not read mutable global
  state, so that serial, parallel, and cached runs are bit-identical.
* ``key`` must be unique within one submission and stable across
  processes (build it from strings, ints, and tuples).

Each task carries a ``seed`` derived from ``(base_seed, key)`` via
:func:`~repro.orchestration.hashing.derive_task_seed`.  Tasks that
need *independent* randomness (e.g. iteration jitter in a new
workload) should seed their generators from it.  Paired-comparison
tasks -- the Fig 12 simulations, where every configuration must replay
the *same* traces and vulnerability profiles against the same
baseline -- deliberately keep seeding from the experiment-level
``ExperimentScale.seed`` instead, and ``seed`` is advisory.

Setup contexts
--------------

Some tasks share expensive, *deterministic* setup: the Svärd threshold
providers behind a Fig 12 grid, a scaled vulnerability profile.  A task
may declare that setup explicitly via ``setup`` (a module-level
function of the task returning the context) and ``setup_key`` (a
hashable value that fully determines the context).  The execution
layers then build the context **once per key per worker process** and
reuse it across a chunk via :class:`SetupCache` -- with the contract
that the context is immutable during ``fn`` (or at least reusable:
same inputs, same outputs, bit-identical results with or without the
cache).  A task with ``setup=None`` behaves exactly as before.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.orchestration.hashing import TaskKey, derive_task_seed


@dataclass(frozen=True)
class Task:
    """One independent unit of work."""

    key: TaskKey
    fn: Callable[..., Any]
    params: Any = None
    seed: int = 0
    #: Optional module-level function building the shared setup
    #: context for this task.  When set, ``fn`` is called as
    #: ``fn(task, context)`` instead of ``fn(task)``.
    setup: Optional[Callable[["Task"], Any]] = None
    #: Hashable key identifying the setup context; tasks with equal
    #: ``(setup, setup_key)`` may share one built context.  Must fully
    #: determine what ``setup`` returns.
    setup_key: Any = None

    def execute(self) -> Any:
        if self.setup is None:
            return self.fn(self)
        return self.fn(self, self.setup(self))


class SetupCache:
    """A small keyed LRU of built setup contexts, one per process.

    Keys are ``(task.setup, task.setup_key)`` -- the function identity
    disambiguates two experiments that happen to pick colliding keys.
    Capacity is deliberately tiny: a chunk drawn from one
    :class:`TaskGroup` shares a handful of contexts at most, and
    evicting one merely costs a rebuild, never correctness.
    """

    def __init__(self, capacity: int = 8) -> None:
        self.capacity = max(1, int(capacity))
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()

    def context_for(self, task: Task) -> Any:
        """The (memoized) setup context for ``task``; builds on miss."""
        key = (task.setup, task.setup_key)
        try:
            context = self._entries[key]
        except (KeyError, TypeError):
            # TypeError: unhashable setup_key -- fall through to an
            # unmemoized build rather than refusing the task.
            self.misses += 1
            context = task.setup(task)
            try:
                self._entries[key] = context
            except TypeError:
                return context
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return context
        self.hits += 1
        self._entries.move_to_end(key)
        return context

    def clear(self) -> None:
        self._entries.clear()


@dataclass(frozen=True)
class TaskGroup:
    """Tasks sharing one cache fingerprint, submitted together.

    Experiments decompose into one or more groups; tasks within a
    group fan out in a single submission, and the group's
    ``fingerprint`` scopes the on-disk cache (by convention it captures
    every scale/config input outside the task keys).  Grouping by
    fingerprint keeps cache entries shareable between experiments that
    submit the same underlying work -- e.g. the per-(module, bank)
    characterizations -- while still invalidating on any scale change.
    """

    tasks: Tuple[Task, ...]
    fingerprint: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))


def make_task(
    key: TaskKey, fn: Callable[..., Any], params: Any = None, *,
    base_seed: int = 0,
    setup: Optional[Callable[[Task], Any]] = None,
    setup_key: Any = None,
) -> Task:
    """Build a task with its seed derived from ``(base_seed, key)``."""
    key = tuple(key)
    return Task(key=key, fn=fn, params=params,
                seed=derive_task_seed(base_seed, key),
                setup=setup, setup_key=setup_key)


def run_task(task: Task) -> Tuple[TaskKey, Any]:
    """Worker entry point: execute one task, return ``(key, result)``."""
    return task.key, task.execute()


def execute_task_profiled(
    task: Task, setup_cache: Optional[SetupCache] = None
) -> Tuple[Any, Dict[str, float]]:
    """Execute one task, timing setup and run phases separately.

    Returns ``(result, profile)`` where ``profile`` holds ``setup_s``
    (wall time spent building the setup context -- near zero on a
    :class:`SetupCache` hit, which is exactly what the profiling layer
    should show) and ``run_s`` (wall time inside ``fn``).  ``store_s``
    / ``result_bytes`` / ``chunk_size`` are stamped later, by whoever
    stores the result and knows the transport shape.
    """
    if task.setup is None:
        started = time.perf_counter()
        result = task.fn(task)
        return result, {
            "setup_s": 0.0,
            "run_s": time.perf_counter() - started,
        }
    setup_started = time.perf_counter()
    if setup_cache is None:
        context = task.setup(task)
    else:
        context = setup_cache.context_for(task)
    run_started = time.perf_counter()
    result = task.fn(task, context)
    finished = time.perf_counter()
    return result, {
        "setup_s": run_started - setup_started,
        "run_s": finished - run_started,
    }


#: Per-process setup cache used by pool workers: ``multiprocessing``
#: forks/spawns fresh interpreters, so each pool worker memoizes
#: independently, exactly like a queue worker process does.
_PROCESS_SETUP_CACHE = SetupCache()


def run_task_profiled(task: Task) -> Tuple[TaskKey, Any, Dict[str, float]]:
    """Pool-worker entry point: ``(key, result, profile)``.

    Module-level (picklable by qualified name) and routed through the
    per-process :data:`_PROCESS_SETUP_CACHE`, so chunked pool
    submissions reuse setup contexts within each worker process.
    """
    result, profile = execute_task_profiled(task, _PROCESS_SETUP_CACHE)
    return task.key, result, profile
