"""The unit of orchestrated work.

A :class:`Task` is one independent, picklable computation: a single
simulation, one bank characterization, one baseline run.  Experiments
decompose their sweeps into tasks, hand them to an
:class:`~repro.orchestration.executor.OrchestrationContext`, and
reassemble figure/table results from the returned mapping.

Requirements on a task:

* ``fn`` must be a **module-level** function (workers unpickle it by
  qualified name) taking the task itself and returning a picklable
  result.
* ``params`` must be picklable and, together with ``key``, fully
  determine the result -- task functions must not read mutable global
  state, so that serial, parallel, and cached runs are bit-identical.
* ``key`` must be unique within one submission and stable across
  processes (build it from strings, ints, and tuples).

Each task carries a ``seed`` derived from ``(base_seed, key)`` via
:func:`~repro.orchestration.hashing.derive_task_seed`.  Tasks that
need *independent* randomness (e.g. iteration jitter in a new
workload) should seed their generators from it.  Paired-comparison
tasks -- the Fig 12 simulations, where every configuration must replay
the *same* traces and vulnerability profiles against the same
baseline -- deliberately keep seeding from the experiment-level
``ExperimentScale.seed`` instead, and ``seed`` is advisory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Tuple

from repro.orchestration.hashing import TaskKey, derive_task_seed


@dataclass(frozen=True)
class Task:
    """One independent unit of work."""

    key: TaskKey
    fn: Callable[["Task"], Any]
    params: Any = None
    seed: int = 0

    def execute(self) -> Any:
        return self.fn(self)


@dataclass(frozen=True)
class TaskGroup:
    """Tasks sharing one cache fingerprint, submitted together.

    Experiments decompose into one or more groups; tasks within a
    group fan out in a single submission, and the group's
    ``fingerprint`` scopes the on-disk cache (by convention it captures
    every scale/config input outside the task keys).  Grouping by
    fingerprint keeps cache entries shareable between experiments that
    submit the same underlying work -- e.g. the per-(module, bank)
    characterizations -- while still invalidating on any scale change.
    """

    tasks: Tuple[Task, ...]
    fingerprint: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "tasks", tuple(self.tasks))


def make_task(
    key: TaskKey, fn: Callable[[Task], Any], params: Any = None, *,
    base_seed: int = 0,
) -> Task:
    """Build a task with its seed derived from ``(base_seed, key)``."""
    key = tuple(key)
    return Task(key=key, fn=fn, params=params,
                seed=derive_task_seed(base_seed, key))


def run_task(task: Task) -> Tuple[TaskKey, Any]:
    """Worker entry point: execute one task, return ``(key, result)``."""
    return task.key, task.execute()
