"""Local multiprocessing pool backend."""

from __future__ import annotations

import multiprocessing
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.orchestration.backends.base import ExecutionBackend, PendingTask
from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import (
    SetupCache,
    execute_task_profiled,
    run_task_profiled,
)


def auto_pool_chunksize(task_count: int, jobs: int) -> int:
    """Pool chunk size when the caller did not pick one.

    Large batches are split into ~4 chunks per worker -- big enough to
    amortize the per-submission IPC (pickle a task, wake a worker,
    pickle a result), small enough that one slow chunk cannot idle the
    rest of the pool -- capped at 32 so a huge grid still rebalances.
    Small batches stay at 1: they fit in a single round of submissions
    anyway, and chunking them only hurts latency.
    """
    if task_count <= max(2 * jobs, 8):
        return 1
    return max(1, min(32, task_count // (jobs * 4)))


class ProcessBackend(ExecutionBackend):
    """Fans tasks out over a ``multiprocessing.Pool``.

    The pool is created lazily on the first batch that is worth
    parallelizing and then reused for every later submission from the
    same context -- a full runner invocation submits once per
    experiment, so per-worker memos (setup contexts, characterization
    profiles) stay warm and the fork cost is paid once.  Batches
    smaller than two tasks run inline: a pool round-trip costs more
    than the work.  ``chunksize=None`` (the default) batches pool
    submissions via :func:`auto_pool_chunksize`.
    """

    name = "process"

    def __init__(self, jobs: int, *, chunksize: Optional[int] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if chunksize is not None and chunksize < 1:
            raise ValueError("chunksize must be at least 1")
        self.jobs = jobs
        self.chunksize = chunksize
        self._pool = None
        self._setup_cache = SetupCache()

    def execute(
        self,
        pending: Sequence[PendingTask],
        cache: Optional[ResultCache] = None,
    ) -> Iterator[Tuple[TaskKey, Any]]:
        tasks = [item.task for item in pending]
        if self.jobs == 1 or len(tasks) < 2:
            for task in tasks:
                result, profile = execute_task_profiled(
                    task, self._setup_cache
                )
                self.profiles[task.key] = profile
                yield task.key, result
            return
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.jobs)
        chunksize = (
            self.chunksize
            if self.chunksize is not None
            else auto_pool_chunksize(len(tasks), self.jobs)
        )
        # imap (not unordered) keeps results in submission order so
        # progress output is stable; tasks are coarse enough that
        # head-of-line blocking is negligible.
        for key, result, profile in self._pool.imap(
            run_task_profiled, tasks, chunksize=chunksize
        ):
            profile["chunk_size"] = chunksize
            self.profiles[key] = profile
            yield key, result

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def describe(self) -> str:
        return f"process x{self.jobs}"
