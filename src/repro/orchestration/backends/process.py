"""Local multiprocessing pool backend."""

from __future__ import annotations

import multiprocessing
from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.orchestration.backends.base import ExecutionBackend, PendingTask
from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import run_task


class ProcessBackend(ExecutionBackend):
    """Fans tasks out over a ``multiprocessing.Pool``.

    The pool is created lazily on the first batch that is worth
    parallelizing and then reused for every later submission from the
    same context -- a full runner invocation submits once per
    experiment, so per-worker memos (Svärd threshold providers,
    characterization profiles) stay warm and the fork cost is paid
    once.  Batches smaller than two tasks run inline: a pool round-trip
    costs more than the work.
    """

    name = "process"

    def __init__(self, jobs: int, *, chunksize: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.chunksize = chunksize
        self._pool = None

    def execute(
        self,
        pending: Sequence[PendingTask],
        cache: Optional[ResultCache] = None,
    ) -> Iterator[Tuple[TaskKey, Any]]:
        tasks = [item.task for item in pending]
        if self.jobs == 1 or len(tasks) < 2:
            for task in tasks:
                yield run_task(task)
            return
        if self._pool is None:
            self._pool = multiprocessing.get_context().Pool(self.jobs)
        # imap (not unordered) keeps results in submission order so
        # progress output is stable; tasks are coarse enough that
        # head-of-line blocking is negligible.
        yield from self._pool.imap(run_task, tasks, chunksize=self.chunksize)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def describe(self) -> str:
        return f"process x{self.jobs}"
