"""Pluggable execution backends.

Three implementations ship with the repository (see each module):

* ``serial``  -- in-process, the zero-dependency reference.
* ``process`` -- local ``multiprocessing`` pool (``--jobs N``).
* ``queue``   -- file-based job queue on a shared filesystem; any
  number of ``runner worker`` processes drain one sweep and publish
  results through the shared result cache.

:func:`create_backend` is the factory the CLI uses; experiments never
talk to backends directly -- they hand task groups to an
:class:`~repro.orchestration.executor.OrchestrationContext`, which
delegates raw execution to whichever backend it was built with.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.orchestration.backends.base import (
    BackendError,
    ExecutionBackend,
    PendingTask,
)
from repro.orchestration.backends.process import ProcessBackend
from repro.orchestration.backends.queue import (
    DEFAULT_LEASE_TIMEOUT,
    QueueBackend,
    QueueTaskFailed,
)
from repro.orchestration.backends.serial import SerialBackend

#: ``--backend`` values, in documentation order.
BACKEND_NAMES = ("serial", "process", "queue")


def create_backend(
    name: str,
    *,
    jobs: int = 1,
    queue_dir: Union[str, Path, None] = None,
    participate: bool = True,
    poll_interval: float = 0.2,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    chunk_size: Optional[int] = None,
) -> ExecutionBackend:
    """Build a backend by registry name.

    ``queue_dir`` is required for the queue backend (the runner
    defaults it to ``<cache_dir>/queue``); the other options are
    ignored by backends they do not apply to.  ``chunk_size`` batches
    transport on the queue backend (tasks per queue file) and pool
    submissions on the process backend; ``None`` auto-sizes per
    submission and keeps small sweeps unchunked.
    """
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(jobs, chunksize=chunk_size)
    if name == "queue":
        if queue_dir is None:
            raise BackendError("the queue backend needs a queue directory")
        return QueueBackend(
            queue_dir,
            participate=participate,
            poll_interval=poll_interval,
            lease_timeout=lease_timeout,
            chunk_size=chunk_size,
        )
    raise BackendError(
        f"unknown backend {name!r}; known: {list(BACKEND_NAMES)}"
    )


def default_backend(jobs: int = 1) -> ExecutionBackend:
    """What a context uses when no backend is named: jobs decide."""
    return SerialBackend() if jobs == 1 else ProcessBackend(jobs)


__all__ = [
    "BACKEND_NAMES",
    "BackendError",
    "DEFAULT_LEASE_TIMEOUT",
    "ExecutionBackend",
    "PendingTask",
    "ProcessBackend",
    "QueueBackend",
    "QueueTaskFailed",
    "SerialBackend",
    "create_backend",
    "default_backend",
]
