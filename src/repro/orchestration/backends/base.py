"""The execution-backend protocol.

An :class:`ExecutionBackend` is the machinery that turns a batch of
cache-miss tasks into ``(key, result)`` pairs.  The
:class:`~repro.orchestration.executor.OrchestrationContext` owns the
*policy* -- cache lookups, statistics, progress reporting -- and
delegates raw execution to a backend, so the same experiment code runs
in-process (``serial``), across a local pool (``process``), or across
any number of worker processes sharing a filesystem (``queue``)
without changing a line.

Contract:

* ``execute`` receives the pending :class:`PendingTask` batch (tasks
  the cache could not answer) and yields ``(task.key, result)`` pairs
  -- in **any** order; the context reassembles by key.  Each pending
  task must be answered exactly once.
* Tasks are pure functions of their parameters (see
  ``repro.orchestration.task``), so every backend produces
  bit-identical results; the determinism suite in
  ``tests/test_backends.py`` enforces serial == process == queue.
* A backend that persists results into the shared
  :class:`~repro.orchestration.cache.ResultCache` itself (the queue
  backend: its workers publish results) sets ``publishes_to_cache`` so
  the context does not store them a second time.
* Execution is profiled: backends that run tasks locally stash each
  task's ``{setup_s, run_s}`` stamp in ``profiles`` (keyed by task
  key), which the context pops and hands to ``cache.store`` -- keeping
  the yielded pairs exactly ``(key, result)`` as they always were.
  The queue backend's workers stamp profiles directly into the cache
  entries they publish instead.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Sequence, Tuple

from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import Task


@dataclass(frozen=True)
class PendingTask:
    """One cache miss handed to a backend.

    ``entry_key`` is the on-disk cache address the context computed for
    the task (``None`` when caching is disabled); the queue backend
    uses it to name queue files and to watch for results published by
    workers.
    """

    task: Task
    entry_key: Optional[str] = None


class BackendError(RuntimeError):
    """A backend-level failure (misconfiguration, failed remote task)."""


class ExecutionBackend(ABC):
    """Executes batches of pending tasks for an OrchestrationContext."""

    #: Registry key and ``--backend`` value.
    name: str = ""

    #: True when completed results are already persisted in the shared
    #: cache by the time ``execute`` yields them (queue workers store
    #: results themselves); the context then skips its own ``store``.
    publishes_to_cache: bool = False

    @property
    def profiles(self) -> Dict[TaskKey, Dict[str, Any]]:
        """Per-task profile stamps for results this backend executed
        locally, keyed by task key.  Lazily created; the context pops
        entries as it stores results, so the dict never outgrows one
        in-flight batch."""
        existing = getattr(self, "_profiles", None)
        if existing is None:
            existing = {}
            self._profiles = existing
        return existing

    @abstractmethod
    def execute(
        self,
        pending: Sequence[PendingTask],
        cache: Optional[ResultCache] = None,
    ) -> Iterator[Tuple[TaskKey, Any]]:
        """Run every pending task; yield ``(task.key, result)`` pairs.

        Results may arrive in any order but each pending task must be
        answered exactly once.  ``cache`` is the context's result
        cache (``None`` when caching is disabled); backends that
        publish through it validate it up front.
        """

    def close(self) -> None:
        """Release backend resources (worker pools etc.); idempotent."""

    def describe(self) -> str:
        """One-line human summary for the runner's stats trailer."""
        return self.name
