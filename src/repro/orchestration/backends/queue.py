"""Shared-filesystem job-queue backend.

The submitter publishes every cache miss into a
:class:`~repro.orchestration.jobqueue.JobQueue` directory and then
watches the shared :class:`~repro.orchestration.cache.ResultCache` for
the results to appear.  Any number of ``runner worker`` processes --
on this host or on any host mounting the same filesystem -- claim
tasks via atomic lease renames, execute them, and publish results
through the same sha256-keyed cache the serial and process backends
use.  The cache *is* the result channel, which buys three properties
for free:

* **resumability** -- kill anything, restart it, and only uncached
  tasks run again;
* **N-way sharing** -- several submitters can drain one sweep (a task
  already queued or leased is not enqueued twice);
* **bit-identical results** -- workers run the same pure task
  functions, so a queue run is indistinguishable from a serial one.

Large submissions are **chunked**: cache misses travel K to a queue
file (:class:`~repro.orchestration.jobqueue.ChunkEnvelope`), so a
31-task grid costs ~8 enqueue/claim/lease round-trips instead of 31.
Chunking batches *transport only* -- each member keeps its own cache
entry, failure record, and publish-as-it-completes semantics, so
results remain bit-identical to unchunked runs and a worker killed
mid-chunk loses at most the task in flight.  ``chunk_size=None`` (the
default) sizes chunks from the submission via :func:`auto_chunk_size`;
small sweeps stay unchunked.

By default the submitter *participates*: while waiting it claims and
executes queued tasks itself, so a queue run with zero workers still
completes (it degenerates to a serial run with extra file traffic).
Pass ``participate=False`` (CLI ``--queue-wait``) to leave all
execution to workers.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.orchestration.backends.base import (
    BackendError,
    ExecutionBackend,
    PendingTask,
)
from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.jobqueue import (
    ChunkEnvelope,
    JobQueue,
    QueueEnvelope,
    TaskEnvelope,
    reclaim_throttle,
)
from repro.orchestration.task import SetupCache
from repro.orchestration.worker import (
    HeartbeatWriter,
    WorkerStats,
    execute_lease,
)

#: How long a lease may sit untouched before the submitter assumes its
#: worker died and makes the task claimable again.  Characterization
#: tasks at paper scale run minutes, not hours; an over-eager reclaim
#: only wastes a duplicate execution, never correctness.
DEFAULT_LEASE_TIMEOUT = 600.0

#: A waiting (non-participating) submitter prints a queue-state line
#: to stderr this often while stalled, so "no workers attached" or
#: "all workers refuse my code version" is visible instead of silent.
STALL_REPORT_INTERVAL = 60.0

#: Collection passes with at most this many outstanding tasks poll
#: per-entry; larger passes scan the cache directory once.  Per-entry
#: stats are O(outstanding) but scale with the sweep (O(N^2) over a
#: drain); one scandir is O(total cache entries), which a long-lived
#: shared cache can make the larger number when only a handful of
#: tasks remain.
PER_ENTRY_POLL_MAX = 16

#: Auto chunking aims for at least this many chunks per submission, so
#: a small worker fleet can still load-balance one sweep.
AUTO_CHUNK_TARGET = 8

#: Auto chunking never puts more tasks than this under one lease: the
#: chunk is the reclaim/loss granularity, so a bound keeps worst-case
#: duplicated work after a SIGKILL small.
AUTO_CHUNK_MAX = 32


def auto_chunk_size(task_count: int) -> int:
    """Chunk size when the caller did not pick one.

    Submissions at or below :data:`AUTO_CHUNK_TARGET` stay unchunked
    (size 1): the per-task queue overhead is negligible there and
    single-task files keep the PR 5 semantics byte-for-byte.  Larger
    submissions are split into ~:data:`AUTO_CHUNK_TARGET` chunks,
    capped at :data:`AUTO_CHUNK_MAX` tasks per chunk.
    """
    if task_count <= AUTO_CHUNK_TARGET:
        return 1
    return min(AUTO_CHUNK_MAX, -(-task_count // AUTO_CHUNK_TARGET))


@dataclass
class QueueBackendStats:
    """What one submitter saw while draining its batch.

    ``enqueued``/``already_in_flight``/``requeued`` count *tasks*
    (chunk members individually); ``chunks_enqueued`` counts the queue
    files actually published, so ``enqueued / chunks_enqueued`` is the
    realized transport batching.
    """

    enqueued: int = 0
    chunks_enqueued: int = 0
    already_in_flight: int = 0
    local_executed: int = 0
    remote_completed: int = 0
    leases_reclaimed: int = 0
    requeued: int = 0


class QueueTaskFailed(BackendError):
    """A worker recorded a failure for one of our tasks."""


class QueueBackend(ExecutionBackend):
    """Drains a sweep through a file-based job queue."""

    name = "queue"
    publishes_to_cache = True

    def __init__(
        self,
        queue_dir: Union[str, Path],
        *,
        participate: bool = True,
        poll_interval: float = 0.2,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        chunk_size: Optional[int] = None,
    ) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise BackendError("chunk size must be at least 1")
        self.queue = JobQueue(queue_dir)
        self.participate = participate
        self.poll_interval = poll_interval
        self.lease_timeout = lease_timeout
        self.chunk_size = chunk_size
        self.stats = QueueBackendStats()
        #: Queue keys published by a submitter on a different code
        #: version.  Remembered so the participating claim loop skips
        #: them *before* the claim rename instead of re-claiming and
        #: re-releasing the same foreign tasks every poll.
        self._foreign_keys = set()
        #: Setup-context memo for locally executed (participation)
        #: leases, mirroring a worker's per-process cache.
        self._setup_cache = SetupCache()

    # ------------------------------------------------------------------

    def execute(
        self,
        pending: Sequence[PendingTask],
        cache: Optional[ResultCache] = None,
    ) -> Iterator[Tuple[TaskKey, Any]]:
        if cache is None:
            raise BackendError(
                "the queue backend publishes results through the shared "
                "result cache and cannot run with caching disabled "
                "(drop --no-cache)"
            )
        for item in pending:
            if item.entry_key is None:
                raise BackendError(
                    "queue backend received a pending task without a "
                    "cache entry key"
                )
        self.queue.ensure()

        size = (
            self.chunk_size
            if self.chunk_size is not None
            else auto_chunk_size(len(pending))
        )
        # ``carriers`` maps every entry key to the envelope that
        # transports it -- the TaskEnvelope itself when unchunked, the
        # enclosing ChunkEnvelope otherwise.  Grouping follows
        # submission order, which is deterministic per sweep, so two
        # submitters chunking the same batch produce identical chunk
        # queue keys and dedupe through ``enqueue``.
        carriers: Dict[str, QueueEnvelope] = {}
        to_enqueue: List[QueueEnvelope] = []
        members = [
            TaskEnvelope(
                entry_key=item.entry_key,
                task=item.task,
                cache_version=cache.version,
            )
            for item in pending
        ]
        for start in range(0, len(members), max(size, 1)):
            batch = members[start:start + max(size, 1)]
            envelope: QueueEnvelope = (
                batch[0] if len(batch) == 1
                else ChunkEnvelope(
                    members=tuple(batch), cache_version=cache.version
                )
            )
            to_enqueue.append(envelope)
            for member in batch:
                carriers[member.entry_key] = envelope

        outstanding: Dict[str, PendingTask] = {}
        for item in pending:
            self.queue.clear_failure(item.entry_key)  # fresh attempt
            outstanding[item.entry_key] = item
        for envelope in to_enqueue:
            if self.queue.enqueue(envelope):
                self.stats.enqueued += len(envelope.members)
                self.stats.chunks_enqueued += 1
            else:
                self.stats.already_in_flight += len(envelope.members)

        # A participating submitter executes tasks exactly like a
        # worker, so it publishes a heartbeat exactly like one: its
        # long-running local task must enjoy the same reclaim
        # protection from peers running their own --lease-timeout.
        heartbeat = (
            HeartbeatWriter(self.queue).start() if self.participate else None
        )
        try:
            yield from self._drain(
                outstanding, carriers, cache, heartbeat
            )
        finally:
            if heartbeat is not None:
                heartbeat.stop(remove=True)

    def _drain(
        self,
        outstanding: Dict[str, PendingTask],
        carriers: Dict[str, QueueEnvelope],
        cache: ResultCache,
        heartbeat: Optional[HeartbeatWriter],
    ) -> Iterator[Tuple[TaskKey, Any]]:
        last_reclaim = time.monotonic()
        last_progress = time.monotonic()
        # Chunk queue keys -> member entry keys, for retiring a chunk
        # file once every member's result exists (it may have become
        # moot through another submitter's cache, never claimed here).
        chunk_members: Dict[str, List[str]] = {}
        for entry_key, envelope in carriers.items():
            if len(envelope.members) > 1:
                chunk_members.setdefault(
                    envelope.queue_key, []
                ).append(entry_key)
        while outstanding:
            progressed = False
            # Collect everything workers have published since last
            # look.  ONE scan of the cache directory (and one of the
            # failure directory) answers the whole pass; a per-entry
            # ``stat`` here is O(N) metadata round-trips per pass --
            # O(N^2) over a draining sweep, ruinous on NFS.  (Small
            # remainders flip back to per-entry stats so a huge
            # long-lived cache is not re-listed to find 3 stragglers.)
            present = self._present_entries(outstanding, cache)
            failed = self.queue.failed_entry_keys()
            for entry_key in list(outstanding):
                item = outstanding[entry_key]
                if entry_key not in present:
                    if entry_key in failed:
                        failure = self.queue.failure_for(entry_key)
                        if failure is not None:
                            raise QueueTaskFailed(
                                f"task {item.task.key} failed on worker "
                                f"{failure.worker}: {failure.error}\n"
                                f"{failure.traceback}"
                            )
                    continue
                hit, value = cache.load(entry_key)
                if not hit:
                    # The entry existed a moment ago but did not load:
                    # either a writer raced us (next poll wins) or the
                    # file was corrupt and load just *deleted* it.  The
                    # vanished-task sweep below republishes the latter
                    # case, so neither can strand the sweep.
                    continue
                del outstanding[entry_key]
                # The result may have arrived from outside the queue
                # (another submitter's cache); drop our now-moot task
                # file so workers stop seeing it.  Chunk files are
                # retired below, once *every* member is accounted for.
                if carriers[entry_key].queue_key == entry_key:
                    self.queue.discard_task(entry_key)
                self.stats.remote_completed += 1
                progressed = True
                yield item.task.key, value

            # Retire chunk files whose members have all completed
            # elsewhere: a chunk is only moot as a whole.
            for queue_key in list(chunk_members):
                if any(
                    member in outstanding
                    for member in chunk_members[queue_key]
                ):
                    continue
                self.queue.discard_task(queue_key)
                del chunk_members[queue_key]

            if not outstanding:
                break

            if self.participate:
                # Only claim tasks from our own source tree: executing
                # a foreign-version submitter's task here would publish
                # results computed by the wrong code under its key (the
                # same refusal QueueWorker makes).  The claim filter
                # skips such tasks without starving our own behind
                # them, and once an envelope has been refused its queue
                # key is skipped *before* the rename on later polls.
                lease = self.queue.claim(
                    accept=self._accept_own_version(cache),
                    skip=self._foreign_keys.__contains__,
                )
                if lease is not None:
                    progressed = True
                    yield from self._run_claimed(
                        lease, outstanding, cache, heartbeat
                    )

            if not progressed:
                now = time.monotonic()
                if now - last_reclaim >= reclaim_throttle(self.poll_interval):
                    self.stats.leases_reclaimed += self.queue.reclaim_stale(
                        self.lease_timeout
                    )
                    # Reuse this pass's directory scans: nothing that
                    # could change them has run since (no progress was
                    # made), and re-scanning would double the per-pass
                    # metadata traffic the single-scan fix removed.  A
                    # result discarded as corrupt *during* this pass is
                    # requeued one throttle interval later, off a
                    # fresh scan.
                    self.stats.requeued += self._requeue_vanished(
                        outstanding, carriers, present, failed
                    )
                    last_reclaim = now
                if now - last_progress >= STALL_REPORT_INTERVAL:
                    print(
                        f"[queue] waiting on {len(outstanding)} task(s): "
                        f"{self.queue.pending_count()} queued, "
                        f"{self.queue.leased_count()} leased at "
                        f"{self.queue.directory} -- attach workers with "
                        "`runner worker` (same --cache-dir and code "
                        "version)",
                        file=sys.stderr,
                    )
                    last_progress = now
                time.sleep(self.poll_interval)
            else:
                last_progress = time.monotonic()

    def _run_claimed(
        self,
        lease,
        outstanding: Dict[str, PendingTask],
        cache: ResultCache,
        heartbeat: Optional[HeartbeatWriter],
    ) -> Iterator[Tuple[TaskKey, Any]]:
        """Execute one claimed lease locally and yield our results.

        Works member-by-member so a chunk lease behaves exactly like
        K single-task leases: each member of ours is collected (or its
        failure surfaced) individually, and members belonging to
        another submitter sharing the queue are left for their owner.
        """
        members = lease.envelope.members
        # Keys attributed *before* this claim were already collected
        # for one of our experiments; re-executing them (a reclaimed
        # duplicate) must keep their worker label -- the CLI dedups
        # the repeated key within a provenance slice.
        attributed_before = {
            member.entry_key
            for member in members
            if member.entry_key in cache.provenance_seen
        }
        heartbeat.beat(
            current_lease=lease.envelope.queue_key,
            claimed=heartbeat.state.claimed + 1,
        )
        local_stats = WorkerStats()
        execute_lease(
            lease, cache, self.queue,
            setup_cache=self._setup_cache, stats=local_stats,
        )
        heartbeat.beat(
            current_lease=None,
            completed=heartbeat.state.completed + local_stats.completed,
            failed=heartbeat.state.failed + local_stats.failed,
        )
        for member in members:
            entry_key = member.entry_key
            # The claimed task may belong to another submitter
            # sharing this queue; its owner collects (or surfaces
            # the failure of) that one, not us.
            item = outstanding.pop(entry_key, None)
            if item is None:
                if entry_key not in attributed_before:
                    # Not one of this submitter's results: blank its
                    # worker label (a None label is never counted when
                    # the CLI resolves its event-log slice through
                    # ``provenance_seen``), or the current experiment's
                    # worker counts would disagree with its task
                    # counts.
                    cache.provenance_seen[entry_key] = None
                continue
            failure = self.queue.failure_for(entry_key)
            if failure is not None:
                raise QueueTaskFailed(
                    f"task {item.task.key} failed: "
                    f"{failure.error}\n{failure.traceback}"
                )
            hit, value = cache.load(entry_key)
            if not hit:  # pragma: no cover - store just ran
                raise BackendError(
                    f"result for {item.task.key} vanished "
                    "immediately after store"
                )
            self.stats.local_executed += 1
            yield item.task.key, value

    def _present_entries(
        self, outstanding: Dict[str, PendingTask], cache: ResultCache
    ) -> set:
        """Outstanding entry keys that exist in the cache right now.

        Per-entry checks go through ``cache.exists`` so entries in
        either layout (sharded, or flat from a pre-sharding worker's
        cache) are seen; large remainders use the one-pass shard scan.
        """
        if len(outstanding) <= PER_ENTRY_POLL_MAX:
            return {
                entry_key
                for entry_key in outstanding
                if cache.exists(entry_key)
            }
        return cache.scan_entry_keys()

    def _accept_own_version(self, cache: ResultCache):
        def accept(envelope: QueueEnvelope) -> bool:
            if envelope.cache_version == cache.version:
                return True
            self._foreign_keys.add(envelope.queue_key)
            return False

        return accept

    def _requeue_vanished(
        self,
        outstanding: Dict[str, PendingTask],
        carriers: Dict[str, QueueEnvelope],
        present: set,
        failed: set,
    ) -> int:
        """Republish outstanding tasks that exist *nowhere* anymore.

        The submitter is the source of truth: it still holds every
        Task object, so a task with no queue file, no lease, no
        failure record, and no cache entry -- e.g. a worker completed
        it but the stored result was later corrupted and discarded by
        ``cache.load`` -- is simply enqueued again instead of being
        waited on forever.  Pure tasks make the retry free of risk.
        ``present``/``failed`` are the calling pass's directory scans.

        A vanished chunk member republishes its whole carrier chunk;
        the enqueue existence check dedupes members sharing a carrier
        (and suppresses the republish entirely while the chunk's file
        or lease is still in flight), and already-cached members are
        skipped on re-execution, so only the missing work re-runs.
        """
        requeued = 0
        for entry_key in outstanding:
            if entry_key in present:
                continue  # a poll will collect it
            if entry_key in failed:
                # Open the record only for snapshot members -- a
                # speculative per-entry open here would rebuild the
                # O(N)-metadata-ops-per-pass storm the collection-pass
                # fix removed.  (A fail() landing after the snapshot
                # may get its task briefly re-enqueued, but its record
                # is never clobbered -- clear_failure only runs for
                # snapshot members -- so the next collection pass
                # surfaces it; only a little duplicate work, never a
                # lost traceback.)
                if self.queue.failure_for(entry_key) is not None:
                    continue  # a poll will surface the failure
                # A record file exists but cannot be read (e.g. EACCES
                # across NFS users): it must not strand the sweep, so
                # clear it if we can and retry the task.
                self.queue.clear_failure(entry_key)
            if self.queue.enqueue(carriers[entry_key]):
                requeued += 1
        return requeued

    def describe(self) -> str:
        mode = "participating" if self.participate else "waiting"
        return f"queue at {self.queue.directory} ({mode})"
