"""In-process execution: the zero-dependency default backend."""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.orchestration.backends.base import ExecutionBackend, PendingTask
from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import run_task


class SerialBackend(ExecutionBackend):
    """Runs every task in the calling process, in submission order.

    This is the reference implementation the other backends are tested
    against, and the fallback wherever multiprocessing (or a shared
    filesystem) is unavailable.
    """

    name = "serial"

    def execute(
        self,
        pending: Sequence[PendingTask],
        cache: Optional[ResultCache] = None,
    ) -> Iterator[Tuple[TaskKey, Any]]:
        for item in pending:
            yield run_task(item.task)
