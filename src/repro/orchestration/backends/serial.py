"""In-process execution: the zero-dependency default backend."""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from repro.orchestration.backends.base import ExecutionBackend, PendingTask
from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import SetupCache, execute_task_profiled


class SerialBackend(ExecutionBackend):
    """Runs every task in the calling process, in submission order.

    This is the reference implementation the other backends are tested
    against, and the fallback wherever multiprocessing (or a shared
    filesystem) is unavailable.  Setup contexts are memoized across
    the whole run via one :class:`SetupCache` -- the serial equivalent
    of a queue worker's per-process memo -- and every execution is
    profiled (stashed in ``profiles`` for the context to store).
    """

    name = "serial"

    def __init__(self) -> None:
        self._setup_cache = SetupCache()

    def execute(
        self,
        pending: Sequence[PendingTask],
        cache: Optional[ResultCache] = None,
    ) -> Iterator[Tuple[TaskKey, Any]]:
        for item in pending:
            result, profile = execute_task_profiled(
                item.task, self._setup_cache
            )
            self.profiles[item.task.key] = profile
            yield item.task.key, result
