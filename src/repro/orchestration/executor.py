"""Execution policy: cache short-circuiting over a pluggable backend.

:class:`OrchestrationContext` is the single object experiments thread
through their ``run()`` functions.  It owns the *policy* -- the
optional on-disk :class:`~repro.orchestration.cache.ResultCache`, the
progress callback, and run statistics -- and delegates raw execution
of cache misses to an
:class:`~repro.orchestration.backends.ExecutionBackend` (``serial``,
``process``, or ``queue``; see ``repro/orchestration/backends/``).
The default context (``jobs=1``, no cache) reproduces the old
sequential behavior exactly, so every experiment still works with no
arguments.

Execution contract: tasks are pure functions of their parameters, so
the mapping returned by :meth:`OrchestrationContext.run` is
bit-identical whichever backend ran the tasks and whether they came
out of a warm cache -- the determinism suites in
``tests/test_orchestration.py`` and ``tests/test_backends.py`` enforce
this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.orchestration.backends import (
    ExecutionBackend,
    PendingTask,
    default_backend,
)
from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import Task, TaskGroup

#: ``progress(done, total, key)`` called after every finished task.
ProgressCallback = Callable[[int, int, TaskKey], None]


@dataclass
class OrchestrationStats:
    """What one context did across all its submissions."""

    submitted: int = 0
    hits: int = 0
    executed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.submitted if self.submitted else 0.0


class OrchestrationContext:
    """Execution policy shared by all experiments in one run."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.stats = OrchestrationStats()
        #: ``backend`` wins when given; otherwise ``jobs`` picks the
        #: classic behavior (1 = serial, N = local process pool).
        self.backend = backend if backend is not None else default_backend(jobs)

    def close(self) -> None:
        """Release backend resources, e.g. worker pools (idempotent)."""
        self.backend.close()

    def __enter__(self) -> "OrchestrationContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def run(
        self, tasks: Sequence[Task], *, fingerprint: Any = None
    ) -> Dict[TaskKey, Any]:
        """Execute (or recall) every task; return ``{task.key: result}``.

        ``fingerprint`` scopes the cache: it should capture everything
        outside ``task.key`` that influences results (by convention the
        full ``ExperimentScale`` and ``SystemConfig``).
        """
        return self.run_groups([TaskGroup(tasks=tuple(tasks),
                                          fingerprint=fingerprint)])

    def run_groups(
        self, groups: Sequence[TaskGroup]
    ) -> Dict[TaskKey, Any]:
        """Execute several fingerprint-scoped groups as ONE submission.

        Cache entries are keyed per group (``task.key`` under that
        group's ``fingerprint``), but all cache misses fan out over the
        backend together -- groups are a cache-scoping construct, not
        an execution barrier.  Task keys must be unique across the
        whole submission.
        """
        tasks = [task for group in groups for task in group.tasks]
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate task keys in one submission")

        self.stats.submitted += len(tasks)
        total = len(tasks)
        done = 0
        results: Dict[TaskKey, Any] = {}
        pending: List[PendingTask] = []

        for group in groups:
            for task in group.tasks:
                if self.cache is not None:
                    entry_key = self.cache.entry_key(
                        task.key, group.fingerprint
                    )
                    hit, value = self.cache.load(entry_key)
                    if hit:
                        results[task.key] = value
                        self.stats.hits += 1
                        done += 1
                        self._report(done, total, task.key)
                        continue
                    pending.append(PendingTask(task=task, entry_key=entry_key))
                else:
                    pending.append(PendingTask(task=task))

        entry_keys = {item.task.key: item.entry_key for item in pending}
        store = self.cache is not None and not self.backend.publishes_to_cache
        for key, value in self._execute(pending):
            if store:
                # Locally executing backends stash per-task timing
                # stamps in ``profiles``; fold them into the entry's
                # provenance (popped, so the dict stays bounded).
                self.cache.store(
                    entry_keys[key], key, value,
                    profile=self.backend.profiles.pop(key, None),
                )
            results[key] = value
            self.stats.executed += 1
            done += 1
            self._report(done, total, key)
        return results

    def run_one(self, task: Task, *, fingerprint: Any = None) -> Any:
        return self.run([task], fingerprint=fingerprint)[task.key]

    # ------------------------------------------------------------------

    def _execute(self, pending: List[PendingTask]):
        """Yield ``(key, result)`` pairs from the backend.

        Kept as a separate method so tests can spy on batch sizes; the
        order of results follows the backend (the queue backend yields
        in completion order, the others in submission order).
        """
        yield from self.backend.execute(pending, self.cache)

    def _report(self, done: int, total: int, key: TaskKey) -> None:
        if self.progress is not None:
            self.progress(done, total, key)


def serial_context() -> OrchestrationContext:
    """The no-pool, no-cache default used when none is supplied."""
    return OrchestrationContext(jobs=1, cache=None)
