"""Fan tasks out over processes, short-circuiting through the cache.

:class:`OrchestrationContext` is the single object experiments thread
through their ``run()`` functions.  It bundles the worker count, the
optional on-disk :class:`~repro.orchestration.cache.ResultCache`, a
progress callback, and run statistics.  The default context
(``jobs=1``, no cache) reproduces the old sequential behavior exactly,
so every experiment still works with no arguments.

Execution contract: tasks are pure functions of their parameters, so
the mapping returned by :meth:`OrchestrationContext.run` is
bit-identical whether tasks ran serially, across a pool, or came out
of a warm cache -- the determinism suite in
``tests/test_orchestration.py`` enforces this.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.orchestration.cache import ResultCache
from repro.orchestration.hashing import TaskKey
from repro.orchestration.task import Task, TaskGroup, run_task

#: ``progress(done, total, key)`` called after every finished task.
ProgressCallback = Callable[[int, int, TaskKey], None]


@dataclass
class OrchestrationStats:
    """What one context did across all its submissions."""

    submitted: int = 0
    hits: int = 0
    executed: int = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.submitted if self.submitted else 0.0


class OrchestrationContext:
    """Execution policy shared by all experiments in one run."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.cache = cache
        self.progress = progress
        self.stats = OrchestrationStats()
        self._pool = None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "OrchestrationContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def run(
        self, tasks: Sequence[Task], *, fingerprint: Any = None
    ) -> Dict[TaskKey, Any]:
        """Execute (or recall) every task; return ``{task.key: result}``.

        ``fingerprint`` scopes the cache: it should capture everything
        outside ``task.key`` that influences results (by convention the
        full ``ExperimentScale`` and ``SystemConfig``).
        """
        return self.run_groups([TaskGroup(tasks=tuple(tasks),
                                          fingerprint=fingerprint)])

    def run_groups(
        self, groups: Sequence[TaskGroup]
    ) -> Dict[TaskKey, Any]:
        """Execute several fingerprint-scoped groups as ONE submission.

        Cache entries are keyed per group (``task.key`` under that
        group's ``fingerprint``), but all cache misses fan out over the
        pool together -- groups are a cache-scoping construct, not an
        execution barrier.  Task keys must be unique across the whole
        submission.
        """
        tasks = [task for group in groups for task in group.tasks]
        keys = [task.key for task in tasks]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate task keys in one submission")

        self.stats.submitted += len(tasks)
        total = len(tasks)
        done = 0
        results: Dict[TaskKey, Any] = {}
        pending: List[Tuple[Task, Optional[str]]] = []

        for group in groups:
            for task in group.tasks:
                if self.cache is not None:
                    entry_key = self.cache.entry_key(
                        task.key, group.fingerprint
                    )
                    hit, value = self.cache.load(entry_key)
                    if hit:
                        results[task.key] = value
                        self.stats.hits += 1
                        done += 1
                        self._report(done, total, task.key)
                        continue
                    pending.append((task, entry_key))
                else:
                    pending.append((task, None))

        entry_keys = {task.key: entry_key for task, entry_key in pending}
        for key, value in self._execute([task for task, _ in pending]):
            if self.cache is not None:
                self.cache.store(entry_keys[key], key, value)
            results[key] = value
            self.stats.executed += 1
            done += 1
            self._report(done, total, key)
        return results

    def run_one(self, task: Task, *, fingerprint: Any = None) -> Any:
        return self.run([task], fingerprint=fingerprint)[task.key]

    # ------------------------------------------------------------------

    def _execute(self, tasks: List[Task]):
        """Yield ``(key, result)`` in submission order."""
        if self.jobs == 1 or len(tasks) < 2:
            for task in tasks:
                yield run_task(task)
            return
        if self._pool is None:
            # One pool per context, reused across submissions (a full
            # runner invocation submits once per experiment), so
            # per-worker memos stay warm and fork cost is paid once.
            self._pool = multiprocessing.get_context().Pool(self.jobs)
        # imap (not unordered) keeps results in submission order so
        # progress output is stable; tasks are coarse enough that
        # head-of-line blocking is negligible.
        yield from self._pool.imap(run_task, tasks)

    def _report(self, done: int, total: int, key: TaskKey) -> None:
        if self.progress is not None:
            self.progress(done, total, key)


def serial_context() -> OrchestrationContext:
    """The no-pool, no-cache default used when none is supplied."""
    return OrchestrationContext(jobs=1, cache=None)
