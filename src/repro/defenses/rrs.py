"""Randomized Row-Swap (Saileshwar+, ASPLOS 2022).

RRS tracks frequently activated rows (the paper uses a Misra-Gries
hot-row tracker) and, when a row's count reaches a swap threshold,
exchanges its content with a *random* row of the bank.  Breaking the
spatial correlation between aggressor and victim means an attacker
must re-locate the victim after every swap.

The swap threshold is a small fraction of ``HC_first`` (the RRS paper
uses ``T/6`` to account for multiple swaps per window), and each swap
costs two full row copies -- which is why RRS degrades so sharply at
low thresholds (92%+ overhead at HC_first = 64, Fig 12) and why Svärd
recovers so much of it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.defenses.base import Defense, Mitigation, RowSwap


class MisraGriesTracker:
    """Space-bounded heavy-hitter tracker (RRS's hot-row tracker).

    Guarantees every row activated more than ``total / (entries + 1)``
    times is present, so no hot row escapes tracking.
    """

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise ValueError("tracker needs at least one entry")
        self.entries = entries
        self.counts: Dict[int, int] = {}

    def observe(self, key: int) -> int:
        """Count an occurrence; returns the key's current estimate."""
        if key in self.counts:
            self.counts[key] += 1
        elif len(self.counts) < self.entries:
            self.counts[key] = 1
        else:
            # Decrement-all: the Misra-Gries eviction step.
            for other in list(self.counts):
                self.counts[other] -= 1
                if self.counts[other] <= 0:
                    del self.counts[other]
            return 0
        return self.counts[key]

    def reset(self, key: int) -> None:
        self.counts.pop(key, None)

    def clear(self) -> None:
        self.counts.clear()


class RandomizedRowSwap(Defense):
    """Hot-row tracking plus random swaps."""

    name = "RRS"

    def __init__(
        self,
        hc_first: float,
        *,
        swap_fraction: float = 1.0 / 6.0,
        tracker_entries: int = 2048,
        **kwargs,
    ) -> None:
        super().__init__(hc_first, **kwargs)
        if not 0 < swap_fraction <= 1.0:
            raise ValueError("swap_fraction must be in (0, 1]")
        self.swap_fraction = swap_fraction
        self._trackers: Dict[int, MisraGriesTracker] = {}
        self._tracker_entries = tracker_entries
        self._rng = random.Random(self.seed)
        #: Current location of swapped rows (bookkeeping for callers).
        self.swap_map: Dict[Tuple[int, int], int] = {}

    def _tracker(self, bank: int) -> MisraGriesTracker:
        if bank not in self._trackers:
            self._trackers[bank] = MisraGriesTracker(self._tracker_entries)
        return self._trackers[bank]

    def on_activation(self, bank: int, row: int, now_ns: float) -> List[Mitigation]:
        self.stats.activations_observed += 1
        count = self._tracker(bank).observe(row)
        threshold = self.min_victim_threshold(bank, row)
        if count < max(1.0, self.swap_fraction * threshold):
            return []
        partner = self._rng.randrange(self.rows_per_bank)
        if partner == row:
            partner = (partner + 1) % self.rows_per_bank
        self._tracker(bank).reset(row)
        self.swap_map[(bank, row)] = partner
        mitigations: List[Mitigation] = [RowSwap(bank=bank, row_a=row, row_b=partner)]
        self.stats.record(mitigations)
        return mitigations

    def on_refresh_window(self, now_ns: float) -> None:
        for tracker in self._trackers.values():
            tracker.clear()
        self.swap_map.clear()
