"""Common defense interface and preventive-action vocabulary.

A defense observes every row activation (``on_activation``) and
returns zero or more *mitigations* -- preventive actions the memory
controller must carry out (refresh victims, delay the aggressor,
migrate or swap rows, or move counter state between the controller
and DRAM).  The performance simulator charges each mitigation's DRAM
cost; the security tests verify that the mitigations fire early
enough.

Thresholds come from a :class:`ThresholdProvider`: either the global
worst case (No Svärd) or per-row values from a built Svärd instance.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.core.svard import Svard


# ---------------------------------------------------------------------------
# Threshold providers
# ---------------------------------------------------------------------------


class ThresholdProvider(Protocol):
    """Supplies the HC_first threshold of a potential victim row."""

    def threshold(self, bank: int, row: int) -> float: ...


@dataclass(frozen=True)
class GlobalThreshold:
    """The conventional configuration: every row is the weakest row."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("threshold must be positive")

    def threshold(self, bank: int, row: int) -> float:
        return self.value


@dataclass(frozen=True)
class SvardThresholds:
    """Per-row thresholds from a built Svärd instance (Section 6.1)."""

    svard: Svard

    def threshold(self, bank: int, row: int) -> float:
        return self.svard.threshold_for(bank, row)


# ---------------------------------------------------------------------------
# Mitigations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Mitigation:
    """Base class for preventive actions."""


@dataclass(frozen=True)
class VictimRefresh(Mitigation):
    """Refresh (activate/precharge) the given victim rows."""

    bank: int
    rows: Tuple[int, ...]


@dataclass(frozen=True)
class ThrottleDelay(Mitigation):
    """Delay the triggering activation by ``delay_ns`` (BlockHammer)."""

    delay_ns: float


@dataclass(frozen=True)
class RowMigration(Mitigation):
    """Copy a row's content to another row (AQUA quarantine)."""

    bank: int
    src_row: int
    dst_row: int


@dataclass(frozen=True)
class RowSwap(Mitigation):
    """Exchange the contents of two rows (RRS)."""

    bank: int
    row_a: int
    row_b: int


@dataclass(frozen=True)
class CounterTraffic(Mitigation):
    """Off-chip counter reads/writes (Hydra's dominant overhead)."""

    bank: int
    reads: int = 0
    writes: int = 0


# ---------------------------------------------------------------------------
# Defense base class
# ---------------------------------------------------------------------------


class Defense(ABC):
    """A read-disturbance solution observing row activations.

    Subclasses implement :meth:`on_activation`; the base class owns
    the threshold provider and the victim-row geometry (blast radius
    1: rows at +/-1 of the aggressor).
    """

    name: str = "defense"

    def __init__(
        self,
        hc_first: float,
        *,
        thresholds: Optional[ThresholdProvider] = None,
        rows_per_bank: int = 128 * 1024,
        seed: int = 0,
    ) -> None:
        if hc_first <= 0:
            raise ValueError("hc_first must be positive")
        self.hc_first = float(hc_first)
        self.thresholds: ThresholdProvider = (
            thresholds if thresholds is not None else GlobalThreshold(hc_first)
        )
        self.rows_per_bank = rows_per_bank
        self.seed = seed
        self.stats = DefenseStats()

    # ------------------------------------------------------------------

    @abstractmethod
    def on_activation(self, bank: int, row: int, now_ns: float) -> List[Mitigation]:
        """Observe one ACT; return the preventive actions to perform."""

    def on_refresh_window(self, now_ns: float) -> None:
        """Called once per refresh window (tREFW): reset epoch state."""

    # ------------------------------------------------------------------

    def victim_rows(self, row: int) -> Tuple[int, ...]:
        """Rows an activation of ``row`` can disturb (blast radius 1)."""
        victims = []
        if row - 1 >= 0:
            victims.append(row - 1)
        if row + 1 < self.rows_per_bank:
            victims.append(row + 1)
        return tuple(victims)

    def min_victim_threshold(self, bank: int, row: int) -> float:
        """The binding threshold of one activation: its weakest victim."""
        victims = self.victim_rows(row)
        if not victims:
            return self.hc_first
        return min(self.thresholds.threshold(bank, v) for v in victims)


@dataclass
class DefenseStats:
    """Counters shared by all defenses (consumed by the simulator)."""

    activations_observed: int = 0
    victim_refreshes: int = 0
    throttle_events: int = 0
    throttle_delay_ns: float = 0.0
    migrations: int = 0
    swaps: int = 0
    counter_reads: int = 0
    counter_writes: int = 0

    def record(self, mitigations: Sequence[Mitigation]) -> None:
        for mitigation in mitigations:
            if isinstance(mitigation, VictimRefresh):
                self.victim_refreshes += len(mitigation.rows)
            elif isinstance(mitigation, ThrottleDelay):
                self.throttle_events += 1
                self.throttle_delay_ns += mitigation.delay_ns
            elif isinstance(mitigation, RowMigration):
                self.migrations += 1
            elif isinstance(mitigation, RowSwap):
                self.swaps += 1
            elif isinstance(mitigation, CounterTraffic):
                self.counter_reads += mitigation.reads
                self.counter_writes += mitigation.writes
