"""Read-disturbance defenses (the paper's five comparison points).

All five state-of-the-art solutions evaluated in Section 7 are
implemented against a common interface (:mod:`repro.defenses.base`):

* :mod:`repro.defenses.para` -- PARA (Kim+, ISCA'14): probabilistic
  adjacent-row refresh.
* :mod:`repro.defenses.blockhammer` -- BlockHammer (Yaglikci+,
  HPCA'21): counting-Bloom-filter blacklisting plus throttling.
* :mod:`repro.defenses.hydra` -- Hydra (Qureshi+, ISCA'22): hybrid
  group counters + per-row counters in DRAM with a counter cache.
* :mod:`repro.defenses.aqua` -- AQUA (Saxena+, MICRO'22): quarantining
  aggressor rows by migration.
* :mod:`repro.defenses.rrs` -- Randomized Row-Swap (Saileshwar+,
  ASPLOS'22): periodically swapping hot rows to random locations.

Each defense consults a *threshold provider* for the ``HC_first`` of
the potential victim rows of every activation.  The provider is either
the module-wide worst case (the paper's "No Svärd" configuration) or
:class:`repro.defenses.base.SvardThresholds` wrapping a built
:class:`repro.core.Svard` instance.
"""

from repro.defenses.base import (
    CounterTraffic,
    Defense,
    GlobalThreshold,
    Mitigation,
    RowMigration,
    RowSwap,
    SvardThresholds,
    ThresholdProvider,
    ThrottleDelay,
    VictimRefresh,
)
from repro.defenses.bloom import CountingBloomFilter, DualCountingBloomFilter
from repro.defenses.para import Para
from repro.defenses.blockhammer import BlockHammer
from repro.defenses.hydra import Hydra
from repro.defenses.aqua import Aqua
from repro.defenses.rrs import RandomizedRowSwap

DEFENSE_CLASSES = {
    "AQUA": Aqua,
    "BlockHammer": BlockHammer,
    "Hydra": Hydra,
    "PARA": Para,
    "RRS": RandomizedRowSwap,
}

__all__ = [
    "Defense",
    "Mitigation",
    "VictimRefresh",
    "ThrottleDelay",
    "RowMigration",
    "RowSwap",
    "CounterTraffic",
    "ThresholdProvider",
    "GlobalThreshold",
    "SvardThresholds",
    "CountingBloomFilter",
    "DualCountingBloomFilter",
    "Para",
    "BlockHammer",
    "Hydra",
    "Aqua",
    "RandomizedRowSwap",
    "DEFENSE_CLASSES",
]
